"""Declarative campaign specifications.

A campaign spec names a set of registered experiments, a base scale
preset, optional scale overrides applied to every scenario, and a
*matrix* of scale fields each taking several values.  The scenario grid
is the cartesian product ``experiments x matrix cells``; every cell is an
:class:`~repro.experiments.registry.ExperimentScale` built by applying
the overrides and the cell's assignments to the base preset.

Specs load from TOML or JSON files::

    name = "connectivity-grid"
    experiments = ["fig2", "fig4", "fig7"]
    scale = "smoke"

    [overrides]
    steps = 40

    [matrix]
    seed = [1, 2, 3]
    iterations = [2, 4]

enumerates ``3 experiments x 3 seeds x 2 iteration counts = 18``
scenarios.  Execution knobs (``workers``, ``sweep_workers``) are
deliberately rejected: they belong to the invocation (CLI flags), not to
the campaign's identity, and must never influence cache keys.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import tomllib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Mapping, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.experiments.registry import ExperimentScale, scale_by_name
from repro.store.keys import ENVIRONMENT_FIELDS, EXECUTION_FIELDS

PathLike = Union[str, Path]

#: ``ExperimentScale`` fields a spec may override or sweep.  Execution
#: knobs are derived from the single source of truth the cache keys use
#: (:data:`repro.store.keys.EXECUTION_FIELDS`), so a knob added there —
#: e.g. PR 5's ``shard_steps``/``transport`` — is automatically rejected
#: here too: two matrix cells differing only in an execution knob would
#: collide on one cache key while pretending to be distinct scenarios.
#: Environment fields (:data:`repro.store.keys.ENVIRONMENT_FIELDS`,
#: i.e. ``backend``) are rejected for the opposite reason: they *do*
#: change cache keys, but describe where a campaign runs rather than what
#: it computes — select them per invocation (CLI ``--backend``), not in
#: the campaign's identity.
_SCALE_FIELDS = frozenset(
    f.name for f in dataclasses.fields(ExperimentScale)
) - ({"name"} | EXECUTION_FIELDS | ENVIRONMENT_FIELDS)


def _check_scale_fields(assignments: Mapping[str, Any], context: str) -> None:
    unknown = set(assignments) - _SCALE_FIELDS
    if unknown:
        raise ConfigurationError(
            f"unknown scale field(s) {sorted(unknown)} in campaign {context}; "
            f"allowed: {sorted(_SCALE_FIELDS)} (execution knobs such as "
            "workers/sweep_workers/shard_steps/transport are per-invocation "
            "CLI flags, not spec fields, and the backend environment field "
            "is the --backend flag)"
        )


def _freeze(value: Any) -> Any:
    """Lists from TOML/JSON become tuples so scenarios hash and compare."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class Scenario:
    """One cell of a campaign grid: an experiment at a concrete scale."""

    scenario_id: str
    experiment_id: str
    scale: ExperimentScale
    cell: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> str:
        """Human-readable one-liner for status listings."""
        if not self.cell:
            return self.experiment_id
        assignments = ", ".join(f"{key}={value!r}" for key, value in self.cell)
        return f"{self.experiment_id} [{assignments}]"


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: experiments x scale matrix.

    Attributes:
        name: campaign name (used in store metadata and status output).
        experiments: registered experiment identifiers to run.
        scale: base scale preset name (``smoke`` / ``default`` / ``paper``).
        overrides: scale fields replaced in every scenario.
        matrix: scale fields swept across scenarios; the grid is the
            cartesian product of the value lists in declaration order.
    """

    name: str
    experiments: Tuple[str, ...]
    scale: str = "default"
    overrides: Tuple[Tuple[str, Any], ...] = ()
    matrix: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name must not be empty")
        if not self.experiments:
            raise ConfigurationError(
                "a campaign must name at least one experiment"
            )
        _check_scale_fields(dict(self.overrides), f"{self.name!r} overrides")
        _check_scale_fields(dict(self.matrix), f"{self.name!r} matrix")
        for field_name, values in self.matrix:
            if not isinstance(values, tuple) or not values:
                raise ConfigurationError(
                    f"matrix field {field_name!r} needs a non-empty list of "
                    f"values, got {values!r}"
                )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a parsed TOML/JSON document."""
        if not isinstance(document, Mapping):
            raise ConfigurationError(
                f"campaign spec must be a table/object, got {type(document).__name__}"
            )
        known = {"name", "experiments", "scale", "overrides", "matrix"}
        unknown = set(document) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec key(s) {sorted(unknown)}; known: {sorted(known)}"
            )
        experiments = document.get("experiments")
        if not isinstance(experiments, (list, tuple)) or not all(
            isinstance(item, str) for item in experiments or []
        ):
            raise ConfigurationError(
                "campaign spec needs an 'experiments' list of identifiers"
            )
        overrides = document.get("overrides", {})
        matrix = document.get("matrix", {})
        if not isinstance(overrides, Mapping) or not isinstance(matrix, Mapping):
            raise ConfigurationError(
                "'overrides' and 'matrix' must be tables mapping scale fields"
            )
        return cls(
            name=str(document.get("name", "")),
            experiments=tuple(experiments),
            scale=str(document.get("scale", "default")),
            overrides=tuple(
                (key, _freeze(value)) for key, value in overrides.items()
            ),
            matrix=tuple(
                (key, tuple(_freeze(item) for item in values))
                if isinstance(values, (list, tuple))
                else (key, values)
                for key, values in matrix.items()
            ),
        )

    @classmethod
    def load(cls, path: PathLike) -> "CampaignSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        source = Path(path)
        suffix = source.suffix.lower()
        if suffix == ".toml":
            document = tomllib.loads(source.read_text())
        elif suffix == ".json":
            document = json.loads(source.read_text())
        else:
            raise ConfigurationError(
                f"unsupported campaign spec format {suffix!r}; use .toml or .json"
            )
        if isinstance(document, dict) and not document.get("name"):
            # Default the campaign name to the file stem.
            document = {**document, "name": source.stem}
        return cls.from_dict(document)

    # ------------------------------------------------------------------ #
    def base_scale(self) -> ExperimentScale:
        """The base preset with the campaign-wide overrides applied."""
        scale = scale_by_name(self.scale)
        if self.overrides:
            scale = dataclasses.replace(scale, **dict(self.overrides))
        return scale

    def cells(self) -> List[Tuple[Tuple[str, Any], ...]]:
        """Every matrix cell, in cartesian-product order (may be ``[()]``)."""
        if not self.matrix:
            return [()]
        names = [name for name, _ in self.matrix]
        value_lists = [values for _, values in self.matrix]
        return [
            tuple(zip(names, combination))
            for combination in itertools.product(*value_lists)
        ]

    def scenarios(self) -> List[Scenario]:
        """The full scenario grid: experiments x matrix cells, in order."""
        base = self.base_scale()
        grid: List[Scenario] = []
        for experiment_id in self.experiments:
            for cell in self.cells():
                scale = (
                    dataclasses.replace(base, **dict(cell)) if cell else base
                )
                suffix = ",".join(f"{key}={value}" for key, value in cell)
                scenario_id = (
                    f"{experiment_id}@{suffix}" if suffix else experiment_id
                )
                grid.append(
                    Scenario(
                        scenario_id=scenario_id,
                        experiment_id=experiment_id,
                        scale=scale,
                        cell=cell,
                    )
                )
        return grid

    def scenario_count(self) -> int:
        """Size of the grid without materialising it."""
        cells = 1
        for _, values in self.matrix:
            cells *= len(values)
        return len(self.experiments) * cells
