"""Declarative experiment campaigns.

A *campaign* is a declarative description of a grid of scenarios —
registered experiments crossed with a matrix of scale overrides — executed
through the existing sweep/registry machinery with every result
checkpointed into a content-addressed :class:`~repro.store.result_store.
ResultStore`:

* :mod:`repro.campaigns.spec` — :class:`CampaignSpec` (loadable from TOML
  or JSON) and the scenario grid it enumerates;
* :mod:`repro.campaigns.runner` — :class:`CampaignRunner`: cached,
  kill-safe execution (``run``), per-scenario progress (``status``) and
  store hygiene (``clean``);
* :mod:`repro.campaigns.scheduler` — :class:`CampaignScheduler`: the
  concurrent execution path behind ``run(total_workers=W)``, running
  independent scenarios together under one worker budget and rebalancing
  freed workers into the scenarios still running;
* :mod:`repro.campaigns.progress` — the structured progress events both
  execution paths emit at their ``progress`` callback (cache hits,
  finished tasks, finished scenarios), plus the text renderer the CLI
  consumes them with.

A campaign re-run with an identical spec against a warm store is a pure
cache hit, bit-identical to a cold serial run; a campaign killed mid-grid
resumes exactly where it stopped — at the first unfinished iteration for
experiments that checkpoint per iteration.
"""

from repro.campaigns.completeness import CellCompleteness, cell_completeness
from repro.campaigns.progress import (
    CacheHit,
    EntryEvicted,
    ProgressEvent,
    ScenarioCompleted,
    StoreDegraded,
    TaskCompleted,
    TaskFailed,
    TaskQuarantined,
    TaskRetried,
)
from repro.campaigns.runner import (
    CampaignResult,
    CampaignRunner,
    ScenarioOutcome,
    ScenarioStatus,
)
from repro.campaigns.scheduler import CampaignScheduler
from repro.campaigns.spec import CampaignSpec, Scenario

__all__ = [
    "CacheHit",
    "CampaignResult",
    "CampaignRunner",
    "CampaignScheduler",
    "CampaignSpec",
    "CellCompleteness",
    "EntryEvicted",
    "cell_completeness",
    "ProgressEvent",
    "Scenario",
    "ScenarioCompleted",
    "ScenarioOutcome",
    "ScenarioStatus",
    "StoreDegraded",
    "TaskCompleted",
    "TaskFailed",
    "TaskQuarantined",
    "TaskRetried",
]
