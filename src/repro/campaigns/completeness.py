"""Per-cell completeness counting, shared by ``status`` and the query service.

``campaign status`` has always answered "how finished is this scenario"
by probing the store: the sweep entry means complete, otherwise count
row entries per value and iteration sub-entries below unfinished values
(a finished value's row subsumes its iterations — the sub-entries were
evicted on save).  The online query service needs the *same* answer to
decide whether a grid cell clears its confidence floor, and a second
implementation would inevitably drift from the first — so the counting
lives here, and both callers consume :class:`CellCompleteness`.

The helper takes the scenario's :class:`~repro.store.checkpoints.
StoreSweepCheckpoint` rather than re-deriving keys: the checkpoint's
``payload`` *is* the canonical content-address payload, so the keys
probed here are bitwise-identical to the keys the runner writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection, Sequence

from repro.store.checkpoints import StoreSweepCheckpoint
from repro.store.keys import SWEEP_KIND, cache_key

__all__ = ["CellCompleteness", "cell_completeness"]


@dataclass(frozen=True)
class CellCompleteness:
    """Store-side coverage of one campaign grid cell.

    ``checkpointed_iterations`` / ``total_iterations`` are both 0 when
    the experiment only checkpoints at value granularity; ``coverage``
    then falls back to the value fraction.
    """

    complete: bool
    checkpointed_values: int
    total_values: int
    checkpointed_iterations: int = 0
    total_iterations: int = 0
    quarantined: int = 0

    @property
    def coverage(self) -> float:
        """Fraction of the cell's committed work present, in ``[0, 1]``.

        Iteration-weighted when the experiment checkpoints iterations
        (the finest-grained truth available), the value fraction
        otherwise.  A complete cell is 1.0 by definition.
        """
        if self.complete:
            return 1.0
        if self.total_iterations:
            return self.checkpointed_iterations / self.total_iterations
        if self.total_values:
            return self.checkpointed_values / self.total_values
        return 0.0


def cell_completeness(
    store,
    checkpoint: StoreSweepCheckpoint,
    values: Sequence[float],
    poisoned: Collection[str] = (),
) -> CellCompleteness:
    """Count one cell's store coverage, exactly as ``status`` reports it.

    Args:
        store: the store to probe (``checkpoint.store`` is *not* used, so
            a checkpoint built against one store can be counted against
            another — the distributed path rebinds stores freely).
        checkpoint: the cell's sweep checkpoint; supplies the canonical
            payload (hence all keys) and the iteration granularity.
        values: the cell's sweep values, in grid order.
        poisoned: keys with poison records (pass ``store.poison_keys()``
            once per batch instead of per cell).
    """
    sweep_key = cache_key(SWEEP_KIND, checkpoint.payload)
    iterations = checkpoint.iterations or 0
    complete = store.contains(sweep_key)
    checkpointed_values = 0
    checkpointed_iterations = 0
    quarantined = 1 if sweep_key in poisoned else 0
    for value in values:
        row_key = checkpoint.key_for(value)
        if row_key in poisoned:
            quarantined += 1
        if store.contains(row_key):
            checkpointed_values += 1
            checkpointed_iterations += iterations
        elif iterations:
            checkpointed_iterations += sum(
                1
                for sub_key in checkpoint.iteration_keys_for(value)
                if store.contains(sub_key)
            )
    return CellCompleteness(
        complete=complete,
        checkpointed_values=checkpointed_values,
        total_values=len(values),
        checkpointed_iterations=(
            len(values) * iterations if complete else checkpointed_iterations
        ),
        total_iterations=len(values) * iterations,
        quarantined=quarantined,
    )
