"""Cached, resumable execution of campaign grids.

The runner walks a :class:`~repro.campaigns.spec.CampaignSpec`'s scenario
grid.  For every scenario it derives the content address of the complete
sweep (experiment cache payload + schema version) and

* returns the stored sweep when the address is already present and intact
  (*zero* simulation work — a warm re-run performs no measure calls);
* otherwise runs the experiment with a per-parameter-value
  :class:`~repro.store.checkpoints.StoreSweepCheckpoint` — carrying
  per-*iteration* sub-checkpoints for experiments that register an
  ``iterations_per_value`` — so each finished value *and* each finished
  iteration inside an unfinished value is durable the moment it exists,
  and a killed campaign resumes at the first unfinished iteration;
* detects corrupt entries (failed sha256 / undecodable payloads), evicts
  them and recomputes instead of returning damaged results.

Execution has two shapes.  Without ``total_workers`` the grid runs
serially, one scenario after another, each scenario using its own
``workers`` / ``sweep_workers`` knobs.  With ``total_workers`` the
:class:`~repro.campaigns.scheduler.CampaignScheduler` replaces the serial
loop: independent scenarios run concurrently under the one budget, and
workers freed by short scenarios rebalance into the scenarios still
running.  Worker knobs of either shape never enter cache keys.

Because every measure call is deterministic given the scenario
description, a resumed, cache-served or scheduled campaign is
bit-identical to an uninterrupted cold serial run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro import telemetry
from repro.campaigns.progress import (
    CacheHit,
    EntryEvicted,
    ProgressEvent,
    ScenarioCompleted,
    StoreDegraded,
    TaskFailed,
    TaskQuarantined,
    TaskRetried,
)
from repro.campaigns.completeness import cell_completeness
from repro.campaigns.spec import CampaignSpec, Scenario
from repro.experiments.registry import Experiment, ExperimentScale, get_experiment
from repro.simulation.sweep import SweepResult
from repro.store.checkpoints import StoreSweepCheckpoint
from repro.store.keys import SWEEP_KIND, cache_key, scale_payload
from repro.store.result_store import (
    ResultStore,
    StoreIntegrityError,
    is_degradable_error,
)
from repro.supervision import RetryPolicy


def scenario_payload(experiment: Experiment, scale: ExperimentScale) -> Dict[str, Any]:
    """The canonical content-address payload of one scenario's sweep.

    Uses the experiment's registered ``cache_payload`` when it has one
    (experiments running the same computation share entries), otherwise
    the experiment identifier plus the scale's logical fields.
    """
    if experiment.cache_payload is not None:
        return experiment.cache_payload(scale)
    return {
        "computation": "experiment",
        "experiment": experiment.identifier,
        "scale": scale_payload(scale),
    }


def scenario_sweep_key(experiment: Experiment, scale: ExperimentScale) -> str:
    """Content address of the complete sweep of one scenario."""
    return cache_key(SWEEP_KIND, scenario_payload(experiment, scale))


@dataclass(frozen=True)
class ScenarioOutcome:
    """What happened to one scenario during a campaign run.

    ``sweep`` is ``None`` when the scenario was quarantined (its tasks
    exhausted their retry budget under a supervising policy): the
    campaign completed around it, its finished rows stay checkpointed,
    and ``quarantined_values`` counts the poison tasks recorded.
    """

    scenario: Scenario
    sweep: Optional[SweepResult] = field(repr=False)
    cache_hit: bool
    loaded_values: int = 0
    computed_values: int = 0
    quarantined_values: int = 0


@dataclass(frozen=True)
class ScenarioStatus:
    """Store-side progress of one scenario (``status`` subcommand).

    ``checkpointed_iterations`` / ``total_iterations`` report iteration-
    granular coverage for experiments that checkpoint per iteration:
    finished values count all of their iterations (their row subsumes
    them), unfinished values count the iteration sub-entries actually
    present.  Both are 0 when the experiment only checkpoints values.
    """

    scenario: Scenario
    complete: bool
    checkpointed_values: int
    total_values: int
    checkpointed_iterations: int = 0
    total_iterations: int = 0
    quarantined: int = 0

    @property
    def state(self) -> str:
        suffix = f", {self.quarantined} quarantined" if self.quarantined else ""
        if self.complete:
            return "complete"
        if self.checkpointed_values or self.checkpointed_iterations:
            if self.total_iterations:
                return (
                    f"partial ({self.checkpointed_values}/{self.total_values} "
                    f"values, {self.checkpointed_iterations}/"
                    f"{self.total_iterations} iterations{suffix})"
                )
            return (
                f"partial ({self.checkpointed_values}/{self.total_values}"
                f"{suffix})"
            )
        if self.quarantined:
            return f"missing ({self.quarantined} quarantined)"
        return "missing"


@dataclass(frozen=True)
class CampaignResult:
    """All scenario outcomes of one campaign run, in grid order."""

    spec: CampaignSpec
    outcomes: List[ScenarioOutcome]

    @property
    def sweeps(self) -> Dict[str, SweepResult]:
        """Scenario id -> sweep, for every *completed* scenario.

        Quarantined scenarios (``outcome.sweep is None``) are omitted —
        their finished rows stay checkpointed in the store but no
        complete sweep exists to hand out.
        """
        return {
            outcome.scenario.scenario_id: outcome.sweep
            for outcome in self.outcomes
            if outcome.sweep is not None
        }

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cache_hit)

    @property
    def computed_values(self) -> int:
        return sum(outcome.computed_values for outcome in self.outcomes)

    @property
    def quarantined_tasks(self) -> int:
        """Poison tasks recorded across the run (0 on a healthy campaign)."""
        return sum(outcome.quarantined_values for outcome in self.outcomes)


class CampaignRunner:
    """Execute a campaign grid against a result store.

    Args:
        spec: the campaign to run.
        store: destination/source of cached results.
        workers: iteration-level processes per parameter value (serial
            scenario loop).
        sweep_workers: parameter values measured concurrently per scenario
            (serial scenario loop).
        total_workers: one total worker budget for the whole campaign.
            Setting it replaces the serial scenario loop with the
            :class:`~repro.campaigns.scheduler.CampaignScheduler`:
            independent scenarios run concurrently, sharing the budget,
            with freed workers rebalanced into still-running scenarios
            (wins over the two per-scenario knobs, like the CLI flag).
        max_retries: failed attempts a task may accumulate beyond its
            first before it is quarantined as a poison task (0/``None``
            = legacy fail-fast).  Under the scheduler, retries apply per
            value task; under the serial loop, per scenario (each retry
            resumes from the rows the failed attempt checkpointed).
        task_timeout: seconds one scheduled task may run before its pool
            is presumed wedged and SIGKILLed (scheduler path only — the
            serial loop runs tasks in-process and cannot preempt them).
        retry_backoff: base of the capped exponential backoff between
            attempts (seconds; default 0.5).
        telemetry: record the run's spans/metrics under
            ``<store root>/telemetry/<run id>/`` and seal them into a
            ``run_report.json`` (see :mod:`repro.telemetry`).  Defaults
            to on; pass ``False`` to opt out.  Tracing never affects
            results, and a failing trace sink never fails the campaign.

    Worker and supervision knobs only change wall-clock behaviour; they
    never enter cache keys, and results are bit-identical for every
    setting — a retried task reproduces exactly the result it would have
    had, because every measure call is a pure function of its value.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: Optional[int] = None,
        sweep_workers: Optional[int] = None,
        total_workers: Optional[int] = None,
        max_retries: Optional[int] = None,
        task_timeout: Optional[float] = None,
        retry_backoff: Optional[float] = None,
        telemetry: Optional[bool] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = workers
        self.sweep_workers = sweep_workers
        self.total_workers = total_workers
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.telemetry = True if telemetry is None else bool(telemetry)

    @property
    def retry_policy(self) -> RetryPolicy:
        """The supervision policy the runner's knobs select (validated)."""
        return RetryPolicy(
            max_retries=self.max_retries or 0,
            backoff=0.5 if self.retry_backoff is None else self.retry_backoff,
            task_timeout=self.task_timeout,
        )

    # ------------------------------------------------------------------ #
    def _execution_scale(
        self, experiment: Experiment, scale: ExperimentScale
    ) -> ExperimentScale:
        """Apply the serial loop's worker knobs to a scenario's scale.

        (``total_workers`` never reaches this path — it selects the
        scheduler, which allots workers per task instead.)
        """
        if self.workers is not None:
            scale = scale.with_workers(self.workers)
        if self.sweep_workers is not None:
            scale = scale.with_sweep_workers(self.sweep_workers)
        return scale

    def _checkpoint_for(
        self,
        experiment: Experiment,
        scenario: Scenario,
        store: Optional[ResultStore] = None,
    ) -> StoreSweepCheckpoint:
        """A scenario's sweep checkpoint, optionally bound to ``store``.

        ``store`` substitutes the backing store without changing any key
        — the distributed path binds worker-side checkpoints to a
        :class:`~repro.distributed.remote_store.RemoteResultStore` so
        iteration sub-entries written inside a leased task land in the
        same server-side store the scheduler reads.
        """
        return StoreSweepCheckpoint(
            self.store if store is None else store,
            scenario_payload(experiment, scenario.scale),
            metadata={
                "campaign": self.spec.name,
                "scenario": scenario.scenario_id,
            },
            iterations=experiment.checkpoint_iterations(scenario.scale),
        )

    def _row_keys(self, experiment: Experiment, scenario: Scenario) -> List[str]:
        checkpoint = self._checkpoint_for(experiment, scenario)
        return [
            checkpoint.key_for(value)
            for value in experiment.sweep_values(scenario.scale)
        ]

    def _iteration_keys(
        self, experiment: Experiment, scenario: Scenario
    ) -> List[str]:
        """Every iteration sub-key the scenario can address (may be [])."""
        checkpoint = self._checkpoint_for(experiment, scenario)
        keys: List[str] = []
        for value in experiment.sweep_values(scenario.scale):
            keys.extend(checkpoint.iteration_keys_for(value))
        return keys

    def probe_sweep(
        self, scenario: Scenario, key: str, say: Callable[[ProgressEvent], None]
    ) -> Optional[SweepResult]:
        """The stored sweep under ``key``, or ``None`` to (re)compute.

        Shared by the serial loop and the scheduler so both paths treat
        cache hits and unusable entries identically: a corrupt entry, or
        one evicted by a concurrent writer between ``contains()`` and
        ``get()``, is quarantined — moved aside with provenance for
        post-mortem diagnosis instead of silently deleted — and reported
        as a miss, so the sweep recomputes.
        """
        if not self.store.contains(key):
            telemetry.metrics.counter("campaign.cache.misses").add(1)
            return None
        try:
            sweep = self.store.get(key)
        except (KeyError, StoreIntegrityError) as error:
            self.store.quarantine_entry(key, reason=str(error))
            telemetry.metrics.counter("campaign.cache.evictions").add(1)
            say(EntryEvicted(scenario_id=scenario.scenario_id))
            return None
        telemetry.metrics.counter("campaign.cache.hits").add(1)
        say(CacheHit(scenario_id=scenario.scenario_id, key=key))
        return sweep

    def _put_sweep(
        self,
        key: str,
        sweep: SweepResult,
        scenario_id: str,
        say: Callable[[ProgressEvent], None],
    ) -> None:
        """Persist one complete sweep, degrading gracefully on ENOSPC & co.

        A degradable write failure loses only the sweep-level cache entry
        — every row is already checkpointed (or held in memory by the
        degraded checkpoint), so the run's results are intact and the
        next healthy run reassembles the sweep for free.
        """
        try:
            self.store.put(
                key,
                sweep,
                metadata={
                    "campaign": self.spec.name,
                    "scenario": scenario_id,
                },
                kind=SWEEP_KIND,
            )
        except OSError as error:
            if not is_degradable_error(error):
                raise
            say(
                StoreDegraded(
                    scenario_id=scenario_id, scope="sweep", reason=str(error)
                )
            )

    # ------------------------------------------------------------------ #
    def run(
        self,
        resume: bool = True,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> CampaignResult:
        """Run every scenario of the grid, reusing the store where possible.

        With ``total_workers`` set, execution is handed to the
        :class:`~repro.campaigns.scheduler.CampaignScheduler` (scenarios
        concurrent under one budget); the serial loop below runs
        otherwise.  Both paths address identical store entries and return
        bit-identical results.

        Args:
            resume: when ``True`` (default), existing store entries are
                reused; when ``False`` every entry the grid addresses is
                evicted *up front*, forcing one clean recomputation (which
                is itself checkpointed, so even a fresh run is kill-safe —
                and sweeps shared between scenarios are still computed
                only once per run).
            progress: optional callable receiving one structured
                :data:`~repro.campaigns.progress.ProgressEvent` per
                reportable fact (cache hits, finished tasks, finished
                scenarios).  Text consumers wrap a ``str`` sink with
                :func:`repro.campaigns.progress.as_text` — the CLI passes
                ``as_text(print)``.
        """
        say = progress if progress is not None else (lambda event: None)
        run_handle = self._start_telemetry()
        if run_handle is not None:
            # Progress events double as trace annotations; the consumer
            # still receives the identical event objects, so CLI text is
            # byte for byte what it was without telemetry.
            say = telemetry.annotated(say)
        result: Optional[CampaignResult] = None
        try:
            with telemetry.span(
                "campaign",
                campaign=self.spec.name,
                scenarios=self.spec.scenario_count(),
                total_workers=self.total_workers,
            ):
                if self.total_workers is not None:
                    from repro.campaigns.scheduler import CampaignScheduler

                    result = CampaignScheduler(self, self.total_workers).run(
                        resume=resume, progress=say
                    )
                else:
                    result = self._run_serial(resume, say)
            return result
        finally:
            if run_handle is not None:
                run_handle.finish(result)

    def _start_telemetry(self) -> Optional[telemetry.TelemetryRun]:
        """Arm a telemetry run under the store root, or ``None``.

        Observability must never take a campaign down: any failure to
        create the run directory (read-only store, permissions) simply
        runs the campaign untraced.
        """
        if not self.telemetry:
            return None
        try:
            return telemetry.start_run(
                Path(self.store.root) / "telemetry", campaign=self.spec.name
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException:
            return None

    def _run_serial(
        self, resume: bool, say: Callable[[ProgressEvent], None]
    ) -> CampaignResult:
        """The serial scenario loop (no ``total_workers`` budget)."""
        policy = self.retry_policy
        if not resume:
            for scenario in self.spec.scenarios():
                self.evict_scenario(
                    get_experiment(scenario.experiment_id), scenario
                )
        outcomes: List[ScenarioOutcome] = []
        for scenario in self.spec.scenarios():
            with telemetry.span(
                "scenario",
                scenario=scenario.scenario_id,
                experiment=scenario.experiment_id,
            ):
                outcomes.append(self._run_scenario(scenario, policy, say))
        return CampaignResult(spec=self.spec, outcomes=outcomes)

    def _run_scenario(
        self,
        scenario: Scenario,
        policy: RetryPolicy,
        say: Callable[[ProgressEvent], None],
    ) -> ScenarioOutcome:
        """Run (or serve from cache) one scenario of the serial loop."""
        experiment = get_experiment(scenario.experiment_id)
        key = scenario_sweep_key(experiment, scenario.scale)
        sweep = self.probe_sweep(scenario, key, say)
        if sweep is not None:
            return ScenarioOutcome(scenario=scenario, sweep=sweep, cache_hit=True)

        checkpoint = self._checkpoint_for(experiment, scenario)
        execution_scale = self._execution_scale(experiment, scenario.scale)
        # The serial loop supervises at scenario granularity: each
        # retry runs with a fresh checkpoint object, so it resumes
        # from whatever rows and iterations the failed attempt had
        # already persisted — retries re-simulate only the work in
        # flight when the failure hit, and the final result is
        # bit-identical to a fault-free run.  The default policy
        # (no retries) re-raises the first failure, as ever.
        attempt = 0
        sweep = None
        while True:
            try:
                if experiment.supports_checkpoint:
                    sweep = experiment.run_with_checkpoint(
                        execution_scale, checkpoint
                    )
                else:
                    # Experiments with cross-value state (e.g. a shared
                    # sequential random stream) cache at sweep
                    # granularity only.
                    sweep = experiment.run(execution_scale)
                break
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                attempt += 1
                if not policy.supervised:
                    raise
                say(
                    TaskFailed(
                        scenario_id=scenario.scenario_id,
                        value=None,
                        attempt=attempt,
                        error=str(error),
                    )
                )
                if attempt > policy.max_retries:
                    self.store.record_poison(
                        key,
                        {
                            "campaign": self.spec.name,
                            "scenario": scenario.scenario_id,
                            "value": None,
                            "error": str(error),
                            "attempts": attempt,
                        },
                    )
                    say(
                        TaskQuarantined(
                            scenario_id=scenario.scenario_id,
                            value=None,
                            attempts=attempt,
                            error=str(error),
                        )
                    )
                    break
                delay = policy.delay_for(attempt)
                say(
                    TaskRetried(
                        scenario_id=scenario.scenario_id,
                        value=None,
                        attempt=attempt,
                        max_retries=policy.max_retries,
                        delay=delay,
                        error=str(error),
                    )
                )
                time.sleep(delay)
                checkpoint = self._checkpoint_for(experiment, scenario)
        if sweep is None:
            return ScenarioOutcome(
                scenario=scenario,
                sweep=None,
                cache_hit=False,
                loaded_values=checkpoint.loaded,
                computed_values=(
                    checkpoint.saved if experiment.supports_checkpoint else 0
                ),
                quarantined_values=1,
            )
        if checkpoint.degraded:
            say(
                StoreDegraded(
                    scenario_id=scenario.scenario_id,
                    scope="row",
                    reason=checkpoint.degraded,
                )
            )
        self._put_sweep(key, sweep, scenario.scenario_id, say)
        outcome = ScenarioOutcome(
            scenario=scenario,
            sweep=sweep,
            cache_hit=False,
            loaded_values=checkpoint.loaded,
            computed_values=(
                checkpoint.saved
                if experiment.supports_checkpoint
                else len(sweep.rows)
            ),
        )
        say(
            ScenarioCompleted(
                scenario_id=scenario.scenario_id,
                computed_values=outcome.computed_values,
                loaded_values=outcome.loaded_values,
            )
        )
        return outcome

    # ------------------------------------------------------------------ #
    def status(self) -> List[ScenarioStatus]:
        """Store-side progress of every scenario, in grid order.

        Iteration coverage counts a finished value's iterations as fully
        covered (its row subsumes them — the sub-entries were evicted on
        save) plus whatever iteration sub-entries unfinished values have
        actually persisted.  ``quarantined`` counts the scenario's keys
        (sweep and value rows) with poison records — tasks that exhausted
        their retry budget in a supervised run.  The records persist for
        post-mortem until ``campaign clean`` (or ``--no-resume``) drops
        them; a re-run still attempts the tasks afresh.
        """
        statuses: List[ScenarioStatus] = []
        poisoned = self.store.poison_keys()
        for scenario in self.spec.scenarios():
            experiment = get_experiment(scenario.experiment_id)
            checkpoint = self._checkpoint_for(experiment, scenario)
            counts = cell_completeness(
                self.store,
                checkpoint,
                list(experiment.sweep_values(scenario.scale)),
                poisoned=poisoned,
            )
            statuses.append(
                ScenarioStatus(
                    scenario=scenario,
                    complete=counts.complete,
                    checkpointed_values=counts.checkpointed_values,
                    total_values=counts.total_values,
                    checkpointed_iterations=counts.checkpointed_iterations,
                    total_iterations=counts.total_iterations,
                    quarantined=counts.quarantined,
                )
            )
        return statuses

    def evict_scenario(self, experiment: Experiment, scenario: Scenario) -> int:
        """Remove one scenario's sweep, row and iteration entries.

        Poison records and quarantined-entry copies of the same keys are
        dropped along with them (and counted), so an evicted scenario
        starts over with a clean slate — quarantine is an exclusion of
        *recorded* failures, not a permanent ban.
        """
        removed = 0
        sweep_key = scenario_sweep_key(experiment, scenario.scale)
        keys = (
            [sweep_key]
            + self._row_keys(experiment, scenario)
            + self._iteration_keys(experiment, scenario)
        )
        for entry_key in keys:
            if self.store.evict(entry_key):
                removed += 1
            if self.store.clear_poison(entry_key):
                removed += 1
            if self.store.drop_quarantined_entry(entry_key):
                removed += 1
        return removed

    def clean(self) -> int:
        """Evict every entry this campaign's grid addresses.

        Content addressing means entries are shared with any other
        campaign describing the same computation; ``clean`` removes the
        entries *this* spec reaches, not the whole store.
        """
        removed = 0
        for scenario in self.spec.scenarios():
            experiment = get_experiment(scenario.experiment_id)
            removed += self.evict_scenario(experiment, scenario)
        # Stale staging directories from killed writers are swept as a
        # side effect but are not store entries; they don't count.
        self.store.clear_staging()
        return removed


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    resume: bool = True,
    workers: Optional[int] = None,
    sweep_workers: Optional[int] = None,
    total_workers: Optional[int] = None,
    max_retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retry_backoff: Optional[float] = None,
    telemetry: Optional[bool] = None,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
) -> CampaignResult:
    """One-call convenience wrapper around :class:`CampaignRunner`."""
    runner = CampaignRunner(
        spec,
        store,
        workers=workers,
        sweep_workers=sweep_workers,
        total_workers=total_workers,
        max_retries=max_retries,
        task_timeout=task_timeout,
        retry_backoff=retry_backoff,
        telemetry=telemetry,
    )
    return runner.run(resume=resume, progress=progress)
