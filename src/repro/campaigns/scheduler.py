"""Campaign-level scenario scheduling under one total worker budget.

The serial :class:`~repro.campaigns.runner.CampaignRunner` loop walks the
scenario grid one scenario at a time: parallelism exists only *inside* a
scenario, so a campaign of many small heterogeneous scenarios leaves most
of a large worker budget idle, and the last long scenario always runs
alone.  The scheduler here replaces that loop whenever the campaign is
given one total budget ``W`` (``campaign run --total-workers``):

* every *unique* sweep computation of the grid — scenarios sharing a
  cache payload collapse onto one job, exactly as they share one store
  entry — is decomposed into its per-parameter-value tasks when the
  experiment registers a picklable ``sweep_measure`` (see
  :class:`repro.experiments.registry.Experiment`), or into one atomic
  task otherwise;
* tasks from *all* scenarios run concurrently in one shared process pool
  holding at most ``W`` workers, interleaved round-robin across jobs so
  independent scenarios genuinely progress together;
* each task is granted a worker allotment by :func:`repro.simulation.
  sweep.adaptive_worker_allotment` at the moment it is submitted: with a
  full queue every task gets one worker (scenario-level breadth); as
  scenarios finish and return their workers, the tasks still waiting are
  granted larger allotments that their measures turn into bigger nested
  iteration pools (depth) — the freed workers of short scenarios are
  rebalanced into the scenarios still running, closing the tail.

Determinism
-----------
Every value task computes exactly what the serial path computes — the
same registered measure applied to the same value — in a worker process
whose allotment only resizes nested pools (bit-identical by the PR 1/2
worker guarantees).  Rows are assembled in sweep order, value rows are
checkpointed in completion order and iteration sub-checkpoints are
written inside the task, all through the same store checkpoints the
serial path uses.  A scheduled campaign is therefore bit-identical to a
cold serial run at every budget, and a killed one resumes at the first
unfinished iteration.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.campaigns.progress import (
    ProgressEvent,
    ScenarioCompleted,
    StoreDegraded,
    TaskCompleted,
    TaskFailed,
    TaskQuarantined,
    TaskRetried,
)
from repro.campaigns.spec import Scenario
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    get_experiment,
)
from repro.simulation.sharding import max_useful_shards
from repro.simulation.sweep import (
    SweepResult,
    adaptive_worker_allotment,
    measure_row,
)
from repro.store.checkpoints import StoreSweepCheckpoint
from repro.supervision import run_supervised

__all__ = ["CampaignScheduler"]


def _run_experiment_task(
    experiment: Experiment,
    scale: ExperimentScale,
    checkpoint: Optional[StoreSweepCheckpoint],
) -> Tuple[SweepResult, int, int]:
    """Worker-process body of one atomic (non-decomposable) scenario.

    The :class:`Experiment` itself crosses the boundary: its callables
    pickle *by reference*, which forces the defining module to import in
    the worker — the same mechanism that ships decomposed measures — so
    dynamically registered experiments work under every start method,
    not just fork.  Returns the sweep plus the checkpoint's (loaded,
    saved) counters, which live in this process.
    """
    with telemetry.span("task", experiment=experiment.identifier, atomic=True):
        sweep = experiment.run_with_checkpoint(scale, checkpoint)
    loaded = getattr(checkpoint, "loaded", 0) if checkpoint is not None else 0
    saved = getattr(checkpoint, "saved", 0) if checkpoint is not None else 0
    return sweep, loaded, saved


@dataclass(eq=False)
class _SweepJob:
    """One unique sweep computation and the scenarios it serves.

    ``eq=False`` keeps identity hashing: ``(job, index)`` pairs are the
    hashable task descriptors of the supervised gather.
    """

    key: str
    experiment: Experiment
    scenario: Scenario
    aliases: List[Scenario] = field(default_factory=list)
    cache_hit: bool = False
    checkpoint: Optional[StoreSweepCheckpoint] = None
    atomic: bool = False
    width: int = 1
    values: List[float] = field(default_factory=list)
    measure: Any = None
    rows: Dict[int, Dict[str, float]] = field(default_factory=dict)
    pending: List[int] = field(default_factory=list)
    loaded_values: int = 0
    computed_values: int = 0
    sweep: Optional[SweepResult] = None
    quarantined: Dict[int, str] = field(default_factory=dict)
    degradation_reported: bool = False

    @property
    def done(self) -> bool:
        return self.sweep is not None


class CampaignScheduler:
    """Run a campaign's scenario grid concurrently under one budget.

    Constructed by :meth:`repro.campaigns.runner.CampaignRunner.run` when
    ``total_workers`` is set; shares the runner's spec, store, checkpoint
    construction and eviction helpers so both execution paths address
    exactly the same entries.
    """

    def __init__(self, runner, total_workers: int) -> None:
        from repro.exceptions import ConfigurationError

        if total_workers < 1:
            raise ConfigurationError(
                f"total_workers must be at least 1, got {total_workers}"
            )
        self.runner = runner
        self.total_workers = total_workers
        # Scenario spans stay open while a job's tasks are in flight —
        # lifetimes interleave, so these are manual begin/end spans keyed
        # by job, not context-manager spans (see repro.telemetry.tracing).
        self._spans: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    def run(
        self,
        resume: bool = True,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ):
        """Scheduler counterpart of :meth:`CampaignRunner.run` (same
        semantics, same return type, scenarios concurrent).  ``progress``
        receives structured :data:`~repro.campaigns.progress.ProgressEvent`
        objects (see :meth:`CampaignRunner.run`)."""
        from repro.campaigns.runner import (
            CampaignResult,
            ScenarioOutcome,
            scenario_sweep_key,
        )

        runner = self.runner
        say = progress if progress is not None else (lambda event: None)
        if not resume:
            for scenario in runner.spec.scenarios():
                runner.evict_scenario(
                    get_experiment(scenario.experiment_id), scenario
                )

        jobs: Dict[str, _SweepJob] = {}
        order: List[Tuple[Scenario, str]] = []
        for scenario in runner.spec.scenarios():
            experiment = get_experiment(scenario.experiment_id)
            key = scenario_sweep_key(experiment, scenario.scale)
            order.append((scenario, key))
            if key in jobs:
                jobs[key].aliases.append(scenario)
                continue
            job = _SweepJob(key=key, experiment=experiment, scenario=scenario)
            jobs[key] = job
            sweep = runner.probe_sweep(scenario, key, say)
            if sweep is not None:
                job.sweep = sweep
                job.cache_hit = True
                continue
            self._spans[key] = telemetry.begin_span(
                "scenario",
                scenario=scenario.scenario_id,
                experiment=experiment.identifier,
            )
            self._prepare(job, say)

        try:
            self._execute([job for job in jobs.values() if not job.done], say)
        finally:
            # Quarantined jobs never reach _store_sweep; close their
            # spans (and any left by an exception) so the trace balances.
            for key, span in list(self._spans.items()):
                job = jobs.get(key)
                status = (
                    "quarantined" if job is not None and job.quarantined
                    else "ok"
                )
                span.end(status=status)
            self._spans.clear()

        outcomes: List[ScenarioOutcome] = []
        primaries: set = set()
        for scenario, key in order:
            job = jobs[key]
            primary = key not in primaries
            primaries.add(key)
            if job.cache_hit or (not primary and job.sweep is not None):
                # Aliases of a computed job see exactly what the serial
                # loop would: a store entry that already exists.
                outcomes.append(
                    ScenarioOutcome(scenario=scenario, sweep=job.sweep, cache_hit=True)
                )
            else:
                # Quarantined jobs surface here with ``sweep=None``: the
                # campaign completed around them and their finished rows
                # are checkpointed, but no complete sweep exists.  Their
                # quarantined-task count is attributed to the primary
                # scenario only (aliases share the poison records).
                outcomes.append(
                    ScenarioOutcome(
                        scenario=scenario,
                        sweep=job.sweep,
                        cache_hit=False,
                        loaded_values=job.loaded_values if primary else 0,
                        computed_values=job.computed_values if primary else 0,
                        quarantined_values=len(job.quarantined) if primary else 0,
                    )
                )
        return CampaignResult(spec=runner.spec, outcomes=outcomes)

    # ------------------------------------------------------------------ #
    def _prepare(self, job: _SweepJob, say: Callable[[ProgressEvent], None]) -> None:
        """Decompose one job into value tasks (or mark it atomic)."""
        experiment = job.experiment
        scale = job.scenario.scale
        job.checkpoint = self.runner._checkpoint_for(experiment, job.scenario)
        if not experiment.supports_scheduling:
            job.atomic = True
            job.width = max(1, experiment.sweep_width(scale))
            return
        job.values = [float(value) for value in experiment.sweep_values(scale)]
        for index, value in enumerate(job.values):
            row = job.checkpoint.load(value)
            if row is not None:
                job.rows[index] = dict(row)
        job.loaded_values = len(job.rows)
        job.pending = [
            index for index in range(len(job.values)) if index not in job.rows
        ]
        measure = experiment.sweep_measure(scale)
        rebind = getattr(measure, "with_value_checkpoint", None)
        if rebind is not None:
            measure = rebind(job.checkpoint)
        job.measure = measure
        # A task's useful width is its inner parallelism: the simulation
        # iteration count times the intra-iteration shard capacity when
        # the experiment declares iterations (workers granted beyond the
        # iteration count fold into trajectory shards — see
        # :func:`repro.simulation.sharding.resolve_shard_plan` — instead
        # of idling), otherwise the whole budget for any measure that can
        # resize its nested pools (e.g. the stationary sweep parallelises
        # its placement draws), and 1 for measures that cannot use extra
        # workers at all.
        iterations = experiment.checkpoint_iterations(scale)
        if iterations is not None:
            job.width = max(1, iterations) * max_useful_shards(scale.steps)
        elif getattr(measure, "with_iteration_workers", None) is not None:
            job.width = self.total_workers
        else:
            job.width = 1
        if not job.pending:
            # Every row was checkpointed: the sweep reassembles for free.
            self._finish(job, say)

    def _finish(self, job: _SweepJob, say: Callable[[ProgressEvent], None]) -> None:
        """Assemble a completed decomposed job and persist its sweep."""
        job.sweep = SweepResult(
            parameter_name=job.experiment.parameter_name,
            rows=[job.rows[index] for index in range(len(job.values))],
        )
        self._store_sweep(job, say)

    def _store_sweep(
        self, job: _SweepJob, say: Callable[[ProgressEvent], None]
    ) -> None:
        self.runner._put_sweep(
            job.key, job.sweep, job.scenario.scenario_id, say
        )
        span = self._spans.pop(job.key, None)
        if span is not None:
            span.set(
                computed_values=job.computed_values,
                loaded_values=job.loaded_values,
            )
            span.end()
        say(
            ScenarioCompleted(
                scenario_id=job.scenario.scenario_id,
                computed_values=job.computed_values,
                loaded_values=job.loaded_values,
            )
        )

    def _note_degradation(
        self, job: _SweepJob, say: Callable[[ProgressEvent], None]
    ) -> None:
        """Surface a checkpoint's first degradation as a progress event."""
        checkpoint = job.checkpoint
        if (
            checkpoint is not None
            and checkpoint.degraded
            and not job.degradation_reported
        ):
            job.degradation_reported = True
            say(
                StoreDegraded(
                    scenario_id=job.scenario.scenario_id,
                    scope="row",
                    reason=checkpoint.degraded,
                )
            )

    # ------------------------------------------------------------------ #
    def _queue(self, jobs: List[_SweepJob]) -> List[Tuple[_SweepJob, int]]:
        """All runnable tasks, interleaved round-robin across jobs.

        Round-robin (first value of every job, then second of every job,
        ...) is what makes independent scenarios run *concurrently* under
        small budgets instead of draining one scenario at a time.
        """
        lanes: List[List[Tuple[_SweepJob, int]]] = []
        for job in jobs:
            if job.atomic:
                lanes.append([(job, -1)])
            else:
                lanes.append([(job, index) for index in job.pending])
        queue: List[Tuple[_SweepJob, int]] = []
        depth = 0
        while True:
            emitted = False
            for lane in lanes:
                if depth < len(lane):
                    queue.append(lane[depth])
                    emitted = True
            if not emitted:
                return queue
            depth += 1

    def _submit(self, pool: ProcessPoolExecutor, job: _SweepJob, index: int, allotment: int):
        """Submit one task with ``allotment`` workers; returns its future.

        The submitted callable is wrapped with the job's scenario span
        context (:func:`repro.telemetry.propagate`): the worker-side task
        span then parents under this scenario across the process
        boundary.  With telemetry inactive the wrap is identity.
        """
        telemetry.metrics.histogram("scheduler.allotment").observe(allotment)
        parent = self._spans.get(job.key)
        if job.atomic:
            scale = job.scenario.scale
            if allotment > 1:
                scale = job.experiment.with_worker_budget(scale, allotment)
            checkpoint = (
                job.checkpoint if job.experiment.supports_checkpoint else None
            )
            return pool.submit(
                telemetry.propagate(_run_experiment_task, parent=parent),
                job.experiment,
                scale,
                checkpoint,
            )
        measure = job.measure
        if allotment > 1:
            rebind = getattr(measure, "with_iteration_workers", None)
            if rebind is not None:
                measure = rebind(allotment)
        return pool.submit(
            telemetry.propagate(measure_row, parent=parent),
            job.experiment.parameter_name,
            measure,
            job.values[index],
        )

    def _task_event(
        self, job: _SweepJob, index: int, allotment: int
    ) -> TaskCompleted:
        """One per-task completion event for the progress stream.

        Scenario, parameter value, value coverage and the worker shape the
        task ran with (its allotment, and how that decomposes into
        iterations when the experiment declares them) — so a long campaign
        reports progress at task completion rate instead of one event per
        finished scenario.
        """
        scenario = job.scenario.scenario_id
        if job.atomic:
            return TaskCompleted(
                scenario_id=scenario,
                value=None,
                values_done=len(job.sweep.rows) if job.sweep else 0,
                values_total=len(job.sweep.rows) if job.sweep else 0,
                workers=allotment,
                atomic=True,
            )
        return TaskCompleted(
            scenario_id=scenario,
            value=job.values[index],
            values_done=len(job.rows),
            values_total=len(job.values),
            workers=allotment,
            iterations=job.experiment.checkpoint_iterations(job.scenario.scale),
        )

    # ------------------------------------------------------------------ #
    # Task dispositions.  These are methods (not closures of _execute) so
    # execution backends that replace _execute — the pull-based
    # DistributedCampaign drains an HTTP work queue instead of a local
    # pool — apply the *same* row saving, poison recording and progress
    # reporting to results however they arrive.

    def _task_value(self, task: Tuple[_SweepJob, int]) -> Optional[float]:
        job, index = task
        return None if job.atomic else job.values[index]

    def _handle_result(
        self,
        task: Tuple[_SweepJob, int],
        result: Any,
        allotment: int,
        say: Callable[[ProgressEvent], None],
    ) -> None:
        """Land one finished task: save its row, finish jobs that fill."""
        job, index = task
        if job.atomic:
            sweep, loaded, saved = result
            job.sweep = sweep
            job.loaded_values = loaded
            job.computed_values = (
                saved
                if job.experiment.supports_checkpoint
                else len(sweep.rows)
            )
            say(self._task_event(job, index, allotment))
            self._store_sweep(job, say)
        else:
            job.checkpoint.save(job.values[index], result)
            self._note_degradation(job, say)
            job.rows[index] = result
            job.computed_values += 1
            say(self._task_event(job, index, allotment))
            if len(job.rows) == len(job.values):
                self._finish(job, say)

    def _handle_retry(
        self,
        task: Tuple[_SweepJob, int],
        error: Any,
        attempt: int,
        delay: float,
        say: Callable[[ProgressEvent], None],
    ) -> None:
        job, _ = task
        say(
            TaskFailed(
                scenario_id=job.scenario.scenario_id,
                value=self._task_value(task),
                attempt=attempt,
                error=str(error),
            )
        )
        say(
            TaskRetried(
                scenario_id=job.scenario.scenario_id,
                value=self._task_value(task),
                attempt=attempt,
                max_retries=self.runner.retry_policy.max_retries,
                delay=delay,
                error=str(error),
            )
        )

    def _handle_giveup(
        self,
        task: Tuple[_SweepJob, int],
        error: Any,
        attempts: int,
        say: Callable[[ProgressEvent], None],
    ) -> bool:
        """Quarantine an exhausted task: poison record + progress events."""
        job, index = task
        value = self._task_value(task)
        say(
            TaskFailed(
                scenario_id=job.scenario.scenario_id,
                value=value,
                attempt=attempts,
                error=str(error),
            )
        )
        key = job.key if job.atomic else job.checkpoint.key_for(
            job.values[index]
        )
        self.runner.store.record_poison(
            key,
            {
                "campaign": self.runner.spec.name,
                "scenario": job.scenario.scenario_id,
                "value": value,
                "error": str(error),
                "attempts": attempts,
            },
        )
        job.quarantined[index] = str(error)
        say(
            TaskQuarantined(
                scenario_id=job.scenario.scenario_id,
                value=value,
                attempts=attempts,
                error=str(error),
            )
        )
        return True

    def _execute(
        self, jobs: List[_SweepJob], say: Callable[[ProgressEvent], None]
    ) -> None:
        """The scheduling loop: submit within budget, collect, rebalance.

        Runs through :func:`repro.supervision.run_supervised`: with the
        runner's default policy the behaviour is the legacy fail-fast
        loop, and with ``max_retries`` / ``task_timeout`` opted in a
        crashed worker, task exception or hung task is retried with
        backoff on a respawned pool (dead writers' staging directories
        swept in between) and quarantined as a poison task once its
        retries are exhausted — the campaign finishes around it.

        Every finished task emits one progress event (scenario, value,
        coverage counts) the moment it completes; scenario-level summary
        lines still follow when a whole sweep lands, and every failed
        attempt emits ``TaskFailed`` plus its ``TaskRetried`` /
        ``TaskQuarantined`` disposition.
        """
        queue = self._queue(jobs)
        if not queue:
            return
        policy = self.runner.retry_policy
        store = self.runner.store
        from repro.simulation.shm import ensure_shared_memory_tracker

        ensure_shared_memory_tracker()

        def submit(pool: ProcessPoolExecutor, task, available: int, ready: int):
            job, index = task
            allotment = adaptive_worker_allotment(available, ready, job.width)
            return self._submit(pool, job, index, allotment), allotment

        def on_result(task, result, allotment: int) -> None:
            self._handle_result(task, result, allotment, say)

        def on_retry(task, error, attempt: int, delay: float) -> None:
            self._handle_retry(task, error, attempt, delay, say)

        def on_giveup(task, error, attempts: int) -> bool:
            return self._handle_giveup(task, error, attempts, say)

        def on_respawn() -> None:
            try:
                store.sweep_dead_staging()
            except Exception:
                pass  # best-effort hygiene; never mask the recovery

        run_supervised(
            queue,
            budget=self.total_workers,
            submit=submit,
            on_result=on_result,
            policy=policy,
            on_retry=on_retry,
            on_giveup=on_giveup if policy.supervised else None,
            on_respawn=on_respawn,
        )
