"""Structured campaign progress events.

The runner and scheduler used to push preformatted strings at their
``progress`` callback, which welded every consumer — CLI, tests, any
monitoring hook — to one hard-coded text layout.  They now emit typed
event objects carrying the underlying facts (scenario id, parameter
value, coverage counts, worker shape), and rendering becomes the
consumer's concern: :func:`render` reproduces the established one-line
text form, and :func:`as_text` adapts any ``str`` sink (``print``, a log
handle) into an event consumer — the CLI's default.  A consumer that
wants the numbers (a progress bar, a dashboard, a structured log) reads
the event fields directly instead of parsing text.

Events are plain frozen dataclasses, not an enum-tagged union: consumers
dispatch with ``isinstance`` and unknown future event types fall through
harmlessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

__all__ = [
    "CacheHit",
    "EntryEvicted",
    "ProgressEvent",
    "ScenarioCompleted",
    "TaskCompleted",
    "as_text",
    "render",
]


@dataclass(frozen=True)
class CacheHit:
    """A scenario's complete sweep was served from the store."""

    scenario_id: str
    key: str

    def render(self) -> str:
        return f"{self.scenario_id}: cache hit ({self.key[:12]})"


@dataclass(frozen=True)
class EntryEvicted:
    """A corrupt or vanished store entry was evicted; recomputing."""

    scenario_id: str

    def render(self) -> str:
        return f"{self.scenario_id}: unusable entry evicted, recomputing"


@dataclass(frozen=True)
class TaskCompleted:
    """One scheduler task finished (a parameter value, or an atomic sweep).

    Attributes:
        scenario_id: the scenario the task belongs to.
        value: the parameter value measured, ``None`` for atomic tasks.
        values_done: rows of the scenario's sweep present so far.
        values_total: rows the complete sweep needs.
        workers: the worker allotment the task ran with.
        iterations: the experiment's declared iterations per value, when
            it checkpoints at iteration granularity (``None`` otherwise).
        atomic: ``True`` when the whole sweep ran as one task.
    """

    scenario_id: str
    value: Optional[float]
    values_done: int
    values_total: int
    workers: int
    iterations: Optional[int] = None
    atomic: bool = False

    def render(self) -> str:
        if self.atomic:
            return (
                f"{self.scenario_id}: task done "
                f"(atomic, workers={self.workers})"
            )
        detail = f"workers={self.workers}"
        if self.iterations:
            detail = f"{self.iterations} iteration(s), {detail}"
        return (
            f"{self.scenario_id}: value {self.value:g} done "
            f"({self.values_done}/{self.values_total} values; {detail})"
        )


@dataclass(frozen=True)
class ScenarioCompleted:
    """A scenario's full sweep landed in the store."""

    scenario_id: str
    computed_values: int
    loaded_values: int

    def render(self) -> str:
        return (
            f"{self.scenario_id}: computed {self.computed_values} "
            f"value(s), resumed {self.loaded_values} from checkpoints"
        )


ProgressEvent = Union[CacheHit, EntryEvicted, TaskCompleted, ScenarioCompleted]


def render(event: ProgressEvent) -> str:
    """The canonical one-line text form of ``event``."""
    return event.render()


def as_text(sink: Callable[[str], None]) -> Callable[[ProgressEvent], None]:
    """Adapt a ``str`` consumer (``print``, a log handle) to events."""

    def consume(event: ProgressEvent) -> None:
        sink(render(event))

    return consume
