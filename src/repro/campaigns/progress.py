"""Structured campaign progress events.

The runner and scheduler used to push preformatted strings at their
``progress`` callback, which welded every consumer — CLI, tests, any
monitoring hook — to one hard-coded text layout.  They now emit typed
event objects carrying the underlying facts (scenario id, parameter
value, coverage counts, worker shape), and rendering becomes the
consumer's concern: :func:`render` reproduces the established one-line
text form, and :func:`as_text` adapts any ``str`` sink (``print``, a log
handle) into an event consumer — the CLI's default.  A consumer that
wants the numbers (a progress bar, a dashboard, a structured log) reads
the event fields directly instead of parsing text.

Events are plain frozen dataclasses, not an enum-tagged union: consumers
dispatch with ``isinstance`` and unknown future event types fall through
harmlessly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Union

__all__ = [
    "CacheHit",
    "EntryEvicted",
    "ProgressEvent",
    "ScenarioCompleted",
    "StoreDegraded",
    "TaskCompleted",
    "TaskFailed",
    "TaskQuarantined",
    "TaskRetried",
    "as_text",
    "render",
]


@dataclass(frozen=True)
class CacheHit:
    """A scenario's complete sweep was served from the store."""

    scenario_id: str
    key: str

    def render(self) -> str:
        return f"{self.scenario_id}: cache hit ({self.key[:12]})"


@dataclass(frozen=True)
class EntryEvicted:
    """A corrupt or vanished store entry was evicted; recomputing."""

    scenario_id: str

    def render(self) -> str:
        return f"{self.scenario_id}: unusable entry evicted, recomputing"


@dataclass(frozen=True)
class TaskCompleted:
    """One scheduler task finished (a parameter value, or an atomic sweep).

    Attributes:
        scenario_id: the scenario the task belongs to.
        value: the parameter value measured, ``None`` for atomic tasks.
        values_done: rows of the scenario's sweep present so far.
        values_total: rows the complete sweep needs.
        workers: the worker allotment the task ran with.
        iterations: the experiment's declared iterations per value, when
            it checkpoints at iteration granularity (``None`` otherwise).
        atomic: ``True`` when the whole sweep ran as one task.
    """

    scenario_id: str
    value: Optional[float]
    values_done: int
    values_total: int
    workers: int
    iterations: Optional[int] = None
    atomic: bool = False

    def render(self) -> str:
        if self.atomic:
            return (
                f"{self.scenario_id}: task done "
                f"(atomic, workers={self.workers})"
            )
        detail = f"workers={self.workers}"
        if self.iterations:
            detail = f"{self.iterations} iteration(s), {detail}"
        return (
            f"{self.scenario_id}: value {self.value:g} done "
            f"({self.values_done}/{self.values_total} values; {detail})"
        )


@dataclass(frozen=True)
class ScenarioCompleted:
    """A scenario's full sweep landed in the store."""

    scenario_id: str
    computed_values: int
    loaded_values: int

    def render(self) -> str:
        return (
            f"{self.scenario_id}: computed {self.computed_values} "
            f"value(s), resumed {self.loaded_values} from checkpoints"
        )


@dataclass(frozen=True)
class TaskFailed:
    """One scheduler task raised or its worker died.

    Emitted for every failed attempt, whether or not a retry follows —
    a :class:`TaskRetried` or :class:`TaskQuarantined` event then says
    what the supervisor decided.

    Attributes:
        scenario_id: the scenario the task belongs to.
        value: the parameter value the task measured, ``None`` for
            atomic tasks.
        attempt: 1-based attempt number that failed.
        error: the failure, rendered (``BrokenProcessPool``, the task's
            exception, or a :class:`repro.supervision.TaskTimeoutError`).
    """

    scenario_id: str
    value: Optional[float]
    attempt: int
    error: str

    def render(self) -> str:
        where = "atomic task" if self.value is None else f"value {self.value:g}"
        return (
            f"{self.scenario_id}: {where} failed "
            f"(attempt {self.attempt}): {self.error}"
        )


@dataclass(frozen=True)
class TaskRetried:
    """A failed task was re-enqueued for another attempt.

    Attributes:
        scenario_id: the scenario the task belongs to.
        value: the parameter value, ``None`` for atomic tasks.
        attempt: 1-based attempt number that failed (the retry will be
            ``attempt + 1``).
        max_retries: the configured retry budget.
        delay: backoff delay in seconds before the task becomes ready.
        error: the failure that triggered the retry, rendered.
    """

    scenario_id: str
    value: Optional[float]
    attempt: int
    max_retries: int
    delay: float
    error: str

    def render(self) -> str:
        where = "atomic task" if self.value is None else f"value {self.value:g}"
        return (
            f"{self.scenario_id}: retrying {where} "
            f"(attempt {self.attempt}/{self.max_retries + 1} failed, "
            f"backoff {self.delay:g}s)"
        )


@dataclass(frozen=True)
class TaskQuarantined:
    """A task exhausted its retry budget and was quarantined as poison.

    The campaign continues without it; the scenario stays partial and
    ``campaign status`` reports the quarantined value until ``campaign
    clean`` (or a manual :meth:`repro.store.ResultStore.clear_poison`)
    drops the record.

    Attributes:
        scenario_id: the scenario the task belongs to.
        value: the parameter value, ``None`` for atomic tasks.
        attempts: total attempts made before giving up.
        error: the final failure, rendered.
    """

    scenario_id: str
    value: Optional[float]
    attempts: int
    error: str

    def render(self) -> str:
        where = "atomic task" if self.value is None else f"value {self.value:g}"
        return (
            f"{self.scenario_id}: {where} quarantined after "
            f"{self.attempts} attempt(s): {self.error}"
        )


@dataclass(frozen=True)
class StoreDegraded:
    """A store write failed with ENOSPC & co; checkpointing degraded.

    The run continues with in-memory checkpoints (results of the current
    process survive; durability across kills is lost) — see
    :class:`repro.store.StoreDegradedWarning`.

    Attributes:
        scenario_id: the scenario whose write failed.
        scope: what degraded (``"row"``, ``"iteration"``, ``"sweep"``).
        reason: the failing error, rendered.
    """

    scenario_id: str
    scope: str
    reason: str

    def render(self) -> str:
        return (
            f"{self.scenario_id}: store degraded to in-memory "
            f"{self.scope} checkpoints ({self.reason})"
        )


ProgressEvent = Union[
    CacheHit,
    EntryEvicted,
    TaskCompleted,
    ScenarioCompleted,
    TaskFailed,
    TaskRetried,
    TaskQuarantined,
    StoreDegraded,
]


def render(event: ProgressEvent) -> str:
    """The canonical one-line text form of ``event``."""
    return event.render()


def as_text(sink: Callable[[str], None]) -> Callable[[ProgressEvent], None]:
    """Adapt a ``str`` consumer (``print``, a log handle) to events."""

    def consume(event: ProgressEvent) -> None:
        sink(render(event))

    return consume
