"""Cone-based topology control (CBTC-style), simplified.

The cone-based protocol of Li, Halpern, Bahl, Wang & Wattenhofer [6 in the
paper] has each node grow its transmitting power until every cone of angle
``alpha`` around it contains at least one neighbour (or the maximum power
is reached).  With ``alpha <= 2*pi/3`` the resulting symmetric graph
preserves the connectivity of the maximum-power graph.

This simplified 2-D implementation works directly on geometric ranges
rather than powers: for every node it sorts the other nodes by distance and
grows the range until the angular gaps between in-range neighbours are all
below ``cone_angle``.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.exceptions import AnalysisError
from repro.geometry.distance import pairwise_distances
from repro.topology.range_assignment import RangeAssignment
from repro.types import Positions, as_positions


def _max_angular_gap(angles: List[float]) -> float:
    """Largest gap between consecutive angles on the circle (radians)."""
    if not angles:
        return 2.0 * math.pi
    ordered = sorted(angles)
    gaps = [
        ordered[i + 1] - ordered[i] for i in range(len(ordered) - 1)
    ]
    gaps.append(2.0 * math.pi - (ordered[-1] - ordered[0]))
    return max(gaps)


def cone_based_topology(
    positions: Positions,
    cone_angle: float = 2.0 * math.pi / 3.0,
    max_range: float = math.inf,
) -> RangeAssignment:
    """CBTC-style range assignment on a 2-D placement.

    Args:
        positions: ``(n, 2)`` placement; only two dimensions are supported
            because the cone condition is angular.
        cone_angle: the angle ``alpha``; connectivity is preserved for
            ``alpha <= 2*pi/3``.
        max_range: cap on the per-node range (the protocol's maximum power);
            nodes that cannot satisfy the cone condition stop at this cap.
    """
    if not 0.0 < cone_angle <= 2.0 * math.pi:
        raise AnalysisError(f"cone_angle must be in (0, 2*pi], got {cone_angle}")
    if max_range <= 0:
        raise AnalysisError(f"max_range must be positive, got {max_range}")
    points = as_positions(positions)
    if points.shape[0] and points.shape[1] != 2:
        raise AnalysisError(
            f"cone-based topology control requires 2-D positions, got dimension {points.shape[1]}"
        )
    n = points.shape[0]
    if n < 2:
        return RangeAssignment(ranges=tuple([0.0] * n), positions=points)

    distances = pairwise_distances(points)
    ranges = []
    for node in range(n):
        order = np.argsort(distances[node])
        in_range_angles: List[float] = []
        chosen = min(float(distances[node][order[-1]]), max_range)
        for other in order:
            if other == node:
                continue
            distance = float(distances[node][other])
            if distance > max_range:
                break
            delta = points[other] - points[node]
            in_range_angles.append(math.atan2(float(delta[1]), float(delta[0])))
            if _max_angular_gap(in_range_angles) <= cone_angle:
                chosen = distance
                break
        ranges.append(chosen)
    return RangeAssignment(ranges=tuple(ranges), positions=points)
