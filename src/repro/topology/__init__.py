"""Topology-control comparators.

The paper's introduction motivates the MTR analysis as a guide for
"topology control" protocols that adjust per-node transmitting ranges at
run time to save energy [6, 9, 10].  This package implements three simple
representatives so that the homogeneous-range results of the paper can be
compared against per-node range assignment:

* :func:`~repro.topology.range_assignment.mst_range_assignment` — each node
  transmits just far enough to cover its incident MST edges (the classic
  minimum-energy broadcast lower bound construction);
* :func:`~repro.topology.knn.knn_topology` — each node reaches its ``k``
  nearest neighbours (the "k-neighbours" protocol family);
* :func:`~repro.topology.cbtc.cone_based_topology` — a simplified
  cone-based topology control (CBTC-style): grow the range until every cone
  of a given angle contains a neighbour.
"""

from repro.topology.cbtc import cone_based_topology
from repro.topology.knn import knn_topology
from repro.topology.range_assignment import (
    RangeAssignment,
    mst_range_assignment,
    uniform_range_assignment,
)

__all__ = [
    "RangeAssignment",
    "cone_based_topology",
    "knn_topology",
    "mst_range_assignment",
    "uniform_range_assignment",
]
