"""K-nearest-neighbour topology control.

Each node sets its range to the distance of its ``k``-th nearest neighbour.
This is the family of protocols analysed by Xue & Kumar and others: with
``k = Theta(log n)`` neighbours the network is connected w.h.p.  It serves
as a per-node counterpoint to the paper's common-range analysis.
"""

from __future__ import annotations

from repro.exceptions import AnalysisError
from repro.geometry.kdtree import KDTree
from repro.topology.range_assignment import RangeAssignment
from repro.types import Positions, as_positions


def knn_topology(positions: Positions, k: int) -> RangeAssignment:
    """Range assignment reaching each node's ``k`` nearest neighbours.

    Args:
        positions: ``(n, d)`` placement.
        k: number of neighbours each node must reach; must be positive and
            at most ``n - 1``.

    Returns:
        A :class:`~repro.topology.range_assignment.RangeAssignment` whose
        per-node range is the distance to that node's ``k``-th nearest
        neighbour.
    """
    points = as_positions(positions)
    n = points.shape[0]
    if k <= 0:
        raise AnalysisError(f"k must be positive, got {k}")
    if n == 0:
        return RangeAssignment(ranges=(), positions=points)
    if k > n - 1:
        raise AnalysisError(
            f"k = {k} neighbours requested but only {n - 1} other nodes exist"
        )
    tree = KDTree(points)
    ranges = []
    for index in range(n):
        neighbors = tree.query_knn(points[index], k, exclude=index)
        ranges.append(neighbors[-1][1] if neighbors else 0.0)
    return RangeAssignment(ranges=tuple(ranges), positions=points)


def recommended_neighbor_count(node_count: int) -> int:
    """The ``Theta(log n)`` neighbour count recommended by the k-NN literature.

    Uses the constant from Xue & Kumar's sufficiency result
    (``5.1774 log n``), clamped to at least 1 and at most ``n - 1``.
    """
    import math

    if node_count < 2:
        return 0
    suggestion = int(round(5.1774 * math.log(node_count)))
    return max(1, min(suggestion, node_count - 1))
