"""Per-node range assignment.

The *range assignment problem* generalises MTR: instead of one common
range, each node ``i`` is assigned its own range ``r_i``, and the goal is a
strongly connected communication graph minimising the total energy
``sum_i r_i ** alpha``.  The MST-based assignment implemented here is the
standard 2-approximation: each node's range is the length of the longest
MST edge incident to it, which guarantees that the (symmetric) closure of
the induced directed graph is connected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.energy.model import EnergyModel
from repro.exceptions import AnalysisError
from repro.geometry.distance import pairwise_distances
from repro.graph.adjacency import CommunicationGraph
from repro.types import Positions, as_positions


@dataclass(frozen=True)
class RangeAssignment:
    """A per-node assignment of transmitting ranges.

    Attributes:
        ranges: range of each node, indexed by node id.
        positions: the placement the assignment was computed for.
    """

    ranges: Tuple[float, ...]
    positions: Positions

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self.ranges)

    def total_energy(self, model: EnergyModel = EnergyModel()) -> float:
        """Total transmission power ``sum_i power(r_i)`` under ``model``."""
        return sum(model.node_power(r) for r in self.ranges)

    def max_range(self) -> float:
        """The largest assigned range (compare against the common-range MTR)."""
        return max(self.ranges) if self.ranges else 0.0

    def symmetric_graph(self) -> CommunicationGraph:
        """The *symmetric* communication graph induced by the assignment.

        Edge ``(u, v)`` exists iff ``dist(u, v) <= min(r_u, r_v)`` — both
        endpoints can hear each other.  The MST assignment keeps this graph
        connected.
        """
        points = as_positions(self.positions)
        n = points.shape[0]
        graph = CommunicationGraph(n, positions=points)
        if n < 2:
            return graph
        distances = pairwise_distances(points)
        for u in range(n):
            for v in range(u + 1, n):
                if distances[u, v] <= min(self.ranges[u], self.ranges[v]):
                    graph.add_edge(u, v)
        return graph


def _mst_edges(positions: Positions) -> List[Tuple[int, int, float]]:
    """Edges ``(u, v, length)`` of a Euclidean MST via Prim's algorithm."""
    points = as_positions(positions)
    n = points.shape[0]
    if n < 2:
        return []
    distances = pairwise_distances(points)
    in_tree = np.zeros(n, dtype=bool)
    best = distances[0].copy()
    parent = np.zeros(n, dtype=int)
    in_tree[0] = True
    best[0] = np.inf
    edges: List[Tuple[int, int, float]] = []
    for _ in range(n - 1):
        candidate = int(np.argmin(np.where(in_tree, np.inf, best)))
        edges.append((int(parent[candidate]), candidate, float(best[candidate])))
        in_tree[candidate] = True
        improved = distances[candidate] < best
        improved &= ~in_tree
        parent[improved] = candidate
        best = np.where(improved, distances[candidate], best)
        best[in_tree] = np.inf
    return edges


def mst_range_assignment(positions: Positions) -> RangeAssignment:
    """Assign each node the length of its longest incident MST edge.

    The resulting symmetric communication graph contains the MST and is
    therefore connected; the total energy is at most twice the optimum of
    the range assignment problem (the classical argument of Kirousis et al.).
    """
    points = as_positions(positions)
    n = points.shape[0]
    ranges = [0.0] * n
    for u, v, length in _mst_edges(points):
        ranges[u] = max(ranges[u], length)
        ranges[v] = max(ranges[v], length)
    return RangeAssignment(ranges=tuple(ranges), positions=points)


def uniform_range_assignment(positions: Positions, transmitting_range: float) -> RangeAssignment:
    """The homogeneous assignment studied by the paper (every node gets ``r``)."""
    if transmitting_range < 0:
        raise AnalysisError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    points = as_positions(positions)
    return RangeAssignment(
        ranges=tuple([transmitting_range] * points.shape[0]), positions=points
    )
