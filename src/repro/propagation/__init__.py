"""Radio propagation models (extension).

The paper abstracts the radio into a fixed transmitting range: node ``v``
hears node ``u`` exactly when their distance is at most ``r``.  Section 1
notes, however, that the power needed to reach a given distance depends on
the environment ("proportional to the square (or, depending on
environmental conditions, to a higher power) of the transmitting range").
This package provides the standard propagation models behind that remark so
that the connectivity machinery can also be exercised with more realistic,
non-deterministic links:

* :class:`~repro.propagation.pathloss.LogDistancePathLoss` — deterministic
  log-distance path loss; together with a receiver sensitivity it induces
  exactly the disk model the paper uses, so the paper's experiments are the
  special case ``shadowing_std == 0``.
* :class:`~repro.propagation.shadowing.LogNormalShadowing` — adds log-normal
  shadowing, turning each link into a Bernoulli variable whose success
  probability decays smoothly around the nominal range.
* :func:`~repro.propagation.links.build_probabilistic_graph` — samples a
  communication graph from a shadowing model, the drop-in replacement for
  :func:`repro.graph.builder.build_communication_graph` in the extension
  experiments.
"""

from repro.propagation.links import (
    build_probabilistic_graph,
    expected_degree,
    link_probability_matrix,
)
from repro.propagation.pathloss import LogDistancePathLoss
from repro.propagation.shadowing import LogNormalShadowing

__all__ = [
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "build_probabilistic_graph",
    "expected_degree",
    "link_probability_matrix",
]
