"""Deterministic log-distance path loss.

The received power at distance ``d`` from a transmitter is modelled as

    P_rx(d) [dB] = P_tx - PL(d0) - 10 * alpha * log10(d / d0)

where ``alpha`` is the path-loss exponent and ``PL(d0)`` the loss at the
reference distance ``d0``.  A link exists when the received power is at
least the receiver sensitivity.  With no shadowing this is exactly the disk
model of the paper: the induced "effective range" is the distance at which
the received power equals the sensitivity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LogDistancePathLoss:
    """Log-distance path-loss model (all powers in dB / dBm).

    Attributes:
        exponent: path-loss exponent ``alpha`` (2 free space, up to ~4-6
            indoors or with ground reflections).
        reference_distance: distance ``d0`` at which ``reference_loss`` was
            measured.
        reference_loss: path loss in dB at the reference distance.
    """

    exponent: float = 2.0
    reference_distance: float = 1.0
    reference_loss: float = 40.0

    def __post_init__(self) -> None:
        if self.exponent < 1.0:
            raise ConfigurationError(f"exponent must be >= 1, got {self.exponent}")
        if self.reference_distance <= 0.0:
            raise ConfigurationError(
                f"reference_distance must be positive, got {self.reference_distance}"
            )
        if self.reference_loss < 0.0:
            raise ConfigurationError(
                f"reference_loss must be non-negative, got {self.reference_loss}"
            )

    # ------------------------------------------------------------------ #
    def path_loss_db(self, distance: float) -> float:
        """Mean path loss in dB at ``distance``.

        Distances below the reference distance are clamped to it (the model
        is not defined in the near field).
        """
        if distance < 0.0:
            raise ConfigurationError(f"distance must be non-negative, got {distance}")
        effective = max(distance, self.reference_distance)
        return self.reference_loss + 10.0 * self.exponent * math.log10(
            effective / self.reference_distance
        )

    def received_power_dbm(self, tx_power_dbm: float, distance: float) -> float:
        """Mean received power at ``distance`` for the given transmit power."""
        return tx_power_dbm - self.path_loss_db(distance)

    # ------------------------------------------------------------------ #
    def effective_range(self, tx_power_dbm: float, sensitivity_dbm: float) -> float:
        """Distance at which the mean received power hits the sensitivity.

        This is the deterministic "transmitting range" the paper's disk
        model assumes; it inverts :meth:`path_loss_db`.
        """
        budget = tx_power_dbm - sensitivity_dbm
        if budget < 0.0:
            return 0.0
        exponent_term = (budget - self.reference_loss) / (10.0 * self.exponent)
        return self.reference_distance * 10.0**max(exponent_term, 0.0)

    def required_tx_power_dbm(self, distance: float, sensitivity_dbm: float) -> float:
        """Transmit power needed for the mean received power to reach the
        sensitivity at ``distance`` — the dB-domain analogue of the
        ``r ** alpha`` energy rule used by :mod:`repro.energy`."""
        return sensitivity_dbm + self.path_loss_db(distance)
