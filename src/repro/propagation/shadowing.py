"""Log-normal shadowing on top of log-distance path loss.

Real links are not disks: obstacles add a random, roughly log-normal term
to the path loss, so two nodes at the same distance may or may not hear
each other.  With shadowing standard deviation ``sigma`` (dB), the link
between nodes at distance ``d`` succeeds with probability

    P(link) = P( PL(d) + X <= budget ),   X ~ Normal(0, sigma^2)
            = Phi( (budget - PL(d)) / sigma )

where ``budget = P_tx - sensitivity``.  Setting ``sigma = 0`` recovers the
paper's deterministic disk model exactly, which is how the tests pin the
extension to the core library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.propagation.pathloss import LogDistancePathLoss
from repro.stats.distributions import normal_cdf


@dataclass(frozen=True)
class LogNormalShadowing:
    """Log-normal shadowing link model.

    Attributes:
        path_loss: the underlying deterministic path-loss model.
        shadowing_std: standard deviation ``sigma`` of the shadowing term in
            dB; 0 gives deterministic (disk) links.
        tx_power_dbm: transmit power.
        sensitivity_dbm: receiver sensitivity.
    """

    path_loss: LogDistancePathLoss = LogDistancePathLoss()
    shadowing_std: float = 4.0
    tx_power_dbm: float = 0.0
    sensitivity_dbm: float = -90.0

    def __post_init__(self) -> None:
        if self.shadowing_std < 0.0:
            raise ConfigurationError(
                f"shadowing_std must be non-negative, got {self.shadowing_std}"
            )
        if self.tx_power_dbm <= self.sensitivity_dbm:
            raise ConfigurationError(
                "tx_power_dbm must exceed sensitivity_dbm for any link to exist"
            )

    # ------------------------------------------------------------------ #
    @property
    def link_budget_db(self) -> float:
        """``P_tx - sensitivity`` — the total loss a link can absorb."""
        return self.tx_power_dbm - self.sensitivity_dbm

    @property
    def nominal_range(self) -> float:
        """The distance at which the *mean* link exactly closes.

        With ``sigma = 0`` this is the deterministic transmitting range;
        with shadowing, links beyond it still succeed with probability
        below one half and links inside it fail with probability below one
        half.
        """
        return self.path_loss.effective_range(self.tx_power_dbm, self.sensitivity_dbm)

    def link_probability(self, distance: float) -> float:
        """Probability that two nodes at ``distance`` share a usable link."""
        if distance < 0.0:
            raise ConfigurationError(f"distance must be non-negative, got {distance}")
        margin = self.link_budget_db - self.path_loss.path_loss_db(distance)
        if self.shadowing_std == 0.0:
            return 1.0 if margin >= 0.0 else 0.0
        return normal_cdf(margin, mean=0.0, std=self.shadowing_std)

    def sample_link(
        self, distance: float, rng: Optional[np.random.Generator] = None
    ) -> bool:
        """Draw one Bernoulli link realisation at ``distance``."""
        probability = self.link_probability(distance)
        if probability >= 1.0:
            return True
        if probability <= 0.0:
            return False
        generator = rng if rng is not None else np.random.default_rng()
        return bool(generator.random() < probability)

    # ------------------------------------------------------------------ #
    @classmethod
    def with_nominal_range(
        cls,
        nominal_range: float,
        shadowing_std: float = 4.0,
        exponent: float = 2.0,
    ) -> "LogNormalShadowing":
        """Build a model whose mean link closes exactly at ``nominal_range``.

        Convenience constructor used by the extension experiments: it lets
        a shadowed model be compared directly against the paper's disk model
        of range ``nominal_range``.
        """
        if nominal_range <= 0.0:
            raise ConfigurationError(
                f"nominal_range must be positive, got {nominal_range}"
            )
        path_loss = LogDistancePathLoss(exponent=exponent)
        required = path_loss.path_loss_db(nominal_range)
        # Choose tx power 0 dBm and set the sensitivity so the budget equals
        # the loss at the nominal range.
        return cls(
            path_loss=path_loss,
            shadowing_std=shadowing_std,
            tx_power_dbm=0.0,
            sensitivity_dbm=-required,
        )
