"""Probabilistic communication graphs from a shadowing model.

The disk-model builder (:func:`repro.graph.builder.build_communication_graph`)
is the ``shadowing_std == 0`` special case of
:func:`build_probabilistic_graph`; the extension experiments use the latter
to check how robust the paper's conclusions are to non-ideal radios.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.distance import pairwise_distances
from repro.graph.adjacency import CommunicationGraph
from repro.propagation.shadowing import LogNormalShadowing
from repro.stats.rng import make_rng
from repro.types import Positions, as_positions


def link_probability_matrix(
    positions: Positions, model: LogNormalShadowing
) -> np.ndarray:
    """Matrix of pairwise link probabilities under ``model``.

    The diagonal is zero (no self links).
    """
    points = as_positions(positions)
    n = points.shape[0]
    probabilities = np.zeros((n, n), dtype=float)
    if n < 2:
        return probabilities
    distances = pairwise_distances(points)
    for u in range(n):
        for v in range(u + 1, n):
            probability = model.link_probability(float(distances[u, v]))
            probabilities[u, v] = probability
            probabilities[v, u] = probability
    return probabilities


def build_probabilistic_graph(
    positions: Positions,
    model: LogNormalShadowing,
    rng: Optional[np.random.Generator] = None,
) -> CommunicationGraph:
    """Sample one communication graph realisation from ``model``.

    Each unordered pair is an independent Bernoulli link with the
    probability given by the shadowing model (links are assumed symmetric:
    one draw decides both directions, the usual simplification for
    symmetric-budget radios).
    """
    points = as_positions(positions)
    n = points.shape[0]
    graph = CommunicationGraph(
        n, positions=points, transmitting_range=model.nominal_range
    )
    if n < 2:
        return graph
    generator = make_rng(rng)
    distances = pairwise_distances(points)
    for u in range(n):
        for v in range(u + 1, n):
            probability = model.link_probability(float(distances[u, v]))
            if probability >= 1.0 or (
                probability > 0.0 and generator.random() < probability
            ):
                graph.add_edge(u, v)
    return graph


def expected_degree(positions: Positions, model: LogNormalShadowing) -> np.ndarray:
    """Expected number of neighbours of each node under ``model``."""
    probabilities = link_probability_matrix(positions, model)
    return probabilities.sum(axis=1)


def connectivity_probability_monte_carlo(
    positions: Positions,
    model: LogNormalShadowing,
    iterations: int = 200,
    seed: Optional[int] = None,
) -> float:
    """Monte-Carlo probability that a placement is connected under ``model``.

    Used by the extension benchmark to compare the disk model against
    shadowed links at equal nominal range.
    """
    from repro.graph.components import is_connected

    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    generator = make_rng(seed)
    connected = 0
    for _ in range(iterations):
        if is_connected(build_probabilistic_graph(positions, model, generator)):
            connected += 1
    return connected / iterations
