"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from runtime
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError):
    """Raised when a user-supplied configuration value is invalid.

    Examples include a negative transmitting range, a zero-sized
    deployment region, or a mobility parameter outside of its documented
    domain (for instance ``pstationary`` outside ``[0, 1]``).
    """


class DimensionMismatchError(ConfigurationError):
    """Raised when positions and a region disagree about dimensionality."""


class SimulationError(ReproError):
    """Raised when a simulation cannot be carried out as requested."""


class SearchError(ReproError):
    """Raised when a threshold search (e.g. for ``r100``) fails to bracket
    or converge to a solution within its iteration budget."""


class AnalysisError(ReproError):
    """Raised when an analytical routine is asked to operate outside of the
    regime in which it is defined (e.g. an occupancy domain query with
    non-positive ``n`` or ``C``)."""
