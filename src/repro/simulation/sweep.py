"""Parameter sweeps.

Every figure of the paper is a sweep of one parameter (system side ``l``,
``pstationary``, ``tpause`` or ``vmax``) against one or more derived
quantities.  :func:`sweep_parameter` runs such a sweep generically and
returns a :class:`SweepResult` that the experiment layer renders as a
table.

Sweep-level fan-out
-------------------
Parameter values are independent, so a sweep can run them concurrently in
a :class:`concurrent.futures.ProcessPoolExecutor` (``workers > 1``).  That
requires the measure to be *picklable*: a module-level callable such as the
per-experiment measure dataclasses in :mod:`repro.experiments.figures` —
see the :class:`Measure` protocol.  Processes (not threads) are essential
because most measures fan their own simulation iterations out over a
nested pool (``SimulationConfig.workers``); forking pools from threads is
unsafe on POSIX, while a worker *process* can safely own one.

The two levels multiply: a sweep with ``workers=w`` whose measure runs
``iteration_workers=k`` simulation processes occupies up to ``w * k``
cores.  Callers hold one total budget and split it with
:func:`split_worker_budget`; :func:`sweep_parameter` accepts the per-level
counts explicitly and rebinds the measure's iteration workers when it
supports :meth:`Measure.with_iteration_workers`.  Results are bit-identical
for every ``workers`` value — each measure call is deterministic given the
seed it carries.

Checkpointing
-------------
A sweep can also carry a *checkpoint* — an object with ``load(value)`` /
``save(value, row)`` hooks (see :class:`SweepCheckpoint`).  Rows found by
``load`` are not measured again, and every freshly measured row is handed
to ``save`` as soon as it exists (in the parent process, even for parallel
sweeps), so a sweep killed at any point loses at most the rows still in
flight.  The store-backed implementation lives in
:mod:`repro.store.checkpoints`; this module only defines the protocol so
the simulation layer stays free of storage dependencies.

A checkpoint may additionally offer *iteration granularity*: its optional
``iteration_checkpoint(value)`` hook returns a per-iteration checkpoint
(the :class:`repro.simulation.runner.IterationCheckpoint` protocol) for
one parameter value, or ``None``.  Measures that run multi-iteration
simulations and implement :meth:`Measure.with_value_checkpoint` are
rebound with the sweep checkpoint before the sweep starts, and thread the
per-value iteration checkpoint into their inner
:func:`repro.simulation.runner.collect_frame_statistics` call — so a
killed paper-scale parameter value resumes at the first unfinished
*iteration*, not at the first unfinished value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults, telemetry
from repro.exceptions import ConfigurationError
from repro.supervision import RetryPolicy, run_supervised


class SweepCheckpoint:
    """Protocol of a per-parameter-value checkpoint (duck-typed).

    ``load`` returns the previously measured row for a value, or ``None``
    when the value must be (re)measured; ``save`` persists one freshly
    measured row.  Both are called in the parent process only, in sweep
    order for ``load`` and in completion order for ``save``.
    """

    def load(self, value: float) -> Optional[Dict[str, float]]:  # pragma: no cover
        raise NotImplementedError

    def save(self, value: float, row: Dict[str, float]) -> None:  # pragma: no cover
        raise NotImplementedError

    def iteration_checkpoint(self, value: float):
        """Per-iteration checkpoint of one parameter value, or ``None``.

        Checkpoints that only track whole rows (the default) return
        ``None``; the store-backed implementation returns an object
        implementing the :class:`repro.simulation.runner.
        IterationCheckpoint` protocol, keyed disjointly from the value
        rows.  Called in whichever process runs the measure — the returned
        object (and ``self``, which measures capture when rebound) must be
        picklable for parallel sweeps.
        """
        return None


class Measure:
    """Protocol of a sweep measure (duck-typed; subclassing is optional).

    A measure maps one parameter value to a dict of measured series:
    ``measure(value) -> {"series": number, ...}``.  Plain callables
    (including lambdas) work for serial sweeps; parallel sweeps
    (``workers > 1``) additionally need the measure to be picklable, i.e.
    defined at module level — the experiment layer uses frozen dataclasses.

    A measure that runs nested simulations may implement
    ``with_iteration_workers(count)`` returning a copy whose inner
    simulations use ``count`` worker processes; :func:`sweep_parameter`
    calls it when ``iteration_workers`` is given.

    A measure that supports iteration-granular checkpointing additionally
    implements ``with_value_checkpoint(checkpoint)`` returning a copy that
    asks ``checkpoint.iteration_checkpoint(value)`` for a per-iteration
    checkpoint when measuring ``value`` and threads it into its inner
    simulation runs; :func:`sweep_parameter` rebinds the measure with the
    sweep checkpoint automatically.
    """

    def __call__(self, value: float) -> Dict[str, float]:  # pragma: no cover
        raise NotImplementedError

    def with_iteration_workers(self, count: int) -> "Measure":  # pragma: no cover
        raise NotImplementedError

    def with_value_checkpoint(
        self, checkpoint: SweepCheckpoint
    ) -> "Measure":  # pragma: no cover
        raise NotImplementedError


def iteration_checkpoint_for(checkpoint, value: float):
    """The per-iteration checkpoint a measure should use for ``value``.

    Helper for :meth:`Measure.with_value_checkpoint` implementations:
    duck-types ``checkpoint.iteration_checkpoint`` so hand-rolled
    checkpoint objects without the hook (and ``None``) simply disable
    iteration granularity.
    """
    if checkpoint is None:
        return None
    factory = getattr(checkpoint, "iteration_checkpoint", None)
    if factory is None:
        return None
    return factory(value)


@dataclass
class SweepResult:
    """Tabular result of a one-parameter sweep.

    Attributes:
        parameter_name: name of the swept parameter (e.g. ``"l"``).
        rows: one dict per parameter value; every dict contains the
            parameter value under ``parameter_name`` plus one entry per
            measured series.
    """

    parameter_name: str
    rows: List[Dict[str, float]] = field(default_factory=list)

    @property
    def parameter_values(self) -> List[float]:
        """The swept values, in row order."""
        return [row[self.parameter_name] for row in self.rows]

    def series(self, name: str) -> List[float]:
        """One measured series across the sweep, in row order."""
        return [row[name] for row in self.rows]

    def series_names(self) -> List[str]:
        """Names of all measured series (excluding the parameter itself).

        The union of the keys of *all* rows, in first-appearance order —
        a measure that only reports a series at some parameter values (e.g.
        a threshold that exists only above a critical size) still has it
        listed.
        """
        names: List[str] = []
        seen = set()
        for row in self.rows:
            for key in row:
                if key != self.parameter_name and key not in seen:
                    seen.add(key)
                    names.append(key)
        return names

    def as_dicts(self) -> List[Dict[str, float]]:
        """The raw rows (shared reference; callers should not mutate)."""
        return self.rows


def split_worker_budget(total: int, value_count: int) -> Tuple[int, int]:
    """Split one worker budget between sweep level and iteration level.

    Returns ``(sweep_workers, iteration_workers)`` with
    ``sweep_workers * iteration_workers <= max(total, 1)``: the sweep level
    gets as many processes as there are parameter values (the outer level
    parallelises the longer, heterogeneous tasks), and whatever budget
    remains per value goes to the iteration pools inside each measure.
    """
    if total < 1:
        raise ConfigurationError(f"total workers must be at least 1, got {total}")
    if value_count < 1:
        raise ConfigurationError(
            f"value_count must be at least 1, got {value_count}"
        )
    sweep_workers = min(total, value_count)
    iteration_workers = max(1, total // sweep_workers)
    return sweep_workers, iteration_workers


def adaptive_worker_allotment(
    available: int, ready_tasks: int, task_width: int = 1
) -> int:
    """Workers granted to the *next* task under a shared campaign budget.

    The campaign-scheduler extension of :func:`split_worker_budget`:
    instead of one static ``values x iterations`` split for a single
    sweep, a scheduler repeatedly asks how many workers the next ready
    task should own, given how much of the budget is currently free and
    how many tasks still compete for it.  With many ready tasks the
    answer is 1 (breadth — as many scenarios in flight as the budget
    allows); as queues drain and finished scenarios free their workers,
    the remaining tasks are granted larger allotments (depth — bigger
    iteration pools), which is what closes the tail of a heterogeneous
    campaign.

    Args:
        available: workers currently free out of the total budget.
        ready_tasks: tasks ready to run, *including* the one being
            allotted.
        task_width: the task's own useful parallelism (e.g. its iteration
            count); the allotment never exceeds it.

    Returns:
        An allotment in ``[1, min(available, task_width)]``; allotments of
        concurrently granted tasks never sum past the budget because the
        fair share is ``available // ready_tasks``, floored at 1 only when
        the share would be fractional (the scheduler then simply runs
        fewer tasks at once).
    """
    if available < 1:
        raise ConfigurationError(
            f"available workers must be at least 1, got {available}"
        )
    if ready_tasks < 1:
        raise ConfigurationError(
            f"ready_tasks must be at least 1, got {ready_tasks}"
        )
    fair_share = max(1, available // ready_tasks)
    return max(1, min(fair_share, task_width, available))


def measure_row(
    parameter_name: str,
    measure: Callable[[float], Dict[str, float]],
    value: float,
) -> Dict[str, float]:
    """One sweep row: the parameter value plus its measured series.

    Module-level (and pickled by reference) so both this module's sweep
    pool and the campaign scheduler's shared pool submit it directly as
    the worker-process body of one parameter value.
    """
    faults.fire("measure", context=f"{parameter_name}={value:g}")
    with telemetry.span("task", parameter=parameter_name, value=float(value)):
        row: Dict[str, float] = {parameter_name: float(value)}
        row.update(dict(measure(value)))
        return row


def _sweep_staging(checkpoint) -> Optional[Callable[[], None]]:
    """An ``on_respawn`` hook sweeping dead writers' staging directories.

    Duck-typed through the sweep checkpoint to its store's
    ``sweep_dead_staging`` (see :meth:`repro.store.result_store.
    ResultStore.sweep_dead_staging`); storage-free sweeps get no hook.
    """
    store = getattr(checkpoint, "store", None)
    sweep = getattr(store, "sweep_dead_staging", None)
    if sweep is None:
        return None

    def respawn() -> None:
        try:
            sweep()
        except Exception:
            pass  # best-effort hygiene; never mask the recovery

    return respawn


def sweep_parameter(
    parameter_name: str,
    parameter_values: Sequence[float],
    measure: Callable[[float], Dict[str, float]],
    workers: int = 1,
    iteration_workers: Optional[int] = None,
    checkpoint: Optional[SweepCheckpoint] = None,
    retry_policy: Optional[RetryPolicy] = None,
) -> SweepResult:
    """Run ``measure`` at every parameter value and tabulate the results.

    Args:
        parameter_name: column name of the swept parameter.
        parameter_values: values to sweep, in order.
        measure: callable returning a dict of measured series for one
            value; must be picklable (module-level, e.g. a
            :class:`Measure` dataclass) when ``workers > 1``.
        workers: parameter values measured concurrently.  1 (default) runs
            the sweep serially in-process; larger values fan the sweep out
            over a process pool.  Results are bit-identical either way and
            rows always come back in ``parameter_values`` order.
        iteration_workers: if given, the measure is rebound with
            ``measure.with_iteration_workers(iteration_workers)`` before
            the sweep runs, capping the *nested* simulation pools so the
            total process count stays within ``workers *
            iteration_workers`` (see :func:`split_worker_budget`).
        checkpoint: optional :class:`SweepCheckpoint`.  Values whose rows
            ``checkpoint.load`` returns are not measured again; every
            freshly measured row is passed to ``checkpoint.save`` the
            moment it is available, so an interrupted sweep resumes where
            it stopped.  Because each measure call is deterministic given
            the value, a resumed or fully checkpointed sweep is
            bit-identical to an uninterrupted one.
        retry_policy: optional :class:`repro.supervision.RetryPolicy` for
            the parallel path.  ``None`` (default) fails fast exactly as
            before supervision existed; a supervising policy retries
            crashed workers, task exceptions and (with ``task_timeout``)
            hung values on a respawned pool — bit-identical when the
            retries eventually succeed, since each measure call is a pure
            function of its value.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be at least 1, got {workers}")
    if iteration_workers is not None:
        if iteration_workers < 1:
            raise ConfigurationError(
                f"iteration_workers must be at least 1, got {iteration_workers}"
            )
        rebind = getattr(measure, "with_iteration_workers", None)
        if rebind is not None:
            measure = rebind(iteration_workers)
    if checkpoint is not None:
        # Measures that support iteration-granular checkpoints capture the
        # sweep checkpoint so each value's inner simulation can persist
        # (and resume) individual iterations.
        rebind_checkpoint = getattr(measure, "with_value_checkpoint", None)
        if rebind_checkpoint is not None:
            measure = rebind_checkpoint(checkpoint)

    result = SweepResult(parameter_name=parameter_name)
    values = list(parameter_values)
    rows: Dict[int, Dict[str, float]] = {}
    pending: List[Tuple[int, float]] = []
    for index, value in enumerate(values):
        row = checkpoint.load(value) if checkpoint is not None else None
        if row is not None:
            rows[index] = dict(row)
        else:
            pending.append((index, value))

    worker_count = min(workers, len(pending)) if pending else 1
    if worker_count <= 1:
        for index, value in pending:
            row = measure_row(parameter_name, measure, value)
            if checkpoint is not None:
                checkpoint.save(value, row)
            rows[index] = row
    else:
        # Parameter values run in worker *processes* (never pools inside
        # threads): each worker may itself own an iteration-level pool.
        # Rows are checkpointed in completion order — as soon as they
        # exist — and reordered when the sweep is assembled below.  The
        # supervised gather with the default policy reproduces the legacy
        # fail-fast pool exactly; a supervising ``retry_policy`` survives
        # worker crashes, task exceptions and hangs.
        from repro.simulation.shm import ensure_shared_memory_tracker

        ensure_shared_memory_tracker()

        def submit_value(pool, item, available, ready):
            index, value = item
            # Carry the ambient span context (the scenario, under the
            # serial campaign loop) into the worker; identity when
            # telemetry is inactive.
            return (
                pool.submit(
                    telemetry.propagate(measure_row),
                    parameter_name,
                    measure,
                    value,
                ),
                1,
            )

        def consume(item, row, cost):
            index, value = item
            if checkpoint is not None:
                checkpoint.save(value, row)
            rows[index] = row

        run_supervised(
            pending,
            budget=worker_count,
            submit=submit_value,
            on_result=consume,
            policy=retry_policy,
            on_respawn=_sweep_staging(checkpoint),
        )

    result.rows.extend(rows[index] for index in range(len(values)))
    return result
