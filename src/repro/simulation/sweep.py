"""Parameter sweeps.

Every figure of the paper is a sweep of one parameter (system side ``l``,
``pstationary``, ``tpause`` or ``vmax``) against one or more derived
quantities.  :func:`sweep_parameter` runs such a sweep generically and
returns a :class:`SweepResult` that the experiment layer renders as a
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class SweepResult:
    """Tabular result of a one-parameter sweep.

    Attributes:
        parameter_name: name of the swept parameter (e.g. ``"l"``).
        rows: one dict per parameter value; every dict contains the
            parameter value under ``parameter_name`` plus one entry per
            measured series.
    """

    parameter_name: str
    rows: List[Dict[str, float]] = field(default_factory=list)

    @property
    def parameter_values(self) -> List[float]:
        """The swept values, in row order."""
        return [row[self.parameter_name] for row in self.rows]

    def series(self, name: str) -> List[float]:
        """One measured series across the sweep, in row order."""
        return [row[name] for row in self.rows]

    def series_names(self) -> List[str]:
        """Names of all measured series (excluding the parameter itself)."""
        if not self.rows:
            return []
        return [key for key in self.rows[0] if key != self.parameter_name]

    def as_dicts(self) -> List[Dict[str, float]]:
        """The raw rows (shared reference; callers should not mutate)."""
        return self.rows


def sweep_parameter(
    parameter_name: str,
    parameter_values: Sequence[float],
    measure: Callable[[float], Dict[str, float]],
) -> SweepResult:
    """Run ``measure`` at every parameter value and tabulate the results.

    The sweep itself is intentionally serial: the heavy parallelism lives
    one level down, in ``SimulationConfig.workers`` (every registered
    experiment's ``measure`` fans its simulation iterations out over a
    process pool).  Parallelising across parameter values as well would
    fork worker pools from multiple threads, which is unsafe on POSIX;
    sweep-level fan-out needs picklable measures and is tracked as a
    ROADMAP follow-up.

    Args:
        parameter_name: column name of the swept parameter.
        parameter_values: values to sweep, in order.
        measure: callable returning a dict of measured series for one value.
    """
    result = SweepResult(parameter_name=parameter_name)
    for value in parameter_values:
        measurements = dict(measure(value))
        row: Dict[str, float] = {parameter_name: float(value)}
        row.update(measurements)
        result.rows.append(row)
    return result
