"""Simulation engine for the mobile MTRM study (Section 4).

The engine mirrors the simulator described in Section 4.1 of the paper:
``n`` nodes are placed uniformly at random in ``[0, l]^d``, a mobility
model moves them for ``#steps`` steps, and at every step the communication
graph induced by the common transmitting range is examined.  The paper's
outputs — percentage of connected graphs, average and minimum size of the
largest connected component, per iteration and across iterations — are all
available, plus a more efficient trace-statistics mode in which each frame
is reduced to its exact critical range and component-growth curve so that
*every* threshold (``r100``, ``r90``, ``r10``, ``r0``, ``rl90``, ``rl75``,
``rl50``) can be extracted from a single mobility run.

Main entry points:

* :class:`~repro.simulation.config.SimulationConfig` — declarative
  description of a run.
* :func:`~repro.simulation.runner.run_fixed_range` — the paper's simulator:
  fixed ``r``, returns connectivity percentages and component sizes.
* :func:`~repro.simulation.runner.collect_frame_statistics` — one mobility
  run, per-frame critical ranges and component curves.
* :func:`~repro.simulation.search.estimate_thresholds` — the ``r_x`` and
  ``rl_x`` values plotted in Figures 2–9.
* :func:`~repro.simulation.search.stationary_critical_range` — the
  ``rstationary`` denominator.

Execution scales along three orthogonal axes, all bit-identical to a
serial run for the same seed:

* ``SimulationConfig.workers`` fans the independent iterations out over
  worker processes (each iteration owns child stream ``i`` of the root
  seed);
* :func:`~repro.simulation.sweep.sweep_parameter` can additionally fan the
  *parameter values* of a figure sweep out over processes (its ``workers``
  argument); the two multiply, so callers split one worker budget between
  them (see :func:`~repro.simulation.sweep.split_worker_budget`);
* the per-frame hot path is vectorized (batched mobility trajectories +
  batched MST reduction into columnar containers, see
  :func:`~repro.simulation.engine.frame_statistics_columns`), and results
  cross process boundaries as struct-of-arrays
  (:class:`~repro.simulation.results.StepColumns`,
  :class:`~repro.simulation.results.FrameStatisticsColumns`) instead of
  per-step objects;
* a *single* iteration can shard its trajectory across workers
  (``SimulationConfig.shard_steps`` / automatic when workers outnumber
  iterations, see :mod:`~repro.simulation.sharding`), and large results
  hand off zero-copy through shared memory instead of the pickle pipe
  (``SimulationConfig.transport``, see :mod:`~repro.simulation.shm`).
"""

from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.engine import (
    FrameStatistics,
    component_growth_curve,
    frame_statistics,
    frame_statistics_batch,
    frame_statistics_columns,
    simulate_frame_statistics,
    simulate_iteration,
)
from repro.simulation.metrics import (
    average_largest_fraction_at,
    connectivity_fraction_at,
    largest_component_size_at,
    minimum_largest_fraction_at,
    range_for_component_fraction,
    range_for_connectivity_fraction,
    range_for_no_connectivity,
)
from repro.simulation.results import (
    FrameStatisticsColumns,
    IterationResult,
    MobileRunResult,
    StepColumns,
    StepRecord,
    pool_frame_statistics,
)
from repro.simulation.runner import (
    collect_frame_statistics,
    run_fixed_range,
    stationary_critical_range,
)
from repro.simulation.search import (
    ComponentThresholds,
    MobilityThresholds,
    estimate_component_thresholds,
    estimate_thresholds,
)
from repro.simulation.sharding import resolve_shard_plan, shard_plan
from repro.simulation.shm import (
    SharedColumnsHandle,
    adopt_result,
    share_columns,
    shm_available,
)
from repro.simulation.sweep import (
    Measure,
    SweepResult,
    split_worker_budget,
    sweep_parameter,
)

__all__ = [
    "ComponentThresholds",
    "FrameStatistics",
    "Measure",
    "FrameStatisticsColumns",
    "IterationResult",
    "MobileRunResult",
    "MobilitySpec",
    "MobilityThresholds",
    "NetworkConfig",
    "SharedColumnsHandle",
    "SimulationConfig",
    "StepColumns",
    "StepRecord",
    "SweepResult",
    "adopt_result",
    "average_largest_fraction_at",
    "collect_frame_statistics",
    "component_growth_curve",
    "connectivity_fraction_at",
    "estimate_component_thresholds",
    "estimate_thresholds",
    "frame_statistics",
    "frame_statistics_batch",
    "frame_statistics_columns",
    "largest_component_size_at",
    "minimum_largest_fraction_at",
    "pool_frame_statistics",
    "range_for_component_fraction",
    "range_for_connectivity_fraction",
    "range_for_no_connectivity",
    "resolve_shard_plan",
    "run_fixed_range",
    "share_columns",
    "shard_plan",
    "shm_available",
    "simulate_frame_statistics",
    "simulate_iteration",
    "split_worker_budget",
    "stationary_critical_range",
    "sweep_parameter",
]
