"""Intra-iteration trajectory sharding.

PRs 1–4 parallelised *across* iterations, sweep values and campaign
scenarios; a single long-trajectory iteration still ran on one core.  The
machinery here splits one iteration of ``steps`` frames into contiguous
chunks executed by different worker processes:

1. the parent draws the placement, binds the mobility model and captures a
   :class:`~repro.mobility.base.MobilityCheckpoint` at every chunk
   boundary by *fast-forwarding* the model through the trajectory
   (vectorised mobility generation only — cheap next to the per-frame MST
   reduction that dominates an iteration);
2. each worker restores the checkpoint of its chunk — per-node model
   state *and* the exact RNG stream position — regenerates its frames and
   runs the expensive frame reduction for just that chunk;
3. the parent stitches the chunk containers back together
   (:meth:`~repro.simulation.results.StepColumns.concatenate` /
   :meth:`~repro.simulation.results.FrameStatisticsColumns.concatenate`).

Because chunk ``k`` starts from exactly the state a serial run would have
after chunk ``k - 1`` (checkpoints capture the RNG position, so every
draw lands in the same place), the stitched result is bit-identical to
the serial run — same arrays, same store keys, and the parent's generator
is left at the same stream position.  The mobility dynamics are generated
twice (once by the fast-forwarding parent, once by the workers), which is
the price of keeping chunk execution embarrassingly parallel; the frame
reduction, which dominates at paper scale, runs exactly once per frame.

Sharding engages explicitly (``shard_steps=`` /
``SimulationConfig.shard_steps`` / CLI ``--shard-steps``) or
automatically when a runner holds more workers than pending iterations
and the trajectory is long enough to split usefully
(:func:`resolve_shard_plan`) — so spare workers granted by
``adaptive_worker_allotment`` fold into intra-iteration shards instead of
idling.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityCheckpoint, MobilityModel
from repro.simulation.engine import (
    reduce_fixed_range,
    reduce_frame_statistics,
)
from repro.simulation.shm import share_columns
from repro.stats.rng import RandomSource

__all__ = [
    "MIN_SHARD_STEPS",
    "capture_shard_checkpoints",
    "max_useful_shards",
    "resolve_shard_plan",
    "run_shard",
    "shard_plan",
]

#: Smallest chunk worth a worker round trip: below this the checkpoint
#: capture, process hand-off and double mobility generation outweigh the
#: parallelised reduction.  Auto-sharding never cuts chunks smaller.
MIN_SHARD_STEPS = 64

def max_useful_shards(steps: int) -> int:
    """How many chunks a ``steps``-frame trajectory can usefully split into."""
    return max(1, steps // MIN_SHARD_STEPS)


def shard_plan(steps: int, shard_steps: int) -> List[int]:
    """Contiguous chunk lengths: ``shard_steps`` frames each, last short."""
    if shard_steps < 1:
        raise ConfigurationError(
            f"shard_steps must be at least 1, got {shard_steps}"
        )
    if steps < 1:
        raise ConfigurationError(f"steps must be at least 1, got {steps}")
    chunks: List[int] = []
    remaining = steps
    while remaining > 0:
        take = min(shard_steps, remaining)
        chunks.append(take)
        remaining -= take
    return chunks


def resolve_shard_plan(
    config, pending_iterations: int, shard_steps: Optional[int] = None
) -> Optional[List[int]]:
    """The chunk plan a runner should use, or ``None`` to run unsharded.

    An explicit ``shard_steps`` (argument, falling back to
    ``config.shard_steps``) always wins.  Otherwise sharding engages
    automatically when the worker budget exceeds the pending iteration
    count — the situation PR 4's adaptive allotment creates as a campaign
    drains — and the trajectory is long enough that every chunk keeps at
    least :data:`MIN_SHARD_STEPS` frames.  A one-chunk plan is reported as
    ``None``: running it through the shard path would only add overhead.
    """
    explicit = shard_steps if shard_steps is not None else config.shard_steps
    if explicit is not None:
        chunks = shard_plan(config.steps, explicit)
        return chunks if len(chunks) > 1 else None
    if pending_iterations < 1 or config.workers <= pending_iterations:
        return None
    wanted = -(-config.workers // pending_iterations)  # ceil division
    shards = min(wanted, max_useful_shards(config.steps))
    if shards <= 1:
        return None
    # A balanced split (chunks differ by at most one frame): with
    # ``shards <= steps // MIN_SHARD_STEPS`` every chunk then holds at
    # least MIN_SHARD_STEPS frames — a ragged equal-size-plus-remainder
    # plan could leave a final chunk below the floor.
    base, extra = divmod(config.steps, shards)
    return [base + 1] * extra + [base] * (shards - extra)


def _advance_frames(
    model: MobilityModel, count: int, rng: np.random.Generator
) -> None:
    """Advance a live model by ``count`` frames, discarding the positions.

    Delegates to :meth:`~repro.mobility.base.MobilityModel.advance`, which
    the built-in models override to skip materialising trajectory frame
    arrays entirely — fast-forwarding a 10 000-step walk costs state
    bookkeeping and RNG draws only.
    """
    model.advance(count, rng)


def capture_shard_checkpoints(
    network,
    mobility,
    chunks: List[int],
    rng: np.random.Generator,
    advance_tail: bool = True,
) -> List[MobilityCheckpoint]:
    """Placement, model binding and one checkpoint per chunk boundary.

    Consumes exactly the draws a serial iteration would: the placement,
    the model initialisation and every trajectory frame — so after this
    returns, ``rng`` sits precisely where a serial run would have left
    it.  Checkpoint ``k`` captures the state from which chunk ``k``'s
    worker resumes (for ``k > 0`` that is "the last frame of chunk
    ``k - 1`` is current").

    ``advance_tail=False`` skips fast-forwarding through the *last*
    chunk: no checkpoint lies beyond it, so the only thing that advance
    buys is the stream-position invariant above.  Callers that discard
    ``rng`` afterwards (each iteration of :func:`capture_iteration_plans`
    owns a private child stream) save 1/``len(chunks)`` of the parent's
    mobility cost by opting out.
    """
    with telemetry.span(
        "shard.fast_forward", chunks=len(chunks), steps=sum(chunks)
    ):
        region = network.region
        placement = network.placement_strategy(network.node_count, region, rng)
        model = mobility.create()
        model.initialize(placement, region, rng)
        checkpoints = [model.checkpoint_state(rng)]
        for index in range(1, len(chunks)):
            # Chunk 0 includes the current (initial) frame, so it consumes
            # one draw-frame fewer than its length; later chunks consume
            # exactly their length.
            count = chunks[index - 1] - 1 if index == 1 else chunks[index - 1]
            _advance_frames(model, count, rng)
            checkpoints.append(model.checkpoint_state(rng))
        if advance_tail:
            final = chunks[-1] if len(chunks) > 1 else chunks[-1] - 1
            _advance_frames(model, final, rng)
        return checkpoints


def run_shard(
    mode: str,
    mobility,
    checkpoint: MobilityCheckpoint,
    chunk_steps: int,
    include_current: bool,
    transmitting_range: Optional[float] = None,
    transport: str = "pickle",
    backend: Optional[str] = None,
):
    """Worker-process body of one trajectory chunk.

    Restores the chunk's mobility checkpoint (fresh model instance from
    the picklable spec, RNG at the captured position), regenerates the
    chunk's frames and reduces them — ``mode`` selects
    :func:`~repro.simulation.engine.reduce_frame_statistics` (``"stats"``)
    or :func:`~repro.simulation.engine.reduce_fixed_range` (``"fixed"``).
    ``backend`` names the array backend the reduction kernels run under
    (resolved inside the worker process — backend handles are not
    picklable).  The resulting container leaves through the configured
    transport (shared memory or pickle).
    """
    with telemetry.span("shard", steps=chunk_steps, mode=mode):
        model = mobility.create()
        rng = model.from_state(checkpoint)
        if mode == "fixed":
            if transmitting_range is None:
                raise ConfigurationError(
                    "fixed-range shards need a transmitting_range"
                )
            columns = reduce_fixed_range(
                model,
                chunk_steps,
                transmitting_range,
                rng,
                include_current=include_current,
                backend=backend,
            )
        elif mode == "stats":
            columns = reduce_frame_statistics(
                model,
                chunk_steps,
                rng,
                include_current=include_current,
                backend=backend,
            )
        else:
            raise ConfigurationError(f"unknown shard mode {mode!r}")
        return share_columns(columns, transport)


def capture_iteration_plans(
    config, entropy: int, pending: List[int], chunks: List[int]
) -> Dict[int, List[MobilityCheckpoint]]:
    """Chunk checkpoints for every pending iteration of a config.

    Iteration ``i`` is fast-forwarded on its own child stream
    ``RandomSource(entropy).child(i)`` — the same stream a serial or
    iteration-parallel run would use — so sharded, parallel and serial
    execution all consume identical draws.
    """
    plans: Dict[int, List[MobilityCheckpoint]] = {}
    for index in pending:
        rng = RandomSource.from_entropy(entropy).child(index)
        # The child stream dies with this loop iteration, so the final
        # chunk's fast-forward (which only positions the stream) is
        # skipped.
        plans[index] = capture_shard_checkpoints(
            config.network, config.mobility, chunks, rng, advance_tail=False
        )
    return plans
