"""Intra-iteration trajectory sharding.

PRs 1–4 parallelised *across* iterations, sweep values and campaign
scenarios; a single long-trajectory iteration still ran on one core.  The
machinery here splits one iteration of ``steps`` frames into contiguous
chunks executed by different worker processes:

1. the parent draws the placement, binds the mobility model and
   generates each chunk's frame arrays *once*
   (:func:`capture_shard_frames` — vectorised mobility generation only,
   cheap next to the per-frame MST reduction that dominates an
   iteration), parking large chunks in shared memory
   (:func:`~repro.simulation.shm.share_columns` over
   :class:`~repro.simulation.results.TrajectoryFrames`);
2. each worker adopts (borrows) its chunk's frames zero-copy and runs
   the expensive frame reduction for just that chunk;
3. the parent stitches the chunk containers back together
   (:meth:`~repro.simulation.results.StepColumns.concatenate` /
   :meth:`~repro.simulation.results.FrameStatisticsColumns.concatenate`)
   and disposes of the frame segments it created.

Because the parent walks one model through the whole trajectory with the
same draws a serial run makes (``trajectory(count)`` consumes
``count - 1`` step draws starting at the current frame), the stitched
result is bit-identical to the serial run — same arrays, same store
keys, and the parent's generator is left at the same stream position.
Mobility dynamics are generated exactly once and the frame reduction
runs exactly once per frame; earlier revisions regenerated each chunk's
mobility from a :class:`~repro.mobility.base.MobilityCheckpoint` inside
the worker (generating the dynamics twice).  That checkpoint path
(:func:`capture_shard_checkpoints` / :func:`capture_iteration_plans` and
the ``checkpoint`` argument of :func:`run_shard`) remains available for
callers that would rather re-derive frames than ship them; the runners
hand frames.

Sharding engages explicitly (``shard_steps=`` /
``SimulationConfig.shard_steps`` / CLI ``--shard-steps``) or
automatically when a runner holds more workers than pending iterations
and the trajectory is long enough to split usefully
(:func:`resolve_shard_plan`) — so spare workers granted by
``adaptive_worker_allotment`` fold into intra-iteration shards instead of
idling.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityCheckpoint, MobilityModel
from repro.simulation.engine import (
    reduce_fixed_range,
    reduce_frame_statistics,
    reduce_frames_fixed_range,
    reduce_frames_statistics,
)
from repro.simulation.results import TrajectoryFrames
from repro.simulation.shm import adopt_result, share_columns
from repro.stats.rng import RandomSource

__all__ = [
    "MIN_SHARD_STEPS",
    "capture_iteration_frames",
    "capture_iteration_plans",
    "capture_shard_checkpoints",
    "capture_shard_frames",
    "max_useful_shards",
    "resolve_shard_plan",
    "run_shard",
    "shard_plan",
]

#: Smallest chunk worth a worker round trip: below this the checkpoint
#: capture, process hand-off and double mobility generation outweigh the
#: parallelised reduction.  Auto-sharding never cuts chunks smaller.
MIN_SHARD_STEPS = 64

def max_useful_shards(steps: int) -> int:
    """How many chunks a ``steps``-frame trajectory can usefully split into."""
    return max(1, steps // MIN_SHARD_STEPS)


def shard_plan(steps: int, shard_steps: int) -> List[int]:
    """Contiguous chunk lengths: ``shard_steps`` frames each, last short."""
    if shard_steps < 1:
        raise ConfigurationError(
            f"shard_steps must be at least 1, got {shard_steps}"
        )
    if steps < 1:
        raise ConfigurationError(f"steps must be at least 1, got {steps}")
    chunks: List[int] = []
    remaining = steps
    while remaining > 0:
        take = min(shard_steps, remaining)
        chunks.append(take)
        remaining -= take
    return chunks


def resolve_shard_plan(
    config, pending_iterations: int, shard_steps: Optional[int] = None
) -> Optional[List[int]]:
    """The chunk plan a runner should use, or ``None`` to run unsharded.

    An explicit ``shard_steps`` (argument, falling back to
    ``config.shard_steps``) always wins.  Otherwise sharding engages
    automatically when the worker budget exceeds the pending iteration
    count — the situation PR 4's adaptive allotment creates as a campaign
    drains — and the trajectory is long enough that every chunk keeps at
    least :data:`MIN_SHARD_STEPS` frames.  A one-chunk plan is reported as
    ``None``: running it through the shard path would only add overhead.
    """
    explicit = shard_steps if shard_steps is not None else config.shard_steps
    if explicit is not None:
        chunks = shard_plan(config.steps, explicit)
        return chunks if len(chunks) > 1 else None
    if pending_iterations < 1 or config.workers <= pending_iterations:
        return None
    wanted = -(-config.workers // pending_iterations)  # ceil division
    shards = min(wanted, max_useful_shards(config.steps))
    if shards <= 1:
        return None
    # A balanced split (chunks differ by at most one frame): with
    # ``shards <= steps // MIN_SHARD_STEPS`` every chunk then holds at
    # least MIN_SHARD_STEPS frames — a ragged equal-size-plus-remainder
    # plan could leave a final chunk below the floor.
    base, extra = divmod(config.steps, shards)
    return [base + 1] * extra + [base] * (shards - extra)


def _advance_frames(
    model: MobilityModel, count: int, rng: np.random.Generator
) -> None:
    """Advance a live model by ``count`` frames, discarding the positions.

    Delegates to :meth:`~repro.mobility.base.MobilityModel.advance`, which
    the built-in models override to skip materialising trajectory frame
    arrays entirely — fast-forwarding a 10 000-step walk costs state
    bookkeeping and RNG draws only.
    """
    model.advance(count, rng)


def capture_shard_checkpoints(
    network,
    mobility,
    chunks: List[int],
    rng: np.random.Generator,
    advance_tail: bool = True,
) -> List[MobilityCheckpoint]:
    """Placement, model binding and one checkpoint per chunk boundary.

    Consumes exactly the draws a serial iteration would: the placement,
    the model initialisation and every trajectory frame — so after this
    returns, ``rng`` sits precisely where a serial run would have left
    it.  Checkpoint ``k`` captures the state from which chunk ``k``'s
    worker resumes (for ``k > 0`` that is "the last frame of chunk
    ``k - 1`` is current").

    ``advance_tail=False`` skips fast-forwarding through the *last*
    chunk: no checkpoint lies beyond it, so the only thing that advance
    buys is the stream-position invariant above.  Callers that discard
    ``rng`` afterwards (each iteration of :func:`capture_iteration_plans`
    owns a private child stream) save 1/``len(chunks)`` of the parent's
    mobility cost by opting out.
    """
    with telemetry.span(
        "shard.fast_forward", chunks=len(chunks), steps=sum(chunks)
    ):
        region = network.region
        placement = network.placement_strategy(network.node_count, region, rng)
        model = mobility.create()
        model.initialize(placement, region, rng)
        checkpoints = [model.checkpoint_state(rng)]
        for index in range(1, len(chunks)):
            # Chunk 0 includes the current (initial) frame, so it consumes
            # one draw-frame fewer than its length; later chunks consume
            # exactly their length.
            count = chunks[index - 1] - 1 if index == 1 else chunks[index - 1]
            _advance_frames(model, count, rng)
            checkpoints.append(model.checkpoint_state(rng))
        if advance_tail:
            final = chunks[-1] if len(chunks) > 1 else chunks[-1] - 1
            _advance_frames(model, final, rng)
        return checkpoints


def capture_shard_frames(
    network,
    mobility,
    chunks: List[int],
    rng: np.random.Generator,
    transport: str = "pickle",
):
    """Placement, model binding and the chunk frame arrays themselves.

    The frame-handing capture: instead of fast-forwarding past each chunk
    and checkpointing its boundary, the parent *materialises* every
    chunk's frames (vectorised ``trajectory()`` — the same generation a
    worker would otherwise repeat) and parks each chunk through the
    shared-memory transport.  Returns one
    :class:`~repro.simulation.results.TrajectoryFrames`-or-handle per
    chunk, ready to pass to :func:`run_shard` as ``frames=``.

    Consumes exactly the draws a serial iteration would: chunk 0's
    ``trajectory(c0)`` starts at the current frame and consumes ``c0 - 1``
    step draws; every later chunk's ``trajectory(ck + 1)[1:]`` consumes
    ``ck`` — so after this returns, ``rng`` sits precisely where a serial
    run (or the checkpoint capture with ``advance_tail=True``) would have
    left it, and the frames are bit-identical to the serial trajectory.

    Shared segments created here are *borrowed* by their workers; the
    caller owns them and must dispose of every handle with
    :func:`~repro.simulation.shm.discard_shared` once its chunk result
    landed (retried tasks may re-adopt the same handle in between).
    """
    with telemetry.span(
        "shard.capture_frames", chunks=len(chunks), steps=sum(chunks)
    ):
        region = network.region
        placement = network.placement_strategy(network.node_count, region, rng)
        model = mobility.create()
        model.initialize(placement, region, rng)
        shards = []
        for index, length in enumerate(chunks):
            if index == 0:
                frames = model.trajectory(length, rng)
            else:
                # Frame 0 of a trajectory is the current position array —
                # the previous chunk's last frame — so request one extra
                # frame and drop it (same idiom as the engine's batching).
                frames = model.trajectory(length + 1, rng)[1:]
            shards.append(
                share_columns(
                    TrajectoryFrames(frames=np.ascontiguousarray(frames)),
                    transport,
                )
            )
        return shards


def capture_iteration_frames(
    config, entropy: int, pending: List[int], chunks: List[int],
    transport: str = "pickle",
) -> Dict[int, List]:
    """Chunk frames for every pending iteration of a config.

    Frame-handing counterpart of :func:`capture_iteration_plans`:
    iteration ``i`` is generated on its own child stream
    ``RandomSource(entropy).child(i)`` — the same stream a serial or
    iteration-parallel run would use — so sharded, parallel and serial
    execution all consume identical draws and observe identical frames.
    """
    plans: Dict[int, List] = {}
    for index in pending:
        rng = RandomSource.from_entropy(entropy).child(index)
        plans[index] = capture_shard_frames(
            config.network, config.mobility, chunks, rng, transport=transport
        )
    return plans


def _reduce_chunk_frames(
    mode: str,
    frames: np.ndarray,
    transmitting_range: Optional[float],
    backend: Optional[str],
):
    if mode == "fixed":
        if transmitting_range is None:
            raise ConfigurationError(
                "fixed-range shards need a transmitting_range"
            )
        return reduce_frames_fixed_range(
            frames, transmitting_range, backend=backend
        )
    if mode == "stats":
        return reduce_frames_statistics(frames, backend=backend)
    raise ConfigurationError(f"unknown shard mode {mode!r}")


def run_shard(
    mode: str,
    mobility,
    checkpoint: Optional[MobilityCheckpoint],
    chunk_steps: int,
    include_current: bool,
    transmitting_range: Optional[float] = None,
    transport: str = "pickle",
    backend: Optional[str] = None,
    frames=None,
):
    """Worker-process body of one trajectory chunk.

    With ``frames`` (a :class:`~repro.simulation.results.TrajectoryFrames`
    or its shared-memory handle from :func:`capture_shard_frames`) the
    worker adopts the parent-generated positions zero-copy — borrowing
    the segment, never unlinking it — and runs only the per-frame
    reduction; ``mobility``, ``checkpoint`` and ``include_current`` are
    unused and may be ``None`` (nothing is regenerated).

    Without ``frames``, the legacy checkpoint path: restore the chunk's
    mobility checkpoint (fresh model instance from the picklable spec,
    RNG at the captured position), regenerate the chunk's frames and
    reduce them.

    Either way ``mode`` selects
    :func:`~repro.simulation.engine.reduce_frame_statistics` (``"stats"``)
    or :func:`~repro.simulation.engine.reduce_fixed_range` (``"fixed"``)
    semantics, ``backend`` names the array backend the reduction kernels
    run under (resolved inside the worker process — backend handles are
    not picklable), and the resulting container leaves through the
    configured transport (shared memory or pickle).  Both paths are
    bit-identical to the serial reduction of the same chunk.
    """
    with telemetry.span("shard", steps=chunk_steps, mode=mode):
        if frames is not None:
            chunk = adopt_result(frames, owned=False)
            columns = _reduce_chunk_frames(
                mode, chunk.frames, transmitting_range, backend
            )
            return share_columns(columns, transport)
        model = mobility.create()
        rng = model.from_state(checkpoint)
        if mode == "fixed":
            if transmitting_range is None:
                raise ConfigurationError(
                    "fixed-range shards need a transmitting_range"
                )
            columns = reduce_fixed_range(
                model,
                chunk_steps,
                transmitting_range,
                rng,
                include_current=include_current,
                backend=backend,
            )
        elif mode == "stats":
            columns = reduce_frame_statistics(
                model,
                chunk_steps,
                rng,
                include_current=include_current,
                backend=backend,
            )
        else:
            raise ConfigurationError(f"unknown shard mode {mode!r}")
        return share_columns(columns, transport)


def capture_iteration_plans(
    config, entropy: int, pending: List[int], chunks: List[int]
) -> Dict[int, List[MobilityCheckpoint]]:
    """Chunk checkpoints for every pending iteration of a config.

    Iteration ``i`` is fast-forwarded on its own child stream
    ``RandomSource(entropy).child(i)`` — the same stream a serial or
    iteration-parallel run would use — so sharded, parallel and serial
    execution all consume identical draws.
    """
    plans: Dict[int, List[MobilityCheckpoint]] = {}
    for index in pending:
        rng = RandomSource.from_entropy(entropy).child(index)
        # The child stream dies with this loop iteration, so the final
        # chunk's fast-forward (which only positions the stream) is
        # skipped.
        plans[index] = capture_shard_checkpoints(
            config.network, config.mobility, chunks, rng, advance_tail=False
        )
    return plans
