"""Threshold extraction from frame statistics.

Given the per-frame statistics produced by
:func:`repro.simulation.engine.simulate_frame_statistics`, these functions
answer the questions behind Figures 2–6:

* what fraction of frames is connected at a given range
  (:func:`connectivity_fraction_at`);
* what is the smallest range at which that fraction reaches ``f``
  (:func:`range_for_connectivity_fraction`) — the paper's ``r100``, ``r90``
  and ``r10`` for ``f`` = 1.0, 0.9, 0.1;
* what is the largest range at which *no* frame is connected
  (:func:`range_for_no_connectivity`) — the paper's ``r0``;
* what is the average largest-component fraction at a given range
  (:func:`average_largest_fraction_at`) — Figures 4 and 5;
* what is the smallest range at which that average reaches a target
  (:func:`range_for_component_fraction`) — the paper's ``rl90``, ``rl75``
  and ``rl50``.

All the per-frame quantities are exact (MST bottleneck and Kruskal sweep),
so the only statistical error in the thresholds comes from the Monte-Carlo
sampling of placements and mobility — exactly as in the paper.

Every function accepts any sequence of :class:`FrameStatistics`; when it is
handed the columnar :class:`repro.simulation.results.
FrameStatisticsColumns` the engine produces, the per-frame Python loops are
replaced by array reductions over the flattened bottleneck-range and
component-curve columns.

Whatever array backend the engine reduced the frames on
(:mod:`repro.backend`), the columns handed to these functions are always
*host* NumPy — the engine syncs device results back before building them —
so threshold extraction itself is backend-agnostic and never needs an
``xp`` parameter.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import SearchError
from repro.simulation.results import FrameStatistics, FrameStatisticsColumns


def _as_columns(
    frames: Sequence[FrameStatistics],
) -> Optional[FrameStatisticsColumns]:
    """The columnar view of ``frames`` when it already is one."""
    if isinstance(frames, FrameStatisticsColumns):
        return frames
    return None


def largest_component_size_at(
    frames: Sequence[FrameStatistics], transmitting_range: float
) -> List[int]:
    """Largest component size of each frame at the given range."""
    columns = _as_columns(frames)
    if columns is not None:
        return columns.largest_component_sizes_at(transmitting_range).tolist()
    return [frame.largest_component_size_at(transmitting_range) for frame in frames]


def connectivity_fraction_at(
    frames: Sequence[FrameStatistics], transmitting_range: float
) -> float:
    """Fraction of frames whose graph is connected at the given range."""
    if not len(frames):
        return 0.0
    columns = _as_columns(frames)
    if columns is not None:
        return float(columns.connected_at(transmitting_range).mean())
    connected = sum(1 for frame in frames if frame.is_connected_at(transmitting_range))
    return connected / len(frames)


def average_largest_fraction_at(
    frames: Sequence[FrameStatistics], transmitting_range: float
) -> float:
    """Mean largest-component fraction over all frames at the given range.

    Frames with zero nodes carry no component information and are excluded
    from both the numerator and the denominator (matching
    :func:`minimum_largest_fraction_at`); if every frame is empty the
    average is 0.0.
    """
    columns = _as_columns(frames)
    if columns is not None:
        if not len(columns) or columns.node_count == 0:
            return 0.0
        sizes = columns.largest_component_sizes_at(transmitting_range)
        return float(sizes.mean()) / columns.node_count
    # With one shared node count, evaluate exactly like the columnar path
    # (mean of the integer sizes, then one division) so the same frames
    # give the bit-same average in either representation.
    node_counts = {frame.node_count for frame in frames}
    if len(node_counts) == 1 and 0 not in node_counts and len(frames):
        node_count = node_counts.pop()
        sizes = np.fromiter(
            (
                frame.largest_component_size_at(transmitting_range)
                for frame in frames
            ),
            dtype=np.int64,
            count=len(frames),
        )
        return float(sizes.mean()) / node_count
    total = 0.0
    counted = 0
    for frame in frames:
        if frame.node_count == 0:
            continue
        total += frame.largest_component_size_at(transmitting_range) / frame.node_count
        counted += 1
    return total / counted if counted else 0.0


def minimum_largest_fraction_at(
    frames: Sequence[FrameStatistics], transmitting_range: float
) -> float:
    """Smallest largest-component fraction over all frames at the given range."""
    if not len(frames):
        return 0.0
    columns = _as_columns(frames)
    if columns is not None:
        if columns.node_count == 0:
            return 0.0
        sizes = columns.largest_component_sizes_at(transmitting_range)
        return float(sizes.min()) / columns.node_count
    fractions = [
        frame.largest_component_size_at(transmitting_range) / frame.node_count
        for frame in frames
        if frame.node_count > 0
    ]
    return min(fractions) if fractions else 0.0


def range_for_connectivity_fraction(
    frames: Sequence[FrameStatistics], fraction: float
) -> float:
    """Smallest range at which at least ``fraction`` of the frames connect.

    Because a frame is connected exactly when the range reaches its critical
    range, this is the ``fraction``-quantile (inclusive) of the per-frame
    critical ranges.  ``fraction = 1.0`` gives the paper's ``r100``, 0.9
    gives ``r90`` and 0.1 gives ``r10``.
    """
    if not 0.0 < fraction <= 1.0:
        raise SearchError(f"fraction must be in (0, 1], got {fraction}")
    if not len(frames):
        raise SearchError("cannot extract a threshold from zero frames")
    columns = _as_columns(frames)
    if columns is not None:
        critical_ranges = np.sort(columns.critical_ranges)
    else:
        critical_ranges = sorted(frame.critical_range for frame in frames)
    count = len(critical_ranges)
    index = int(math.ceil(fraction * count)) - 1
    index = min(max(index, 0), count - 1)
    return float(critical_ranges[index])


def range_for_no_connectivity(frames: Sequence[FrameStatistics]) -> float:
    """Largest range at which *no* frame is connected (the paper's ``r0``).

    This is the supremum of ranges strictly below the smallest per-frame
    critical range; the value returned is that smallest critical range
    itself (at which exactly one frame first becomes connected), consistent
    with how the paper reads ``r0`` off its simulation sweeps.
    """
    if not len(frames):
        raise SearchError("cannot extract a threshold from zero frames")
    columns = _as_columns(frames)
    if columns is not None:
        return float(columns.critical_ranges.min())
    return min(frame.critical_range for frame in frames)


def range_for_component_fraction(
    frames: Sequence[FrameStatistics], target_fraction: float
) -> float:
    """Smallest range at which the *average* largest-component fraction
    reaches ``target_fraction`` (the paper's ``rl90``, ``rl75``, ``rl50``).

    The average of the per-frame step functions is itself a non-decreasing
    step function whose breakpoints are the union of the per-frame
    breakpoints, so the answer is found exactly by a binary search over the
    sorted breakpoint ranges.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise SearchError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    if not len(frames):
        raise SearchError("cannot extract a threshold from zero frames")

    # Quick exits: already above target at range 0, or unreachable even at
    # the largest breakpoint (cannot happen for target <= 1, but guard).
    if average_largest_fraction_at(frames, 0.0) >= target_fraction:
        return 0.0
    columns = _as_columns(frames)
    if columns is not None:
        breakpoints = np.unique(columns.curve_ranges)
    else:
        breakpoints = sorted(
            {
                breakpoint_range
                for frame in frames
                for breakpoint_range, _ in frame.component_curve
            }
        )
    if not len(breakpoints):
        return 0.0
    if average_largest_fraction_at(frames, breakpoints[-1]) < target_fraction:
        raise SearchError(
            "the average largest-component fraction never reaches "
            f"{target_fraction}; largest achievable is "
            f"{average_largest_fraction_at(frames, breakpoints[-1]):.3f}"
        )
    low, high = 0, len(breakpoints) - 1
    while low < high:
        mid = (low + high) // 2
        if average_largest_fraction_at(frames, breakpoints[mid]) >= target_fraction:
            high = mid
        else:
            low = mid + 1
    return float(breakpoints[low])
