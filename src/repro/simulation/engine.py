"""The simulation engine.

Two modes are provided:

* :func:`simulate_iteration` — the paper's simulator: a fixed transmitting
  range is given, and the engine records at every mobility step whether the
  communication graph is connected and how large its largest component is.
* :func:`simulate_frame_statistics` — the trace-statistics mode: no range is
  fixed; instead every frame is reduced to its exact critical range (the
  longest MST edge) and its component-growth curve (largest component size
  as a non-decreasing step function of the range).  From those two pieces
  every threshold the paper studies can be recovered *for any range*
  without re-running mobility, which is how the Figure 2–9 benchmarks stay
  affordable.

Both modes are vectorized end to end: mobility trajectories are produced as
batched ``(steps, n, d)`` arrays (see :meth:`repro.mobility.base.
MobilityModel.trajectory` — the paper's waypoint and drunkard models both
override it, so no paper configuration falls back to the per-step Python
loop), each frame is reduced through the sorted MST edges of
:func:`repro.connectivity.critical_range.minimum_spanning_edges`, so only
``n - 1`` union-find operations — not one per ``O(n^2)`` candidate edge —
run in Python per frame, and the per-frame outputs are accumulated into the
columnar containers of :mod:`repro.simulation.results`
(:class:`~repro.simulation.results.StepColumns` /
:class:`~repro.simulation.results.FrameStatisticsColumns`), which ship
between worker processes as a handful of arrays instead of one pickled
dataclass per step.  The pre-vectorization reduction is kept as
:func:`component_growth_curve_reference` for property tests and the
micro-benchmark in ``benchmarks/bench_parallel_scaling.py``.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.backend import NUMPY_BACKEND, ArrayBackend, resolve_backend
from repro.connectivity.critical_range import (
    critical_range,
    minimum_spanning_edges,
    minimum_spanning_edges_batch,
    range_reaching,
)
from repro.exceptions import SimulationError
from repro.geometry.distance import squared_distance_matrix
from repro.graph.union_find import UnionFind
from repro.mobility.base import MobilityModel
from repro.simulation.config import MobilitySpec, NetworkConfig
from repro.simulation.results import (
    FrameStatistics,
    FrameStatisticsColumns,
    IterationResult,
    StepColumns,
)
from repro.types import Positions

__all__ = [
    "FrameStatistics",
    "FrameStatisticsColumns",
    "component_growth_curve",
    "component_growth_curve_reference",
    "exact_critical_range_of_placement",
    "frame_statistics",
    "frame_statistics_batch",
    "frame_statistics_columns",
    "reduce_fixed_range",
    "reduce_frame_statistics",
    "reduce_frames_fixed_range",
    "reduce_frames_statistics",
    "simulate_frame_statistics",
    "simulate_iteration",
]

#: Upper bound on the floats buffered per trajectory batch (~16 MB).
_TRAJECTORY_BATCH_ELEMENTS = 2_000_000


def component_growth_curve(positions: Positions) -> Tuple[Tuple[float, int], ...]:
    """Breakpoints of "largest component size as a function of the range".

    Computed with a Kruskal-style sweep over the sorted MST edges of
    :func:`repro.connectivity.critical_range.minimum_spanning_edges`: the
    component partition at every length threshold is fully determined by
    the MST, so only its ``n - 1`` edges are merged into the union-find
    structure.  Every time the size of the largest set grows, a breakpoint
    ``(distance, new_size)`` is emitted; breakpoints sharing a range value
    (tied edge lengths) are coalesced into the last one.  The final
    breakpoint is always ``(critical_range, n)``.
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = points.shape[0]
    if n <= 1:
        return ()
    us, vs, lengths = minimum_spanning_edges(points)
    return _curve_from_sorted_mst_edges(
        us.tolist(), vs.tolist(), lengths.tolist(), n
    )


def _curve_from_sorted_mst_edges(
    us: List[int], vs: List[int], lengths: List[float], n: int
) -> Tuple[Tuple[float, int], ...]:
    """Union-find sweep over sorted MST edges, emitting growth breakpoints.

    This runs once per simulated frame over plain Python lists, so the
    union-find is inlined (path halving, union by size) rather than paying
    a method call per edge.
    """
    parent = list(range(n))
    size = [1] * n
    breakpoints: List[Tuple[float, int]] = []
    largest = 1
    for u, v, squared_length in zip(us, vs, lengths):
        while parent[u] != u:
            parent[u] = parent[parent[u]]
            u = parent[u]
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        # MST edges always join two distinct components (u != v here).
        if size[u] < size[v]:
            u, v = v, u
        parent[v] = u
        size[u] += size[v]
        if size[u] > largest:
            largest = size[u]
            breakpoint_range = range_reaching(squared_length)
            if breakpoints and breakpoints[-1][0] == breakpoint_range:
                breakpoints[-1] = (breakpoint_range, largest)
            else:
                breakpoints.append((breakpoint_range, largest))
    return tuple(breakpoints)


def component_growth_curve_reference(
    positions: Positions,
) -> Tuple[Tuple[float, int], ...]:
    """Pre-vectorization :func:`component_growth_curve` (dense edge sweep).

    Sweeps all ``O(n^2)`` candidate edges in sorted order instead of just
    the MST edges.  Kept as the independent ground truth for the property
    tests and for the vectorized-vs-seed micro-benchmark; both
    implementations produce identical curves away from exact ties in the
    pairwise distances (ties have probability zero for the continuous
    placements the simulations draw).
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = points.shape[0]
    if n <= 1:
        return ()
    squared = squared_distance_matrix(points)
    rows, cols = np.triu_indices(n, k=1)
    lengths = squared[rows, cols]
    order = np.argsort(lengths, kind="stable")
    structure = UnionFind(n)
    breakpoints: List[Tuple[float, int]] = []
    largest = 1
    for index in order:
        u = int(rows[index])
        v = int(cols[index])
        if structure.union(u, v):
            size = structure.set_size(u)
            if size > largest:
                largest = size
                breakpoints.append((range_reaching(float(lengths[index])), size))
                if largest == n:
                    break
    return tuple(breakpoints)


def frame_statistics(positions: Positions) -> FrameStatistics:
    """Compute the :class:`FrameStatistics` of a single placement."""
    points = np.asarray(positions, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    curve = component_growth_curve(points)
    if curve:
        frame_critical = curve[-1][0]
    else:
        frame_critical = 0.0
    return FrameStatistics(
        critical_range=frame_critical,
        component_curve=curve,
        node_count=points.shape[0],
    )


def frame_statistics_columns(
    frames: np.ndarray,
    *,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> FrameStatisticsColumns:
    """Reduce a ``(B, n, d)`` batch of frames to columnar statistics.

    Bit-identical to calling :func:`frame_statistics` on each frame, but the
    MST construction runs batched across all frames
    (:func:`repro.connectivity.critical_range.minimum_spanning_edges_batch`),
    so the per-frame Python cost is one ``n - 1``-edge sweep instead of a
    full Prim loop, and the breakpoints land directly in the flattened
    columns of :class:`~repro.simulation.results.FrameStatisticsColumns`
    (no per-step objects are materialised).  This is the per-frame hot path
    of both simulation modes.

    ``backend`` names the array backend the batched MST runs on
    (:mod:`repro.backend`).  Host frames are transferred to it once per
    batch, the edge arrays come back through one explicit
    :meth:`~repro.backend.ArrayBackend.to_host` sync, and the union-find
    sweep plus the returned columns are always host NumPy — so transports,
    codecs and the store never see device arrays.
    """
    array_backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    points = np.asarray(frames, dtype=float)
    if points.ndim != 3:
        raise SimulationError(
            f"expected a (B, n, d) batch of frames, got shape {points.shape}"
        )
    batch, n = points.shape[0], points.shape[1]
    if n <= 1:
        return FrameStatisticsColumns(
            node_count=n,
            critical_ranges=np.zeros(batch),
            curve_offsets=np.zeros(batch + 1, dtype=np.int64),
            curve_ranges=np.empty(0),
            curve_sizes=np.empty(0, dtype=np.int64),
        )
    device_us, device_vs, device_lengths = minimum_spanning_edges_batch(
        array_backend.from_host(points), backend=array_backend
    )
    array_backend.synchronize()
    all_us = array_backend.to_host(device_us)
    all_vs = array_backend.to_host(device_vs)
    all_lengths = array_backend.to_host(device_lengths)
    critical_ranges = np.empty(batch)
    offsets = np.empty(batch + 1, dtype=np.int64)
    offsets[0] = 0
    flat_ranges: List[float] = []
    flat_sizes: List[int] = []
    for index, (us, vs, lengths) in enumerate(zip(all_us, all_vs, all_lengths)):
        curve = _curve_from_sorted_mst_edges(
            us.tolist(), vs.tolist(), lengths.tolist(), n
        )
        for breakpoint_range, breakpoint_size in curve:
            flat_ranges.append(breakpoint_range)
            flat_sizes.append(breakpoint_size)
        offsets[index + 1] = len(flat_ranges)
        critical_ranges[index] = curve[-1][0] if curve else 0.0
    return FrameStatisticsColumns(
        node_count=n,
        critical_ranges=critical_ranges,
        curve_offsets=offsets,
        curve_ranges=np.array(flat_ranges),
        curve_sizes=np.array(flat_sizes, dtype=np.int64),
    )


def frame_statistics_batch(
    frames: np.ndarray,
    *,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> List[FrameStatistics]:
    """Compute :class:`FrameStatistics` for a ``(B, n, d)`` batch of frames.

    Object-list view of :func:`frame_statistics_columns`, bit-identical to
    calling :func:`frame_statistics` on each frame.  The engine itself keeps
    the columnar form; this helper serves callers that want per-frame
    dataclasses.
    """
    return list(frame_statistics_columns(frames, backend=backend))


def _iter_trajectory_batches(
    model: MobilityModel,
    steps: int,
    rng: np.random.Generator,
    include_current: bool = True,
) -> Iterator[np.ndarray]:
    """Yield the run's ``steps`` frames as bounded ``(k, n, d)`` batches.

    With ``include_current`` (the default) the first batch starts at the
    model's current positions (step 0); later batches continue from
    wherever the previous one left the model.  ``include_current=False``
    yields only the *next* ``steps`` frames — what a trajectory shard that
    resumes from a mid-run checkpoint needs, since its predecessor already
    produced the current frame.  Batch sizes are capped so a 10 000-step
    trajectory never buffers more than ``_TRAJECTORY_BATCH_ELEMENTS``
    floats at once — counting the per-frame ``(n, n)`` squared distance
    matrices the batched reduction stacks, not just the ``(n, d)``
    positions.
    """
    n, dimension = model.state.positions.shape
    per_frame = max(1, n * n, n * dimension)
    batch_size = max(1, _TRAJECTORY_BATCH_ELEMENTS // per_frame)
    produced = 0
    first = include_current
    while produced < steps:
        count = min(batch_size, steps - produced)
        if first:
            frames = model.trajectory(count, rng)
            first = False
        else:
            # Frame 0 of a trajectory is the current (already yielded or
            # checkpoint-owned) position array, so request one extra frame
            # and drop it.
            frames = model.trajectory(count + 1, rng)[1:]
        produced += frames.shape[0]
        yield frames


def reduce_frame_statistics(
    model: MobilityModel,
    steps: int,
    rng: np.random.Generator,
    include_current: bool = True,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> FrameStatisticsColumns:
    """Reduce the next ``steps`` frames of a live model to columnar statistics.

    The shared back half of :func:`simulate_frame_statistics` (placement
    and model binding happen in the caller): trajectory batches are
    produced and reduced through :func:`frame_statistics_columns`.  With
    ``include_current=False`` the current positions are *not* part of the
    output — the shard-execution mode, where the previous chunk already
    reported that frame (see :mod:`repro.simulation.sharding`).

    ``backend`` selects the array backend of the per-batch reduction; RNG
    draws and trajectory production stay on host NumPy (the declared RNG
    contract of :mod:`repro.backend`), each batch is shipped to the
    backend once.
    """
    array_backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    parts: List[FrameStatisticsColumns] = []
    for batch in _iter_trajectory_batches(
        model, steps, rng, include_current=include_current
    ):
        parts.append(frame_statistics_columns(batch, backend=array_backend))
    return FrameStatisticsColumns.concatenate(parts)


def _iter_frame_batches(frames: np.ndarray) -> Iterator[np.ndarray]:
    """Yield slices of a pre-generated ``(k, n, d)`` frame array.

    Batch sizes follow exactly the :func:`_iter_trajectory_batches` cap —
    the reduction stacks per-frame ``(n, n)`` distance matrices, so the
    memory bound must hold whether the frames come from a live model or
    arrive pre-generated (frame-handing shards) — and since
    :func:`frame_statistics_columns` is per-frame independent, the
    concatenated result is bit-identical for every batch split.
    """
    total = int(frames.shape[0])
    if total == 0:
        return
    n, dimension = frames.shape[1], frames.shape[2]
    per_frame = max(1, n * n, n * dimension)
    batch_size = max(1, _TRAJECTORY_BATCH_ELEMENTS // per_frame)
    for start in range(0, total, batch_size):
        yield frames[start : start + batch_size]


def reduce_frames_statistics(
    frames: np.ndarray,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> FrameStatisticsColumns:
    """Reduce pre-generated frames to columnar statistics.

    The frame-handing counterpart of :func:`reduce_frame_statistics`:
    the trajectory was already materialised (by the sharding parent, or
    a trace replay) and only the per-frame reduction remains.
    Bit-identical to reducing the same frames through a live model.
    """
    array_backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    parts: List[FrameStatisticsColumns] = []
    for batch in _iter_frame_batches(frames):
        parts.append(frame_statistics_columns(batch, backend=array_backend))
    return FrameStatisticsColumns.concatenate(parts)


def reduce_frames_fixed_range(
    frames: np.ndarray,
    transmitting_range: float,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> StepColumns:
    """Reduce pre-generated frames at a fixed range to step columns.

    The frame-handing counterpart of :func:`reduce_fixed_range`,
    batched and backend-threaded the same way.
    """
    array_backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    connected_parts: List[np.ndarray] = [np.empty(0, dtype=bool)]
    size_parts: List[np.ndarray] = [np.empty(0, dtype=np.int64)]
    for batch in _iter_frame_batches(frames):
        columns = frame_statistics_columns(batch, backend=array_backend)
        connected_parts.append(columns.connected_at(transmitting_range))
        size_parts.append(columns.largest_component_sizes_at(transmitting_range))
    return StepColumns(
        connected=np.concatenate(connected_parts),
        largest_component=np.concatenate(size_parts),
    )


def reduce_fixed_range(
    model: MobilityModel,
    steps: int,
    transmitting_range: float,
    rng: np.random.Generator,
    include_current: bool = True,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> StepColumns:
    """Reduce the next ``steps`` frames at a fixed range to step columns.

    The shared back half of :func:`simulate_iteration`, chunk-capable the
    same way as :func:`reduce_frame_statistics` and backend-threaded the
    same way.
    """
    array_backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    # Seeded with empties so a steps=0 call still concatenates cleanly.
    connected_parts: List[np.ndarray] = [np.empty(0, dtype=bool)]
    size_parts: List[np.ndarray] = [np.empty(0, dtype=np.int64)]
    for batch in _iter_trajectory_batches(
        model, steps, rng, include_current=include_current
    ):
        columns = frame_statistics_columns(batch, backend=array_backend)
        connected_parts.append(columns.connected_at(transmitting_range))
        size_parts.append(columns.largest_component_sizes_at(transmitting_range))
    return StepColumns(
        connected=np.concatenate(connected_parts),
        largest_component=np.concatenate(size_parts),
    )


def simulate_iteration(
    network: NetworkConfig,
    mobility: MobilitySpec,
    steps: int,
    transmitting_range: float,
    rng: np.random.Generator,
    iteration: int = 0,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> IterationResult:
    """Run one iteration of the paper's fixed-range simulator.

    A fresh placement is drawn, a fresh mobility model instance is bound to
    it, and for each of ``steps`` mobility steps (the initial placement
    counts as step 0, matching the paper's ``#steps = 1`` = stationary
    convention) the connectivity of the induced graph is recorded.  Each
    frame is reduced through its MST edges (:func:`frame_statistics`),
    which answers both "connected?" and "largest component size?" at the
    fixed range exactly — a graph is connected at ``r`` iff ``r`` reaches
    its bottleneck MST edge.  The records come back as columnar
    :class:`~repro.simulation.results.StepColumns` (two arrays per
    iteration) rather than per-step objects.
    """
    region = network.region
    placement = network.placement_strategy(network.node_count, region, rng)
    model = mobility.create()
    model.initialize(placement, region, rng)
    return IterationResult(
        iteration=iteration,
        node_count=network.node_count,
        transmitting_range=transmitting_range,
        records=reduce_fixed_range(
            model, steps, transmitting_range, rng, backend=backend
        ),
    )


def simulate_frame_statistics(
    network: NetworkConfig,
    mobility: MobilitySpec,
    steps: int,
    rng: np.random.Generator,
    backend: Optional[Union[str, ArrayBackend]] = None,
) -> FrameStatisticsColumns:
    """Run one mobility iteration and reduce every frame to its statistics.

    The returned :class:`~repro.simulation.results.FrameStatisticsColumns`
    holds one entry per step (step 0 is the initial placement) and behaves
    as a sequence of :class:`FrameStatistics`.  All range thresholds of the
    paper can then be derived with :mod:`repro.simulation.metrics` without
    re-simulating.  Frames are produced as batched ``(k, n, d)`` trajectory
    arrays, so models with a vectorized :meth:`~repro.mobility.base.
    MobilityModel.trajectory` (the stationary, waypoint and drunkard models
    — every model the paper uses) skip the per-step Python overhead.
    """
    region = network.region
    placement = network.placement_strategy(network.node_count, region, rng)
    model = mobility.create()
    model.initialize(placement, region, rng)
    return reduce_frame_statistics(model, steps, rng, backend=backend)


def exact_critical_range_of_placement(positions: Positions) -> float:
    """Thin wrapper over :func:`repro.connectivity.critical_range.critical_range`.

    Exposed here so simulation code has a single import point for the
    per-frame exact value (and so it can be monkeypatched in tests that
    exercise the engine's control flow without the geometry cost).
    """
    return critical_range(positions)
