"""The simulation engine.

Two modes are provided:

* :func:`simulate_iteration` — the paper's simulator: a fixed transmitting
  range is given, and the engine records at every mobility step whether the
  communication graph is connected and how large its largest component is.
* :func:`simulate_frame_statistics` — the trace-statistics mode: no range is
  fixed; instead every frame is reduced to its exact critical range (the
  longest MST edge) and its component-growth curve (largest component size
  as a non-decreasing step function of the range).  From those two pieces
  every threshold the paper studies can be recovered *for any range*
  without re-running mobility, which is how the Figure 2–9 benchmarks stay
  affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.connectivity.critical_range import critical_range, range_reaching
from repro.geometry.distance import squared_distance_matrix
from repro.graph.builder import build_communication_graph
from repro.graph.components import summarize_components
from repro.graph.union_find import UnionFind
from repro.simulation.config import MobilitySpec, NetworkConfig
from repro.simulation.results import IterationResult, StepRecord
from repro.types import Positions


@dataclass(frozen=True)
class FrameStatistics:
    """Range-independent connectivity summary of one placement (frame).

    Attributes:
        critical_range: the exact minimum range connecting the frame
            (longest MST edge; 0 for fewer than two nodes).
        component_curve: breakpoints ``(range, largest_component_size)`` of
            the non-decreasing step function "largest component size at
            range r"; between breakpoints the size is that of the previous
            breakpoint, and below the first breakpoint it is 1 (every node
            is its own component).
        node_count: number of nodes in the frame.
    """

    critical_range: float
    component_curve: Tuple[Tuple[float, int], ...]
    node_count: int

    def largest_component_size_at(self, transmitting_range: float) -> int:
        """Largest component size of this frame at the given range."""
        if self.node_count == 0:
            return 0
        size = 1
        for breakpoint_range, breakpoint_size in self.component_curve:
            if breakpoint_range <= transmitting_range:
                size = breakpoint_size
            else:
                break
        return size

    def is_connected_at(self, transmitting_range: float) -> bool:
        """``True`` if this frame's graph is connected at the given range."""
        return transmitting_range >= self.critical_range


def component_growth_curve(positions: Positions) -> Tuple[Tuple[float, int], ...]:
    """Breakpoints of "largest component size as a function of the range".

    Computed with a Kruskal-style sweep: pairwise distances are sorted and
    merged into a union-find structure; every time the size of the largest
    set grows, a breakpoint ``(distance, new_size)`` is emitted.  The final
    breakpoint is always ``(critical_range, n)``.
    """
    points = np.asarray(positions, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    n = points.shape[0]
    if n <= 1:
        return ()
    squared = squared_distance_matrix(points)
    rows, cols = np.triu_indices(n, k=1)
    lengths = squared[rows, cols]
    order = np.argsort(lengths, kind="stable")
    structure = UnionFind(n)
    breakpoints: List[Tuple[float, int]] = []
    largest = 1
    for index in order:
        u = int(rows[index])
        v = int(cols[index])
        if structure.union(u, v):
            size = structure.set_size(u)
            if size > largest:
                largest = size
                breakpoints.append((range_reaching(float(lengths[index])), size))
                if largest == n:
                    break
    return tuple(breakpoints)


def frame_statistics(positions: Positions) -> FrameStatistics:
    """Compute the :class:`FrameStatistics` of a single placement."""
    points = np.asarray(positions, dtype=float)
    if points.ndim == 1:
        points = points.reshape(-1, 1)
    curve = component_growth_curve(points)
    if curve:
        frame_critical = curve[-1][0]
    else:
        frame_critical = 0.0
    return FrameStatistics(
        critical_range=frame_critical,
        component_curve=curve,
        node_count=points.shape[0],
    )


def simulate_iteration(
    network: NetworkConfig,
    mobility: MobilitySpec,
    steps: int,
    transmitting_range: float,
    rng: np.random.Generator,
    iteration: int = 0,
) -> IterationResult:
    """Run one iteration of the paper's fixed-range simulator.

    A fresh placement is drawn, a fresh mobility model instance is bound to
    it, and for each of ``steps`` mobility steps (the initial placement
    counts as step 0, matching the paper's ``#steps = 1`` = stationary
    convention) the connectivity of the induced graph is recorded.
    """
    region = network.region
    placement = network.placement_strategy(network.node_count, region, rng)
    model = mobility.create()
    positions = model.initialize(placement, region, rng)

    records: List[StepRecord] = []
    for step in range(steps):
        if step > 0:
            positions = model.step(rng)
        graph = build_communication_graph(positions, transmitting_range)
        summary = summarize_components(graph)
        records.append(
            StepRecord(
                step=step,
                connected=summary.is_connected,
                largest_component_size=summary.largest_size,
            )
        )
    return IterationResult(
        iteration=iteration,
        node_count=network.node_count,
        transmitting_range=transmitting_range,
        records=tuple(records),
    )


def simulate_frame_statistics(
    network: NetworkConfig,
    mobility: MobilitySpec,
    steps: int,
    rng: np.random.Generator,
) -> List[FrameStatistics]:
    """Run one mobility iteration and reduce every frame to its statistics.

    The returned list has one :class:`FrameStatistics` per step (step 0 is
    the initial placement).  All range thresholds of the paper can then be
    derived with :mod:`repro.simulation.metrics` without re-simulating.
    """
    region = network.region
    placement = network.placement_strategy(network.node_count, region, rng)
    model = mobility.create()
    positions = model.initialize(placement, region, rng)

    statistics: List[FrameStatistics] = []
    for step in range(steps):
        if step > 0:
            positions = model.step(rng)
        statistics.append(frame_statistics(positions))
    return statistics


def exact_critical_range_of_placement(positions: Positions) -> float:
    """Thin wrapper over :func:`repro.connectivity.critical_range.critical_range`.

    Exposed here so simulation code has a single import point for the
    per-frame exact value (and so it can be monkeypatched in tests that
    exercise the engine's control flow without the geometry cost).
    """
    return critical_range(positions)
