"""Threshold estimation: the ``r_x`` and ``rl_x`` values of Figures 2–9.

The paper reports, for each system size and mobility model, the
transmitting ranges ``r100``, ``r90``, ``r10`` (connected during 100 %,
90 %, 10 % of the simulation time), ``r0`` (largest range with no connected
graphs) and ``rl90``, ``rl75``, ``rl50`` (average largest-component
fraction 0.9, 0.75, 0.5), each averaged over the simulation iterations.

:func:`estimate_thresholds` and :func:`estimate_component_thresholds`
compute exactly those averages from per-iteration frame statistics; the
companion ``*_from_statistics`` variants accept pre-computed statistics so
one expensive mobility run can feed every figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.exceptions import SearchError
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import FrameStatistics
from repro.simulation.results import pool_frame_statistics
from repro.simulation.metrics import (
    average_largest_fraction_at,
    range_for_component_fraction,
    range_for_connectivity_fraction,
    range_for_no_connectivity,
)
from repro.simulation.runner import collect_frame_statistics


@dataclass(frozen=True)
class MobilityThresholds:
    """The connectivity-time thresholds of one configuration.

    All values are averages over the simulation iterations, exactly as the
    paper reports them.
    """

    r100: float
    r90: float
    r10: float
    r0: float

    def ratios_to(self, reference: float) -> Dict[str, float]:
        """The ratios ``r_x / reference`` plotted in Figures 2 and 3."""
        if reference <= 0:
            raise SearchError(f"reference range must be positive, got {reference}")
        return {
            "r100": self.r100 / reference,
            "r90": self.r90 / reference,
            "r10": self.r10 / reference,
            "r0": self.r0 / reference,
        }


@dataclass(frozen=True)
class ComponentThresholds:
    """The largest-component thresholds ``rl90``, ``rl75``, ``rl50``."""

    rl90: float
    rl75: float
    rl50: float

    def ratios_to(self, reference: float) -> Dict[str, float]:
        """The ratios ``rl_x / reference`` plotted in Figure 6."""
        if reference <= 0:
            raise SearchError(f"reference range must be positive, got {reference}")
        return {
            "rl90": self.rl90 / reference,
            "rl75": self.rl75 / reference,
            "rl50": self.rl50 / reference,
        }


def _average(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def estimate_thresholds_from_statistics(
    per_iteration: Sequence[Sequence[FrameStatistics]],
    fractions: Sequence[float] = (1.0, 0.9, 0.1),
) -> MobilityThresholds:
    """Compute connectivity-time thresholds from pre-computed statistics.

    Each iteration yields its own ``r_f`` values; the estimates returned
    are their averages across iterations (the paper's methodology).
    """
    if not per_iteration:
        raise SearchError("at least one iteration of statistics is required")
    if len(fractions) != 3:
        raise SearchError("fractions must contain exactly three values (100/90/10)")
    r_high: List[float] = []
    r_mid: List[float] = []
    r_low: List[float] = []
    r_zero: List[float] = []
    for frames in per_iteration:
        r_high.append(range_for_connectivity_fraction(frames, fractions[0]))
        r_mid.append(range_for_connectivity_fraction(frames, fractions[1]))
        r_low.append(range_for_connectivity_fraction(frames, fractions[2]))
        r_zero.append(range_for_no_connectivity(frames))
    return MobilityThresholds(
        r100=_average(r_high),
        r90=_average(r_mid),
        r10=_average(r_low),
        r0=_average(r_zero),
    )


def estimate_thresholds(config: SimulationConfig) -> MobilityThresholds:
    """Run the configuration and compute ``r100``, ``r90``, ``r10``, ``r0``."""
    statistics = collect_frame_statistics(config)
    return estimate_thresholds_from_statistics(statistics)


def estimate_component_thresholds_from_statistics(
    per_iteration: Sequence[Sequence[FrameStatistics]],
    fractions: Sequence[float] = (0.9, 0.75, 0.5),
) -> ComponentThresholds:
    """Compute ``rl90``, ``rl75``, ``rl50`` from pre-computed statistics."""
    if not per_iteration:
        raise SearchError("at least one iteration of statistics is required")
    if len(fractions) != 3:
        raise SearchError("fractions must contain exactly three values (90/75/50)")
    rl_values: List[List[float]] = [[], [], []]
    for frames in per_iteration:
        for slot, fraction in enumerate(fractions):
            rl_values[slot].append(range_for_component_fraction(frames, fraction))
    return ComponentThresholds(
        rl90=_average(rl_values[0]),
        rl75=_average(rl_values[1]),
        rl50=_average(rl_values[2]),
    )


def estimate_component_thresholds(config: SimulationConfig) -> ComponentThresholds:
    """Run the configuration and compute ``rl90``, ``rl75``, ``rl50``."""
    statistics = collect_frame_statistics(config)
    return estimate_component_thresholds_from_statistics(statistics)


def average_component_fraction_at_range(
    per_iteration: Sequence[Sequence[FrameStatistics]], transmitting_range: float
) -> float:
    """Average largest-component fraction at a range, across all iterations.

    Pools every frame of every iteration, matching how Figures 4 and 5
    report "the average size of the largest connected component" at the
    ranges ``r90``, ``r10`` and ``r0``.
    """
    return average_largest_fraction_at(
        pool_frame_statistics(per_iteration), transmitting_range
    )


def r100_for_parameter(
    make_config,
    parameter_values: Sequence[float],
    reference_range: Optional[float] = None,
):
    """Helper for Figures 7–9: ``r100`` (optionally over a reference) as one
    parameter varies.

    Args:
        make_config: callable mapping a parameter value to a
            :class:`SimulationConfig`.
        parameter_values: the values to sweep.
        reference_range: if given, the returned values are ratios
            ``r100 / reference_range``; otherwise raw ``r100`` values.

    Returns:
        A list of ``(parameter_value, r100_or_ratio)`` pairs.
    """
    results = []
    for value in parameter_values:
        config = make_config(value)
        thresholds = estimate_thresholds(config)
        r100 = thresholds.r100
        if reference_range is not None:
            if reference_range <= 0:
                raise SearchError(
                    f"reference range must be positive, got {reference_range}"
                )
            r100 = r100 / reference_range
        results.append((value, r100))
    return results
