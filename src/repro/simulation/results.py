"""Result containers of the fixed-range simulator.

These mirror the outputs the paper's simulator reports (Section 4.1): the
percentage of connected graphs, the average size of the largest connected
component *over the runs that yield a disconnected graph*, and the minimum
size of the largest connected component — each with reference to a single
iteration and to all iterations together.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class StepRecord:
    """Connectivity facts observed at one mobility step."""

    step: int
    connected: bool
    largest_component_size: int


@dataclass(frozen=True)
class IterationResult:
    """All step records of one simulation iteration at a fixed range."""

    iteration: int
    node_count: int
    transmitting_range: float
    records: Sequence[StepRecord]

    # ------------------------------------------------------------------ #
    @property
    def step_count(self) -> int:
        """Number of mobility steps observed."""
        return len(self.records)

    @property
    def connected_fraction(self) -> float:
        """Fraction of steps at which the graph was connected."""
        if not self.records:
            return 0.0
        return sum(1 for record in self.records if record.connected) / len(self.records)

    @property
    def largest_component_sizes(self) -> List[int]:
        """Largest component size at each step."""
        return [record.largest_component_size for record in self.records]

    @property
    def average_largest_component_when_disconnected(self) -> Optional[float]:
        """Mean largest-component size over the *disconnected* steps.

        ``None`` when the network stayed connected for the whole iteration
        (the paper's simulator reports the average only over runs that
        yield a disconnected graph).
        """
        sizes = [
            record.largest_component_size
            for record in self.records
            if not record.connected
        ]
        if not sizes:
            return None
        return sum(sizes) / len(sizes)

    @property
    def minimum_largest_component(self) -> int:
        """Smallest largest-component size seen during the iteration."""
        if not self.records:
            return 0
        return min(record.largest_component_size for record in self.records)

    @property
    def average_largest_component(self) -> float:
        """Mean largest-component size over all steps."""
        if not self.records:
            return 0.0
        return sum(record.largest_component_size for record in self.records) / len(
            self.records
        )


@dataclass(frozen=True)
class MobileRunResult:
    """Aggregate of all iterations of a fixed-range simulation."""

    transmitting_range: float
    node_count: int
    iterations: Sequence[IterationResult]

    # ------------------------------------------------------------------ #
    @property
    def iteration_count(self) -> int:
        """Number of iterations that were run."""
        return len(self.iterations)

    @property
    def connected_fraction(self) -> float:
        """Fraction of all observed steps at which the graph was connected."""
        total_steps = sum(result.step_count for result in self.iterations)
        if total_steps == 0:
            return 0.0
        connected = sum(
            sum(1 for record in result.records if record.connected)
            for result in self.iterations
        )
        return connected / total_steps

    @property
    def per_iteration_connected_fraction(self) -> List[float]:
        """The connected fraction of each iteration, in order."""
        return [result.connected_fraction for result in self.iterations]

    @property
    def average_largest_component_when_disconnected(self) -> Optional[float]:
        """Mean largest-component size over every disconnected step.

        ``None`` if no step in any iteration was disconnected.
        """
        sizes = [
            record.largest_component_size
            for result in self.iterations
            for record in result.records
            if not record.connected
        ]
        if not sizes:
            return None
        return sum(sizes) / len(sizes)

    @property
    def average_largest_component_fraction(self) -> float:
        """Mean largest-component size over all steps, as a fraction of ``n``."""
        sizes = [
            record.largest_component_size
            for result in self.iterations
            for record in result.records
        ]
        if not sizes or self.node_count == 0:
            return 0.0
        return sum(sizes) / len(sizes) / self.node_count

    @property
    def minimum_largest_component(self) -> int:
        """Smallest largest-component size seen over all iterations."""
        if not self.iterations:
            return 0
        return min(result.minimum_largest_component for result in self.iterations)

    @property
    def always_connected(self) -> bool:
        """``True`` if every step of every iteration was connected."""
        return all(
            record.connected
            for result in self.iterations
            for record in result.records
        )

    @property
    def never_connected(self) -> bool:
        """``True`` if no step of any iteration was connected."""
        return all(
            not record.connected
            for result in self.iterations
            for record in result.records
        )
