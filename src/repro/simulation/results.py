"""Result containers of the fixed-range simulator.

These mirror the outputs the paper's simulator reports (Section 4.1): the
percentage of connected graphs, the average size of the largest connected
component *over the runs that yield a disconnected graph*, and the minimum
size of the largest connected component — each with reference to a single
iteration and to all iterations together.

Columnar layout
---------------
At paper scale an iteration observes 10 000 mobility steps, so per-step
Python objects dominate both memory and the pickling cost of shipping
results between worker processes.  The containers here are therefore
*columnar* (struct-of-arrays):

* :class:`StepColumns` — one ``connected: bool[steps]`` and one
  ``largest_component: int64[steps]`` array per iteration; step ``i`` is
  row ``i``.
* :class:`FrameStatisticsColumns` — per-frame bottleneck (critical) ranges
  as ``float64[frames]`` plus the component-growth curves flattened into
  ``curve_ranges``/``curve_sizes`` arrays indexed by ``curve_offsets``
  (frame ``i`` owns the slice ``curve_offsets[i]:curve_offsets[i + 1]``).

Both behave as immutable sequences of the original per-step objects
(:class:`StepRecord` / :class:`FrameStatistics`), so existing callers — and
the derived properties such as :attr:`IterationResult.connected_fraction` —
keep working unchanged; they serialize as a handful of NumPy arrays instead
of thousands of pickled dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class StepRecord:
    """Connectivity facts observed at one mobility step."""

    step: int
    connected: bool
    largest_component_size: int


@dataclass(frozen=True, eq=False)
class TrajectoryFrames:
    """A ``(frames, nodes, dimension)`` batch of mobility positions.

    The parent→worker payload of frame-handing trajectory sharding (see
    :mod:`repro.simulation.sharding`): the parent generates each chunk's
    frames once and ships them — through the shared-memory transport for
    large chunks — to the worker that runs the expensive per-frame
    reduction, instead of having the worker regenerate the mobility from
    a checkpoint.
    """

    frames: np.ndarray

    def __len__(self) -> int:
        return int(self.frames.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrajectoryFrames):
            return NotImplemented
        return bool(np.array_equal(self.frames, other.frames))


def compact_ints(values: np.ndarray) -> np.ndarray:
    """Smallest unsigned copy of a non-negative int array (for pickling).

    Arrays containing negatives (possible in hand-built containers) are
    passed through unconverted — an unsigned cast would silently wrap
    them.
    """
    if values.size == 0:
        return values.astype(np.uint8)
    if values.min() < 0:
        return values
    return values.astype(np.min_scalar_type(int(values.max())))


def _rebuild_step_columns(count: int, packed: np.ndarray, sizes: np.ndarray):
    return StepColumns(
        connected=np.unpackbits(packed, count=count).astype(bool),
        largest_component=sizes,
    )


def _rebuild_frame_columns(node_count, criticals, offsets, ranges, sizes):
    return FrameStatisticsColumns(
        node_count=node_count,
        critical_ranges=criticals,
        curve_offsets=offsets,
        curve_ranges=ranges,
        curve_sizes=sizes,
    )


@dataclass(frozen=True)
class FrameStatistics:
    """Range-independent connectivity summary of one placement (frame).

    Attributes:
        critical_range: the exact minimum range connecting the frame
            (longest MST edge; 0 for fewer than two nodes).
        component_curve: breakpoints ``(range, largest_component_size)`` of
            the non-decreasing step function "largest component size at
            range r"; between breakpoints the size is that of the previous
            breakpoint, and below the first breakpoint it is 1 (every node
            is its own component).
        node_count: number of nodes in the frame.
    """

    critical_range: float
    component_curve: Tuple[Tuple[float, int], ...]
    node_count: int

    def largest_component_size_at(self, transmitting_range: float) -> int:
        """Largest component size of this frame at the given range."""
        if self.node_count == 0:
            return 0
        size = 1
        for breakpoint_range, breakpoint_size in self.component_curve:
            if breakpoint_range <= transmitting_range:
                size = breakpoint_size
            else:
                break
        return size

    def is_connected_at(self, transmitting_range: float) -> bool:
        """``True`` if this frame's graph is connected at the given range."""
        return transmitting_range >= self.critical_range


class StepColumns(Sequence[StepRecord]):
    """Columnar storage of one iteration's per-step records.

    Row ``i`` is mobility step ``i``; indexing materialises a
    :class:`StepRecord` view on demand.  Equality holds against any
    sequence of equivalent records, columnar or not.
    """

    __slots__ = ("connected", "largest_component")

    def __init__(self, connected: np.ndarray, largest_component: np.ndarray) -> None:
        self.connected = np.asarray(connected, dtype=bool)
        self.largest_component = np.asarray(largest_component, dtype=np.int64)
        if self.connected.shape != self.largest_component.shape:
            raise ValueError(
                "connected and largest_component must have the same length, "
                f"got {self.connected.shape} and {self.largest_component.shape}"
            )

    @classmethod
    def from_records(cls, records: Iterable[StepRecord]) -> "StepColumns":
        """Convert an object-list representation (steps must be 0, 1, …)."""
        materialised = list(records)
        return cls(
            connected=np.fromiter(
                (record.connected for record in materialised),
                dtype=bool,
                count=len(materialised),
            ),
            largest_component=np.fromiter(
                (record.largest_component_size for record in materialised),
                dtype=np.int64,
                count=len(materialised),
            ),
        )

    @classmethod
    def concatenate(cls, parts: Sequence["StepColumns"]) -> "StepColumns":
        """Stitch several containers (e.g. the shards of one iteration).

        Row numbering restarts from 0, exactly as if the parts' arrays had
        been produced by one contiguous run — which is what makes a
        sharded iteration's container bit-identical to the serial one.
        """
        if not parts:
            return cls(np.empty(0, dtype=bool), np.empty(0, dtype=np.int64))
        return cls(
            connected=np.concatenate([part.connected for part in parts]),
            largest_component=np.concatenate(
                [part.largest_component for part in parts]
            ),
        )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.connected.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            # A tuple of records, not a re-based StepColumns: the records
            # keep their original step numbers, exactly like slicing a
            # tuple of StepRecord objects would.
            return tuple(
                self[position] for position in range(*index.indices(len(self)))
            )
        position = int(index)
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError(position)
        return StepRecord(
            step=position,
            connected=bool(self.connected[position]),
            largest_component_size=int(self.largest_component[position]),
        )

    def __iter__(self) -> Iterator[StepRecord]:
        for step, (connected, size) in enumerate(
            zip(self.connected.tolist(), self.largest_component.tolist())
        ):
            yield StepRecord(step=step, connected=connected, largest_component_size=size)

    def __eq__(self, other) -> bool:
        if isinstance(other, StepColumns):
            return bool(
                np.array_equal(self.connected, other.connected)
                and np.array_equal(self.largest_component, other.largest_component)
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __reduce__(self):
        """Compact transport encoding: one bit per step plus minimal-width
        component sizes, so a 10 000-step iteration pickles in ~11 KB where
        the object-list form needs ~220 KB."""
        return (
            _rebuild_step_columns,
            (
                int(self.connected.shape[0]),
                np.packbits(self.connected),
                compact_ints(self.largest_component),
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StepColumns(steps={len(self)})"


class FrameStatisticsColumns(Sequence[FrameStatistics]):
    """Columnar storage of the per-frame statistics of one iteration.

    Attributes:
        node_count: nodes per frame (constant across an iteration).
        critical_ranges: ``float64[frames]`` exact bottleneck ranges.
        curve_offsets: ``int64[frames + 1]``; frame ``i`` owns curve rows
            ``curve_offsets[i]:curve_offsets[i + 1]``.
        curve_ranges / curve_sizes: the flattened component-growth
            breakpoints of all frames.
    """

    __slots__ = ("node_count", "critical_ranges", "curve_offsets",
                 "curve_ranges", "curve_sizes")

    def __init__(
        self,
        node_count: int,
        critical_ranges: np.ndarray,
        curve_offsets: np.ndarray,
        curve_ranges: np.ndarray,
        curve_sizes: np.ndarray,
    ) -> None:
        self.node_count = int(node_count)
        self.critical_ranges = np.asarray(critical_ranges, dtype=float)
        self.curve_offsets = np.asarray(curve_offsets, dtype=np.int64)
        self.curve_ranges = np.asarray(curve_ranges, dtype=float)
        self.curve_sizes = np.asarray(curve_sizes, dtype=np.int64)
        if self.curve_offsets.shape[0] != self.critical_ranges.shape[0] + 1:
            raise ValueError(
                "curve_offsets must have one more entry than critical_ranges"
            )

    @classmethod
    def from_frames(
        cls, frames: Iterable[FrameStatistics]
    ) -> "FrameStatisticsColumns":
        """Convert an object-list representation (one shared node count)."""
        materialised = list(frames)
        node_count = materialised[0].node_count if materialised else 0
        offsets = [0]
        ranges: List[float] = []
        sizes: List[int] = []
        for frame in materialised:
            if frame.node_count != node_count:
                raise ValueError(
                    "FrameStatisticsColumns requires a constant node count, "
                    f"got {frame.node_count} after {node_count}"
                )
            for breakpoint_range, breakpoint_size in frame.component_curve:
                ranges.append(breakpoint_range)
                sizes.append(breakpoint_size)
            offsets.append(len(ranges))
        return cls(
            node_count=node_count,
            critical_ranges=np.array(
                [frame.critical_range for frame in materialised], dtype=float
            ),
            curve_offsets=np.array(offsets, dtype=np.int64),
            curve_ranges=np.array(ranges, dtype=float),
            curve_sizes=np.array(sizes, dtype=np.int64),
        )

    @classmethod
    def concatenate(
        cls, parts: Sequence["FrameStatisticsColumns"]
    ) -> "FrameStatisticsColumns":
        """Pool several containers (e.g. all iterations of a run) into one."""
        if not parts:
            return cls(0, np.empty(0), np.zeros(1, dtype=np.int64),
                       np.empty(0), np.empty(0, dtype=np.int64))
        node_counts = {part.node_count for part in parts}
        if len(node_counts) > 1:
            raise ValueError(
                f"cannot concatenate containers with node counts {sorted(node_counts)}"
            )
        offsets = [parts[0].curve_offsets]
        for part in parts[1:]:
            offsets.append(part.curve_offsets[1:] + (offsets[-1][-1] - part.curve_offsets[0]))
        return cls(
            node_count=parts[0].node_count,
            critical_ranges=np.concatenate([p.critical_ranges for p in parts]),
            curve_offsets=np.concatenate(offsets),
            curve_ranges=np.concatenate([p.curve_ranges for p in parts]),
            curve_sizes=np.concatenate([p.curve_sizes for p in parts]),
        )

    # ------------------------------------------------------------------ #
    # Vectorized per-range reductions (the threshold-extraction hot path)
    # ------------------------------------------------------------------ #
    def connected_at(self, transmitting_range: float) -> np.ndarray:
        """Boolean array: is each frame connected at the given range?"""
        return transmitting_range >= self.critical_ranges

    def largest_component_sizes_at(self, transmitting_range: float) -> np.ndarray:
        """Largest component size of every frame at the given range.

        Vectorized evaluation of the per-frame step functions: count the
        breakpoints at or below the range in every frame's curve slice
        (``np.add.reduceat`` over the flattened columns) and read the size
        of the last one, defaulting to 1 (each node is its own component).
        """
        frame_count = self.critical_ranges.shape[0]
        if frame_count == 0:
            return np.empty(0, dtype=np.int64)
        if self.node_count <= 1 or self.curve_ranges.shape[0] == 0:
            return np.full(frame_count, min(self.node_count, 1), dtype=np.int64)
        starts = self.curve_offsets[:-1]
        empty = starts == self.curve_offsets[1:]
        if empty.any():
            # np.add.reduceat misreads zero-length slices; fall back.
            return np.fromiter(
                (frame.largest_component_size_at(transmitting_range) for frame in self),
                dtype=np.int64,
                count=frame_count,
            )
        below = (self.curve_ranges <= transmitting_range).astype(np.int64)
        counts = np.add.reduceat(below, starts)
        last_below = np.maximum(starts + counts - 1, 0)
        return np.where(counts > 0, self.curve_sizes[last_below], 1)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.critical_ranges.shape[0]

    def _frame(self, position: int) -> FrameStatistics:
        start, stop = self.curve_offsets[position], self.curve_offsets[position + 1]
        curve = tuple(
            (float(r), int(s))
            for r, s in zip(self.curve_ranges[start:stop], self.curve_sizes[start:stop])
        )
        return FrameStatistics(
            critical_range=float(self.critical_ranges[position]),
            component_curve=curve,
            node_count=self.node_count,
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._frame(i) for i in range(*index.indices(len(self)))]
        position = int(index)
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError(position)
        return self._frame(position)

    def __iter__(self) -> Iterator[FrameStatistics]:
        for position in range(len(self)):
            yield self._frame(position)

    def __eq__(self, other) -> bool:
        if isinstance(other, FrameStatisticsColumns):
            return bool(
                self.node_count == other.node_count
                and np.array_equal(self.critical_ranges, other.critical_ranges)
                and np.array_equal(self.curve_offsets, other.curve_offsets)
                and np.array_equal(self.curve_ranges, other.curve_ranges)
                and np.array_equal(self.curve_sizes, other.curve_sizes)
            )
        if isinstance(other, Sequence):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __reduce__(self):
        """Compact transport encoding: the breakpoint ranges stay float64
        (thresholds must remain bit-identical across process boundaries),
        but sizes and offsets travel at their minimal integer width."""
        return (
            _rebuild_frame_columns,
            (
                self.node_count,
                self.critical_ranges,
                compact_ints(self.curve_offsets),
                self.curve_ranges,
                compact_ints(self.curve_sizes),
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FrameStatisticsColumns(frames={len(self)}, "
            f"node_count={self.node_count})"
        )


def pool_frame_statistics(
    per_iteration: Sequence[Sequence[FrameStatistics]],
) -> Sequence[FrameStatistics]:
    """Pool every frame of every iteration into one sequence.

    Keeps the columnar representation (one concatenated
    :class:`FrameStatisticsColumns`) when every iteration is columnar, so
    the pooled metrics stay vectorized; otherwise falls back to a flat
    list.
    """
    parts = list(per_iteration)
    if parts and all(isinstance(part, FrameStatisticsColumns) for part in parts):
        return FrameStatisticsColumns.concatenate(parts)
    return [frame for frames in parts for frame in frames]


def _step_columns(records: Sequence[StepRecord]) -> StepColumns:
    """View any record sequence through the columnar interface."""
    if isinstance(records, StepColumns):
        return records
    return StepColumns.from_records(records)


@dataclass(frozen=True)
class IterationResult:
    """All step records of one simulation iteration at a fixed range.

    ``records`` is normally a :class:`StepColumns` (columnar, cheap to
    pickle); hand-built sequences of :class:`StepRecord` are accepted too
    and converted on demand by the derived properties.
    """

    iteration: int
    node_count: int
    transmitting_range: float
    records: Sequence[StepRecord]

    # ------------------------------------------------------------------ #
    @property
    def step_count(self) -> int:
        """Number of mobility steps observed."""
        return len(self.records)

    @property
    def connected_fraction(self) -> float:
        """Fraction of steps at which the graph was connected."""
        columns = _step_columns(self.records)
        if not len(columns):
            return 0.0
        return float(columns.connected.mean())

    @property
    def largest_component_sizes(self) -> List[int]:
        """Largest component size at each step."""
        return _step_columns(self.records).largest_component.tolist()

    @property
    def average_largest_component_when_disconnected(self) -> Optional[float]:
        """Mean largest-component size over the *disconnected* steps.

        ``None`` when the network stayed connected for the whole iteration
        (the paper's simulator reports the average only over runs that
        yield a disconnected graph).
        """
        columns = _step_columns(self.records)
        disconnected = ~columns.connected
        if not disconnected.any():
            return None
        return float(columns.largest_component[disconnected].mean())

    @property
    def minimum_largest_component(self) -> int:
        """Smallest largest-component size seen during the iteration."""
        columns = _step_columns(self.records)
        if not len(columns):
            return 0
        return int(columns.largest_component.min())

    @property
    def average_largest_component(self) -> float:
        """Mean largest-component size over all steps."""
        columns = _step_columns(self.records)
        if not len(columns):
            return 0.0
        return float(columns.largest_component.mean())


@dataclass(frozen=True)
class MobileRunResult:
    """Aggregate of all iterations of a fixed-range simulation."""

    transmitting_range: float
    node_count: int
    iterations: Sequence[IterationResult]

    # ------------------------------------------------------------------ #
    def _pooled(self) -> StepColumns:
        """All iterations' step columns, concatenated in order.

        Cached after the first access (the dataclass is frozen, so the
        cache goes through ``object.__setattr__``): several properties pool
        the same 50 x 10 000-step arrays, and one concatenation is enough.
        """
        cached = getattr(self, "_pooled_cache", None)
        if cached is not None:
            return cached
        columns = [_step_columns(result.records) for result in self.iterations]
        if not columns:
            pooled = StepColumns(
                np.empty(0, dtype=bool), np.empty(0, dtype=np.int64)
            )
        else:
            pooled = StepColumns(
                np.concatenate([c.connected for c in columns]),
                np.concatenate([c.largest_component for c in columns]),
            )
        object.__setattr__(self, "_pooled_cache", pooled)
        return pooled

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_pooled_cache", None)
        return state

    @property
    def iteration_count(self) -> int:
        """Number of iterations that were run."""
        return len(self.iterations)

    @property
    def connected_fraction(self) -> float:
        """Fraction of all observed steps at which the graph was connected."""
        pooled = self._pooled()
        if not len(pooled):
            return 0.0
        return float(pooled.connected.mean())

    @property
    def per_iteration_connected_fraction(self) -> List[float]:
        """The connected fraction of each iteration, in order."""
        return [result.connected_fraction for result in self.iterations]

    @property
    def average_largest_component_when_disconnected(self) -> Optional[float]:
        """Mean largest-component size over every disconnected step.

        ``None`` if no step in any iteration was disconnected.
        """
        pooled = self._pooled()
        disconnected = ~pooled.connected
        if not disconnected.any():
            return None
        return float(pooled.largest_component[disconnected].mean())

    @property
    def average_largest_component_fraction(self) -> float:
        """Mean largest-component size over all steps, as a fraction of ``n``."""
        pooled = self._pooled()
        if not len(pooled) or self.node_count == 0:
            return 0.0
        return float(pooled.largest_component.mean()) / self.node_count

    @property
    def minimum_largest_component(self) -> int:
        """Smallest largest-component size seen over all iterations."""
        pooled = self._pooled()
        if not len(pooled):
            return 0
        return int(pooled.largest_component.min())

    @property
    def always_connected(self) -> bool:
        """``True`` if every step of every iteration was connected."""
        return bool(self._pooled().connected.all())

    @property
    def never_connected(self) -> bool:
        """``True`` if no step of any iteration was connected."""
        return not bool(self._pooled().connected.any())
