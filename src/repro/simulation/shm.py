"""Zero-copy shared-memory transport for the columnar result containers.

The PR 2 pickle transport made worker→parent hand-offs *compact* (packed
bits, minimal integer widths), but the float64 breakpoint columns — the
bulk of a paper-scale :class:`~repro.simulation.results.
FrameStatisticsColumns` — still transit the executor pipe byte by byte
and are copied twice more by pickling.  The transport here removes that
tax entirely:

* the worker writes every array of a container once into one
  :mod:`multiprocessing.shared_memory` segment and returns a tiny
  picklable :class:`SharedColumnsHandle` (segment name + array layout);
* the parent *adopts* the handle: the container it gets back holds NumPy
  views straight into the mapped segment — no unpickling, no copy, and
  bit-identical to what the pickle transport would have delivered.

Lifecycle
---------
Segments are refcounted per adopted view: every adopted array registers a
finalizer against the segment, and the last one to die closes the mapping
and unlinks the file.  An :mod:`atexit` sweep unlinks anything still
adopted at interpreter shutdown.  Kill-safety comes from
:mod:`multiprocessing.resource_tracker`: creating workers leave their
segments registered with the process tree's shared tracker, the parent
only unregisters a name once it has actually been unlinked — so a worker
(or the parent itself) killed mid-transfer leaves nothing behind in
``/dev/shm`` once the tree is gone.

Fallback
--------
:func:`share_columns` degrades gracefully: payloads below
:data:`SHM_MIN_BYTES` (where pickling is cheaper than a segment round
trip), hosts without usable shared memory, and the explicit ``"pickle"``
transport all return the container itself, which then travels over the
PR 2 pickle transport unchanged.  Results are bit-identical either way;
only the hand-off cost differs.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.exceptions import ConfigurationError
from repro.simulation.results import (
    FrameStatisticsColumns,
    StepColumns,
    TrajectoryFrames,
)

__all__ = [
    "SHM_MIN_BYTES",
    "TRANSPORTS",
    "SharedColumnsHandle",
    "adopt_result",
    "discard_shared",
    "ensure_shared_memory_tracker",
    "share_columns",
    "shm_available",
    "validate_transport",
]


def ensure_shared_memory_tracker() -> None:
    """Start the resource tracker in this process before forking workers.

    The tracker is spawned lazily on first use; if the *first* use happens
    inside a forked pool worker, every worker spins up a private tracker
    that outlives its segments' unlinks and prints spurious leak warnings
    at pool shutdown.  Calling this in the pool-owning process makes all
    descendants inherit one shared tracker — the one that also provides
    the kill-safety net for in-flight segments.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:
        pass

#: Below this payload size the pickle transport wins (segment creation and
#: mapping cost a couple of syscalls per hand-off); ``"auto"`` only
#: promotes containers at least this large to shared memory.
SHM_MIN_BYTES = 1 << 18

#: The recognised transport names: ``auto`` (shared memory for large
#: payloads, pickle otherwise), ``pickle`` (always the PR 2 compact pickle
#: transport) and ``shm`` (shared memory whenever it is available at all).
TRANSPORTS = ("auto", "pickle", "shm")

_shared_memory_module = None
_shm_probe: Optional[bool] = None


def _shared_memory():
    global _shared_memory_module
    if _shared_memory_module is None:
        from multiprocessing import shared_memory

        _shared_memory_module = shared_memory
    return _shared_memory_module


def shm_available() -> bool:
    """``True`` when POSIX shared memory actually works on this host.

    Probes once by creating (and immediately unlinking) a tiny segment —
    import success alone does not guarantee a usable ``/dev/shm``.
    """
    global _shm_probe
    if _shm_probe is None:
        try:
            segment = _shared_memory().SharedMemory(create=True, size=16)
            segment.close()
            segment.unlink()  # also unregisters from the resource tracker
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


def validate_transport(transport: str) -> str:
    """Validate and return a transport name (see :data:`TRANSPORTS`)."""
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    return transport


# --------------------------------------------------------------------------- #
# Parent-side segment registry (refcounted adoption)
# --------------------------------------------------------------------------- #
class _AdoptedSegment:
    """One mapped segment plus the number of live arrays viewing it.

    ``owned`` records who disposes of the backing file: an *owning*
    adoption (the worker→parent result hand-off) unlinks the segment when
    the last view dies; a *borrowed* adoption (the parent→worker frame
    hand-off) only closes its mapping — the creating process keeps the
    file alive for possible re-adoption (a retried task) and unlinks it
    itself via :func:`discard_shared`.
    """

    __slots__ = ("segment", "references", "owned")

    def __init__(self, segment: Any, owned: bool = True) -> None:
        self.segment = segment
        self.references = 0
        self.owned = owned


_registry_lock = threading.Lock()
_adopted: Dict[str, _AdoptedSegment] = {}
#: Segments already unlinked whose mapping could not be closed yet (an
#: array finalizer fires *while* its buffer export is still alive, so the
#: close is retried on later transport activity and at exit).
_zombies: List[Any] = []


def _release_view(name: str) -> None:
    """Finalizer of one adopted array: last view out releases the segment.

    Owning adoptions unlink the backing file; borrowed adoptions close
    their mapping only (the creator owns the file's lifetime).
    """
    with _registry_lock:
        entry = _adopted.get(name)
        if entry is None:
            return
        entry.references -= 1
        if entry.references > 0:
            return
        del _adopted[name]
    if entry.owned:
        _destroy_segment(entry.segment)
    elif not _try_close(entry.segment):
        with _registry_lock:
            _zombies.append(entry.segment)
    _sweep_zombies()


def _try_close(segment: Any) -> bool:
    try:
        segment.close()
        return True
    except BufferError:
        return False
    except Exception:
        return True


def _destroy_segment(segment: Any) -> None:
    """Unlink a segment and release its mapping (possibly deferred).

    ``unlink`` removes the ``/dev/shm`` file and drops the name from the
    resource tracker (the tracker registration is the kill-safety net, so
    it must outlive the file, never the other way round).  Closing the
    mapping can fail transiently with :class:`BufferError` when this runs
    inside a NumPy array finalizer — the segment is then parked and the
    close retried later.
    """
    try:
        segment.unlink()  # also unregisters from the resource tracker
    except FileNotFoundError:
        pass
    except Exception:
        pass
    if not _try_close(segment):
        with _registry_lock:
            _zombies.append(segment)


def _sweep_zombies() -> None:
    with _registry_lock:
        pending = list(_zombies)
        _zombies.clear()
    survivors = [segment for segment in pending if not _try_close(segment)]
    if survivors:
        with _registry_lock:
            _zombies.extend(survivors)


@atexit.register
def _sweep_adopted() -> None:
    """Unlink whatever is still adopted when the interpreter exits.

    Finalizers of arrays alive at shutdown may never run; the mappings die
    with the process, but the ``/dev/shm`` files would not.  (A process
    killed too hard for atexit is covered by the resource tracker
    instead.)  Mappings that still cannot close have their ``close``
    no-opped so interpreter teardown does not print spurious
    ``BufferError`` noise from ``SharedMemory.__del__``.
    """
    with _registry_lock:
        entries = list(_adopted.values())
        _adopted.clear()
    for entry in entries:
        if entry.owned:
            _destroy_segment(entry.segment)
        else:
            _try_close(entry.segment)  # the creator owns the file
    _sweep_zombies()
    with _registry_lock:
        remaining = list(_zombies)
    for segment in remaining:
        segment.close = lambda: None  # type: ignore[method-assign]


def _adopt_array(
    name: str, segment: Any, dtype: str, shape: Tuple[int, ...], offset: int
) -> np.ndarray:
    """A view of one array inside an adopted segment, finalizer attached."""
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    base = np.frombuffer(
        segment.buf, dtype=np.dtype(dtype), count=count, offset=offset
    )
    with _registry_lock:
        entry = _adopted.get(name)
        if entry is not None:
            entry.references += 1
    weakref.finalize(base, _release_view, name)
    return base.reshape(shape)


# --------------------------------------------------------------------------- #
# The handle
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SharedColumnsHandle:
    """Picklable descriptor of a columnar container parked in shared memory.

    Attributes:
        kind: ``"step"`` or ``"frame"`` — which container to rebuild.
        segment_name: the shared-memory segment holding every array.
        arrays: per-array layout ``(field, dtype, shape, byte offset)``.
        scalars: the container's non-array fields (e.g. ``node_count``).
        nbytes: total payload bytes parked in the segment (for reporting).

    Created worker-side by :func:`share_columns`; turned back into a live
    container parent-side by :meth:`adopt` (or :func:`adopt_result`).
    """

    kind: str
    segment_name: str
    arrays: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    scalars: Dict[str, Any]
    nbytes: int

    def adopt(self, owned: bool = True) -> Any:
        """Map the segment and rebuild the container over zero-copy views.

        May be called once per handle per process.  With ``owned`` (the
        default, the worker→parent result hand-off) the adopting process
        takes over the segment's lifetime: the views keep it alive and
        the last one to die unlinks it.  With ``owned=False`` (the
        parent→worker frame hand-off) the adoption *borrows* the
        segment: the last dying view only closes this process's mapping,
        leaving the file for the creator — which can re-ship the same
        handle to a retried task and eventually disposes of it with
        :func:`discard_shared`.
        """
        _sweep_zombies()
        segment = _shared_memory().SharedMemory(name=self.segment_name)
        telemetry.metrics.counter("shm.bytes_adopted").add(self.nbytes)
        with _registry_lock:
            if self.segment_name in _adopted:
                raise ConfigurationError(
                    f"shared segment {self.segment_name} was already adopted"
                )
            _adopted[self.segment_name] = _AdoptedSegment(segment, owned=owned)
        fields = {
            field: _adopt_array(self.segment_name, segment, dtype, shape, offset)
            for field, dtype, shape, offset in self.arrays
        }
        if self.kind == "step":
            return StepColumns(
                connected=fields["connected"],
                largest_component=fields["largest_component"],
            )
        if self.kind == "frame":
            return FrameStatisticsColumns(
                node_count=int(self.scalars["node_count"]),
                critical_ranges=fields["critical_ranges"],
                curve_offsets=fields["curve_offsets"],
                curve_ranges=fields["curve_ranges"],
                curve_sizes=fields["curve_sizes"],
            )
        if self.kind == "trajectory":
            return TrajectoryFrames(frames=fields["frames"])
        raise ConfigurationError(f"unknown shared-columns kind {self.kind!r}")


def _container_arrays(columns: Any) -> Tuple[str, Dict[str, np.ndarray], Dict[str, Any]]:
    """Decompose a supported container into (kind, arrays, scalars)."""
    if isinstance(columns, StepColumns):
        return (
            "step",
            {
                "connected": columns.connected,
                "largest_component": columns.largest_component,
            },
            {},
        )
    if isinstance(columns, FrameStatisticsColumns):
        return (
            "frame",
            {
                "critical_ranges": columns.critical_ranges,
                "curve_offsets": columns.curve_offsets,
                "curve_ranges": columns.curve_ranges,
                "curve_sizes": columns.curve_sizes,
            },
            {"node_count": columns.node_count},
        )
    if isinstance(columns, TrajectoryFrames):
        return ("trajectory", {"frames": columns.frames}, {})
    raise ConfigurationError(
        f"cannot share values of type {type(columns).__name__!r}"
    )


def _align(offset: int, boundary: int = 8) -> int:
    """Round ``offset`` up to the widest dtype alignment we ship."""
    return (offset + boundary - 1) // boundary * boundary


def payload_nbytes(columns: Any) -> int:
    """Raw bytes of a container's arrays (the shared-memory footprint)."""
    _, arrays, _ = _container_arrays(columns)
    return int(sum(np.asarray(array).nbytes for array in arrays.values()))


def share_columns(columns: Any, transport: str = "auto") -> Any:
    """Park ``columns`` in a shared-memory segment, or pass it through.

    Returns a :class:`SharedColumnsHandle` when the transport decides for
    shared memory, otherwise the container itself (the pickle fallback).
    Meant to be the *last* statement of a worker-process task body; the
    parent symmetrically calls :func:`adopt_result` on what arrives.
    """
    validate_transport(transport)
    if transport == "pickle" or not isinstance(
        columns, (StepColumns, FrameStatisticsColumns, TrajectoryFrames)
    ):
        return columns
    _sweep_zombies()
    kind, arrays, scalars = _container_arrays(columns)
    # Each array starts on an 8-byte boundary: back-to-back packing would
    # hand the parent *unaligned* views (e.g. an int64 column after a
    # bool column of odd length), taxing every vectorized op downstream.
    total = 0
    for array in arrays.values():
        total = _align(total) + array.nbytes
    if transport == "auto" and total < SHM_MIN_BYTES:
        return columns
    if total == 0 or not shm_available():
        return columns
    try:
        segment = _shared_memory().SharedMemory(create=True, size=total)
    except Exception:
        return columns  # graceful fallback: the pickle transport always works
    layout: List[Tuple[str, str, Tuple[int, ...], int]] = []
    offset = 0
    view = None
    try:
        for field, array in arrays.items():
            contiguous = np.ascontiguousarray(array)
            offset = _align(offset)
            view = np.frombuffer(
                segment.buf, dtype=contiguous.dtype, count=contiguous.size,
                offset=offset,
            )
            view[:] = contiguous.reshape(-1)
            layout.append(
                (field, contiguous.dtype.str, tuple(contiguous.shape), offset)
            )
            offset += contiguous.nbytes
        handle = SharedColumnsHandle(
            kind=kind,
            segment_name=segment.name,
            arrays=tuple(layout),
            scalars=scalars,
            nbytes=total,
        )
        telemetry.metrics.counter("shm.bytes_parked").add(total)
    except Exception:
        view = None
        _destroy_segment(segment)
        raise
    finally:
        view = None  # release the exported buffer before closing the mapping
        segment.close()
    return handle


def adopt_result(result: Any, owned: bool = True) -> Any:
    """Receiving-side counterpart of :func:`share_columns` (pass-through safe).

    ``owned`` is forwarded to :meth:`SharedColumnsHandle.adopt`: pass
    ``False`` when the sender keeps responsibility for the segment (the
    parent→worker frame hand-off).
    """
    if isinstance(result, SharedColumnsHandle):
        return result.adopt(owned=owned)
    return result


def discard_shared(result: Any) -> None:
    """Creator-side disposal of a handle whose adoptions were borrowed.

    Unlinks the segment behind ``result`` if it is a
    :class:`SharedColumnsHandle` (pass-through values need no cleanup).
    Safe to call when the segment is already gone, and safe while a
    borrowed adopter still maps it — POSIX keeps the mapping alive until
    the adopter's views die; only the name disappears.
    """
    if not isinstance(result, SharedColumnsHandle):
        return
    try:
        segment = _shared_memory().SharedMemory(name=result.segment_name)
    except FileNotFoundError:
        return  # already unlinked (e.g. an owning adopter took it)
    except Exception:
        return
    _destroy_segment(segment)
