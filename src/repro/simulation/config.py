"""Declarative configuration of simulation runs.

A run is described by three pieces:

* :class:`NetworkConfig` — how many nodes, in what region, placed how;
* :class:`MobilitySpec` — which mobility model with which parameters
  (stored by name so configurations serialise to JSON);
* :class:`SimulationConfig` — the two above plus the number of mobility
  steps, iterations and the root seed.

The paper's experiment of Section 4.2 corresponds to
``SimulationConfig.paper_waypoint(side)`` and ``.paper_drunkard(side)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility import model_by_name
from repro.mobility.base import MobilityModel
from repro.placement.strategies import PlacementStrategy, placement_by_name


@dataclass(frozen=True)
class NetworkConfig:
    """Static description of the network: size, region and placement."""

    node_count: int
    side: float
    dimension: int = 2
    placement: str = "uniform"

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigurationError(
                f"node_count must be at least 1, got {self.node_count}"
            )
        if self.side <= 0:
            raise ConfigurationError(f"side must be positive, got {self.side}")
        if self.dimension < 1:
            raise ConfigurationError(
                f"dimension must be at least 1, got {self.dimension}"
            )
        # Validate eagerly so configuration errors surface at build time.
        placement_by_name(self.placement)

    @property
    def region(self) -> Region:
        """The deployment region ``[0, side]^dimension``."""
        return Region(side=self.side, dimension=self.dimension)

    @property
    def placement_strategy(self) -> PlacementStrategy:
        """The placement function named by :attr:`placement`."""
        return placement_by_name(self.placement)

    @classmethod
    def paper_scaling(cls, side: float, dimension: int = 2) -> "NetworkConfig":
        """The paper's system-size scaling ``n = sqrt(l)`` (Section 4.2)."""
        node_count = max(2, int(round(math.sqrt(side))))
        return cls(node_count=node_count, side=side, dimension=dimension)


@dataclass(frozen=True)
class MobilitySpec:
    """A mobility model identified by name plus constructor parameters.

    Keeping the specification declarative (rather than holding a model
    instance) lets configurations be hashed, compared and serialised, and
    guarantees each simulation iteration gets a *fresh* model instance.
    """

    name: str = "stationary"
    parameters: Dict[str, Any] = field(default_factory=dict)

    def create(self) -> MobilityModel:
        """Instantiate a fresh mobility model from the specification."""
        return model_by_name(self.name, **self.parameters)

    # Convenience constructors matching the paper's settings ------------- #
    @classmethod
    def stationary(cls) -> "MobilitySpec":
        """No mobility (the paper's ``#steps = 1`` case)."""
        return cls(name="stationary")

    @classmethod
    def paper_waypoint(cls, side: float, pstationary: float = 0.0,
                       vmin: float = 0.1, vmax: Optional[float] = None,
                       tpause: int = 2000) -> "MobilitySpec":
        """Random waypoint with the Section 4.2 defaults.

        ``vmax`` defaults to ``0.01 * side`` as in the paper.
        """
        resolved_vmax = vmax if vmax is not None else max(0.01 * side, vmin)
        return cls(
            name="waypoint",
            parameters={
                "vmin": vmin,
                "vmax": max(resolved_vmax, vmin),
                "tpause": tpause,
                "pstationary": pstationary,
            },
        )

    @classmethod
    def paper_drunkard(cls, side: float, pstationary: float = 0.1,
                       ppause: float = 0.3,
                       step_radius: Optional[float] = None) -> "MobilitySpec":
        """Drunkard model with the Figure 3 defaults (``m = 0.01 l``)."""
        resolved_m = step_radius if step_radius is not None else max(0.01 * side, 1e-9)
        return cls(
            name="drunkard",
            parameters={
                "step_radius": resolved_m,
                "ppause": ppause,
                "pstationary": pstationary,
            },
        )


@dataclass(frozen=True)
class SimulationConfig:
    """Everything needed to reproduce a mobile-connectivity run.

    ``workers`` selects the execution backend of the multi-iteration
    runners: 1 (the default) runs iterations serially in-process, larger
    values fan the iterations out over a pool of worker processes.  Because
    every iteration owns an independent child random stream derived from
    ``seed``, results are bit-identical for every ``workers`` value.

    ``workers`` is the *iteration-level* half of the worker budget: when a
    configuration runs inside a parallel parameter sweep
    (:func:`repro.simulation.sweep.sweep_parameter` with ``workers > 1``),
    each sweep worker process owns one iteration pool of this size, so the
    run occupies up to ``sweep_workers * workers`` processes in total (see
    :func:`repro.simulation.sweep.split_worker_budget`).

    ``shard_steps`` and ``transport`` are further execution-only knobs
    (results are bit-identical for every setting; neither enters cache
    keys):

    * ``shard_steps`` splits each iteration's trajectory into chunks of
      that many frames executed by different workers (see
      :mod:`repro.simulation.sharding`).  ``None`` (default) shards
      automatically when ``workers`` exceeds the pending iteration count.
    * ``transport`` selects how results cross the worker→parent process
      boundary: ``"auto"`` (shared memory for large payloads, the compact
      pickle transport otherwise), ``"pickle"``, or ``"shm"`` (see
      :mod:`repro.simulation.shm`).

    ``max_retries`` / ``retry_backoff`` / ``task_timeout`` configure the
    fault supervision of the parallel iteration runners (see
    :mod:`repro.supervision`).  With ``max_retries = 0`` (the default) a
    failed iteration task fails the run, exactly as before supervision
    existed.  With ``max_retries > 0`` a crashed worker
    (``BrokenProcessPool``), a task exception or — when ``task_timeout``
    is set — a hung task is retried on a respawned pool with capped
    exponential backoff starting at ``retry_backoff`` seconds.  Because
    every iteration is a pure function of the configuration and its seed,
    a retried task reproduces the result bit-identically; all three knobs
    are execution-only and never enter cache keys.

    ``backend`` names the array backend the connectivity kernels run
    under (:mod:`repro.backend`).  Unlike the execution knobs above it is
    an *environment* field: the NumPy path is the reference, and a
    non-NumPy backend is a declared different execution environment whose
    results are not promised bit-identical — so ``backend`` *does* enter
    result-store cache keys (see :mod:`repro.store.keys`).
    """

    network: NetworkConfig
    mobility: MobilitySpec = field(default_factory=MobilitySpec.stationary)
    steps: int = 1
    iterations: int = 1
    seed: Optional[int] = None
    transmitting_range: Optional[float] = None
    workers: int = 1
    shard_steps: Optional[int] = None
    transport: str = "auto"
    backend: str = "numpy"
    max_retries: int = 0
    retry_backoff: float = 0.5
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {self.steps}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be at least 1, got {self.iterations}"
            )
        if self.transmitting_range is not None and self.transmitting_range < 0:
            raise ConfigurationError(
                "transmitting_range must be non-negative, got "
                f"{self.transmitting_range}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {self.workers}"
            )
        if self.shard_steps is not None and self.shard_steps < 1:
            raise ConfigurationError(
                f"shard_steps must be at least 1, got {self.shard_steps}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be non-negative, got {self.retry_backoff}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        from repro.simulation.shm import validate_transport

        validate_transport(self.transport)
        from repro.backend import validate_backend

        validate_backend(self.backend)

    @property
    def is_stationary(self) -> bool:
        """``True`` when the run has a single step or a stationary model."""
        return self.steps == 1 or self.mobility.name == "stationary"

    def with_range(self, transmitting_range: float) -> "SimulationConfig":
        """Copy of this configuration with a different transmitting range."""
        return replace(self, transmitting_range=transmitting_range)

    def with_workers(self, workers: int) -> "SimulationConfig":
        """Copy of this configuration with a different worker count.

        The copy produces bit-identical results for any ``workers`` value;
        only the wall-clock execution strategy changes.
        """
        return replace(self, workers=workers)

    def with_shard_steps(self, shard_steps: Optional[int]) -> "SimulationConfig":
        """Copy with a different trajectory shard size (bit-identical)."""
        return replace(self, shard_steps=shard_steps)

    def with_transport(self, transport: str) -> "SimulationConfig":
        """Copy with a different result transport (bit-identical)."""
        return replace(self, transport=transport)

    def with_backend(self, backend: str) -> "SimulationConfig":
        """Copy with a different array backend (changes the cache key)."""
        return replace(self, backend=backend)

    def with_supervision(
        self,
        max_retries: int,
        retry_backoff: float = 0.5,
        task_timeout: Optional[float] = None,
    ) -> "SimulationConfig":
        """Copy with fault supervision enabled (bit-identical results)."""
        return replace(
            self,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            task_timeout=task_timeout,
        )

    @property
    def retry_policy(self) -> "RetryPolicy":
        """The :class:`repro.supervision.RetryPolicy` these knobs select."""
        from repro.supervision import RetryPolicy

        return RetryPolicy(
            max_retries=self.max_retries,
            backoff=self.retry_backoff,
            task_timeout=self.task_timeout,
        )

    # Paper presets ------------------------------------------------------ #
    @classmethod
    def paper_waypoint(
        cls,
        side: float,
        steps: int = 10000,
        iterations: int = 50,
        seed: Optional[int] = None,
        pstationary: float = 0.0,
        workers: int = 1,
    ) -> "SimulationConfig":
        """The Figure 2 configuration (scaled sizes can override steps/iterations)."""
        return cls(
            network=NetworkConfig.paper_scaling(side),
            mobility=MobilitySpec.paper_waypoint(side, pstationary=pstationary),
            steps=steps,
            iterations=iterations,
            seed=seed,
            workers=workers,
        )

    @classmethod
    def paper_drunkard(
        cls,
        side: float,
        steps: int = 10000,
        iterations: int = 50,
        seed: Optional[int] = None,
        workers: int = 1,
    ) -> "SimulationConfig":
        """The Figure 3 configuration."""
        return cls(
            network=NetworkConfig.paper_scaling(side),
            mobility=MobilitySpec.paper_drunkard(side),
            steps=steps,
            iterations=iterations,
            seed=seed,
            workers=workers,
        )
