"""Multi-iteration simulation runners.

The paper averages every reported quantity over 50 independent simulations
of 10 000 mobility steps each.  The runners here execute those iterations
with independent, reproducible random streams derived from a single root
seed (see :class:`repro.stats.rng.RandomSource`).

Execution backend
-----------------
``SimulationConfig.workers`` selects how the iterations run:

* ``workers == 1`` (default) — a serial in-process loop;
* ``workers > 1`` — the iterations fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Iteration ``i`` always consumes the stream ``RandomSource(seed).child(i)``
regardless of which process executes it, and the root entropy is resolved
*once* in the parent (so even ``seed=None`` runs hand every worker the same
root).  Parallel results are therefore bit-identical to serial results —
only the wall-clock time changes.

Results cross the process boundary in the columnar containers of
:mod:`repro.simulation.results` (:class:`~repro.simulation.results.
StepColumns` per fixed-range iteration, :class:`~repro.simulation.results.
FrameStatisticsColumns` per trace-statistics iteration), so a 10 000-step
iteration pickles as a handful of NumPy arrays instead of 10 000 per-step
dataclasses.  ``SimulationConfig.transport`` upgrades that hand-off to
zero-copy: workers park the arrays in :mod:`multiprocessing.shared_memory`
segments and the parent adopts views instead of unpickling copies (see
:mod:`repro.simulation.shm`; ``"auto"``, the default, does this only for
payloads large enough to win).

Intra-iteration sharding
------------------------
A single long iteration can itself be split across workers:
``shard_steps`` (argument or ``SimulationConfig.shard_steps``) cuts each
trajectory into contiguous chunks executed by different processes, each
resumed from a :class:`~repro.mobility.base.MobilityCheckpoint` captured
by the parent, and stitched back bit-identically (see
:mod:`repro.simulation.sharding`).  When ``config.workers`` exceeds the
number of pending iterations — one 10 000-step iteration on an 8-core
box, or the tail of a campaign under PR 4's adaptive allotment — sharding
engages automatically, so single-iteration runs scale with the worker
budget too.

Per-iteration checkpointing
---------------------------
Both runners accept a *checkpoint* implementing the
:class:`IterationCheckpoint` protocol.  Iterations whose results
``load(index)`` returns are not simulated again, and every freshly
simulated iteration is handed to ``save(index, result)`` the moment it
exists — in completion order for parallel runs — so a killed paper-scale
run (50 iterations of 10 000 steps) resumes at the first unfinished
*iteration* instead of redoing the whole configuration.  Because
iteration ``i`` always consumes child stream ``i``, a resumed run is
bit-identical to an uninterrupted one.  The store-backed implementation
is :class:`repro.store.checkpoints.StoreIterationCheckpoint`; this module
only defines the protocol so the simulation layer stays storage-free.
"""

from __future__ import annotations

from dataclasses import replace
from functools import partial
from typing import Callable, Dict, List, Optional, TypeVar

from repro import faults, telemetry
from repro.exceptions import ConfigurationError
from repro.simulation.config import SimulationConfig
from repro.supervision import run_supervised
from repro.simulation.engine import (
    FrameStatisticsColumns,
    simulate_frame_statistics,
    simulate_iteration,
)
from repro.simulation.results import (
    IterationResult,
    MobileRunResult,
    StepColumns,
    pool_frame_statistics,
)
from repro.simulation.sharding import (
    capture_iteration_frames,
    resolve_shard_plan,
    run_shard,
)
from repro.simulation.shm import (
    adopt_result,
    discard_shared,
    ensure_shared_memory_tracker,
    share_columns,
)
from repro.stats.rng import RandomSource

ResultT = TypeVar("ResultT")


class IterationCheckpoint:
    """Protocol of a per-iteration checkpoint (duck-typed).

    ``load`` returns the previously simulated result of iteration
    ``index`` — a :class:`~repro.simulation.results.StepColumns` for
    fixed-range runs, a :class:`FrameStatisticsColumns` for
    trace-statistics runs — or ``None`` when the iteration must be
    (re)simulated; ``save`` persists one freshly simulated iteration.
    Both are called in the process driving the iterations (the parent of
    the iteration pool), in index order for ``load`` and in completion
    order for ``save``.
    """

    def load(self, index: int) -> Optional[object]:  # pragma: no cover
        raise NotImplementedError

    def save(self, index: int, result: object) -> None:  # pragma: no cover
        raise NotImplementedError


class _FixedRangeCheckpoint:
    """Adapter persisting only each iteration's :class:`StepColumns`.

    The surrounding :class:`~repro.simulation.results.IterationResult` is
    pure configuration (index, node count, range) and is rebuilt from the
    config on load, so the store only ever holds the columnar containers
    the codecs already understand.
    """

    def __init__(self, checkpoint: IterationCheckpoint, config: SimulationConfig) -> None:
        self._checkpoint = checkpoint
        self._config = config

    def load(self, index: int) -> Optional[IterationResult]:
        records = self._checkpoint.load(index)
        if records is None:
            return None
        return IterationResult(
            iteration=index,
            node_count=self._config.network.node_count,
            transmitting_range=self._config.transmitting_range,
            records=records,
        )

    def save(self, index: int, result: IterationResult) -> None:
        self._checkpoint.save(index, result.records)


def _fixed_range_iteration(
    index: int, config: SimulationConfig, entropy: int, transport: str = "pickle"
) -> IterationResult:
    """Run fixed-range iteration ``index`` on its own child stream."""
    faults.fire("iteration", context=f"iteration={index}")
    with telemetry.span("iteration", index=index, mode="fixed"):
        rng = RandomSource.from_entropy(entropy).child(index)
        result = simulate_iteration(
            network=config.network,
            mobility=config.mobility,
            steps=config.steps,
            transmitting_range=config.transmitting_range,
            rng=rng,
            iteration=index,
            backend=config.backend,
        )
        records = share_columns(result.records, transport)
        if records is result.records:
            return result
        return replace(result, records=records)


def _frame_statistics_iteration(
    index: int, config: SimulationConfig, entropy: int, transport: str = "pickle"
) -> FrameStatisticsColumns:
    """Run trace-statistics iteration ``index`` on its own child stream."""
    faults.fire("iteration", context=f"iteration={index}")
    with telemetry.span("iteration", index=index, mode="stats"):
        rng = RandomSource.from_entropy(entropy).child(index)
        return share_columns(
            simulate_frame_statistics(
                network=config.network,
                mobility=config.mobility,
                steps=config.steps,
                rng=rng,
                backend=config.backend,
            ),
            transport,
        )


def _adopt_iteration(result):
    """Parent-side transport adoption of one iteration result.

    Shared-memory handles become containers backed by zero-copy views;
    plain (pickle-transported) results pass through untouched.
    """
    if isinstance(result, IterationResult):
        records = adopt_result(result.records)
        if records is result.records:
            return result
        return replace(result, records=records)
    return adopt_result(result)


def _release_unadopted(futures) -> None:
    """Adopt-and-drop the results of futures a failed gather abandoned.

    When one task of a parallel run raises, tasks that already finished
    may have parked shared-memory segments that no one will ever adopt;
    adopting them here (the views die immediately) unlinks the segments
    now instead of leaving them mapped in ``/dev/shm`` until interpreter
    exit.  Called after the pool has shut down, so every future is
    settled.  Every failure is swallowed — this runs on an exception
    path and must not mask the original error.

    Since PR 7 the gathers run through :func:`repro.supervision.
    run_supervised`, whose fatal path applies the same adopt-and-drop via
    its ``release`` hook; this helper remains the shared implementation
    idiom for direct callers (tests, ad-hoc gathers).
    """
    for future in futures:
        try:
            if future.done() and not future.cancelled():
                _adopt_iteration(future.result())
        except Exception:
            pass


def _staging_sweeper(checkpoint) -> Optional[Callable[[], None]]:
    """An ``on_respawn`` hook sweeping dead writers' staging directories.

    After a pool death every killed worker may have left a half-written
    staging directory in the checkpoint's store; sweeping them before the
    replacement pool spawns keeps retried campaigns from accumulating
    orphans.  Duck-typed through the checkpoint (and the fixed-range
    adapter) to its ``store.sweep_dead_staging`` — storage-free runs get
    no hook.
    """
    target = getattr(checkpoint, "_checkpoint", checkpoint)
    store = getattr(target, "store", None)
    sweep = getattr(store, "sweep_dead_staging", None)
    if sweep is None:
        return None

    def respawn() -> None:
        try:
            sweep()
        except Exception:
            pass  # best-effort hygiene; never mask the recovery

    return respawn


def _map_iterations(
    task: Callable[..., ResultT],
    mode: str,
    config: SimulationConfig,
    checkpoint: Optional[IterationCheckpoint] = None,
    shard_steps: Optional[int] = None,
) -> List[ResultT]:
    """Run every iteration index, serially, in a process pool, or sharded.

    ``task`` must be a module-level callable (it is pickled to worker
    processes); ``mode`` (``"fixed"`` / ``"stats"``) names the same
    computation for the shard path.  Results are returned in iteration
    order and are bit-identical for every ``config.workers``,
    ``shard_steps`` and ``config.transport`` value.

    With a ``checkpoint``, previously saved iterations are loaded instead
    of simulated and fresh ones are saved as soon as they complete, so a
    killed run loses at most the iterations still in flight.
    """
    entropy = RandomSource(config.seed).entropy
    results: Dict[int, ResultT] = {}
    if checkpoint is None:
        pending = list(range(config.iterations))
    else:
        pending = []
        for index in range(config.iterations):
            loaded = checkpoint.load(index)
            if loaded is None:
                pending.append(index)
            else:
                results[index] = loaded
    chunks = resolve_shard_plan(config, len(pending), shard_steps)
    if chunks is not None:
        _run_sharded(mode, config, entropy, pending, results, checkpoint, chunks)
        return [results[index] for index in range(config.iterations)]

    worker_count = min(config.workers, len(pending))
    transport = config.transport if worker_count > 1 else "pickle"
    bound = partial(task, config=config, entropy=entropy, transport=transport)
    if worker_count <= 1:
        for index in pending:
            result = bound(index)
            if checkpoint is not None:
                checkpoint.save(index, result)
            results[index] = result
    else:
        # The parallel path gathers in completion order through the
        # supervised loop: checkpointed runs save each iteration the
        # moment it finishes, a fatal gather adopts and unlinks the
        # shared-memory segments workers had already parked (no
        # ``/dev/shm`` leak), and — when ``config.max_retries`` /
        # ``task_timeout`` opt in — worker crashes, task exceptions and
        # hangs are retried on a respawned pool with backoff instead of
        # aborting the run.  The default policy reproduces the legacy
        # fail-fast gather exactly.
        ensure_shared_memory_tracker()

        def submit_one(pool, index, available, ready):
            # The ambient span (the task, inside a pool worker) rides
            # along into the nested iteration pool; identity when
            # telemetry is inactive.
            return pool.submit(telemetry.propagate(bound), index), 1

        def consume(index, result, cost):
            adopted = _adopt_iteration(result)
            if checkpoint is not None:
                checkpoint.save(index, adopted)
            results[index] = adopted

        run_supervised(
            pending,
            budget=worker_count,
            submit=submit_one,
            on_result=consume,
            policy=config.retry_policy,
            on_respawn=_staging_sweeper(checkpoint),
            release=_adopt_iteration,
        )
    return [results[index] for index in range(config.iterations)]


def _stitch_shards(mode: str, config: SimulationConfig, index: int, parts):
    """Reassemble one iteration from its chunk containers (bit-identical)."""
    if mode == "fixed":
        return IterationResult(
            iteration=index,
            node_count=config.network.node_count,
            transmitting_range=config.transmitting_range,
            records=StepColumns.concatenate(parts),
        )
    return FrameStatisticsColumns.concatenate(parts)


def _run_sharded(
    mode: str,
    config: SimulationConfig,
    entropy: int,
    pending: List[int],
    results: Dict[int, ResultT],
    checkpoint: Optional[IterationCheckpoint],
    chunks: List[int],
) -> None:
    """Execute the pending iterations as (iteration, chunk) shard tasks.

    The parent generates each iteration's mobility frames exactly once
    (cheap, vectorised) and parks each chunk in shared memory; the shard
    pool runs the expensive frame reductions concurrently against those
    borrowed segments, and every iteration is stitched — and
    checkpointed — the moment its last shard lands.  The parent owns the
    frame segments: a chunk's segment is discarded once its reduction
    result arrived (a retried worker re-adopts the same handle until
    then), and any survivors are swept when the pool winds down.
    """
    tasks = [
        (index, shard)
        for index in pending
        for shard in range(len(chunks))
    ]
    worker_count = min(config.workers, len(tasks))
    transport = config.transport if worker_count > 1 else "pickle"
    frames = capture_iteration_frames(
        config, entropy, pending, chunks, transport=transport
    )
    parts: Dict[int, List] = {
        index: [None] * len(chunks) for index in pending
    }

    def finish(index: int) -> None:
        stitched = _stitch_shards(mode, config, index, parts.pop(index))
        if checkpoint is not None:
            checkpoint.save(index, stitched)
        results[index] = stitched

    def discard_frames(index: int, shard: int) -> None:
        discard_shared(frames[index][shard])
        frames[index][shard] = None

    try:
        if worker_count <= 1:
            for index, shard in tasks:
                parts[index][shard] = adopt_result(
                    run_shard(
                        mode,
                        None,
                        None,
                        chunks[shard],
                        shard == 0,
                        transmitting_range=config.transmitting_range,
                        transport=transport,
                        backend=config.backend,
                        frames=frames[index][shard],
                    )
                )
                discard_frames(index, shard)
            for index in pending:
                finish(index)
            return
        missing = {index: len(chunks) for index in pending}
        ensure_shared_memory_tracker()

        def submit_shard(pool, item, available, ready):
            index, shard = item
            return (
                pool.submit(
                    telemetry.propagate(run_shard),
                    mode,
                    None,
                    None,
                    chunks[shard],
                    shard == 0,
                    transmitting_range=config.transmitting_range,
                    transport=transport,
                    backend=config.backend,
                    frames=frames[index][shard],
                ),
                1,
            )

        def consume(item, result, cost):
            index, shard = item
            parts[index][shard] = adopt_result(result)
            discard_frames(index, shard)
            missing[index] -= 1
            if missing[index] == 0:
                finish(index)

        run_supervised(
            tasks,
            budget=worker_count,
            submit=submit_shard,
            on_result=consume,
            policy=config.retry_policy,
            on_respawn=_staging_sweeper(checkpoint),
            release=adopt_result,
        )
    finally:
        for handles in frames.values():
            for handle in handles:
                discard_shared(handle)


def run_fixed_range(
    config: SimulationConfig,
    checkpoint: Optional[IterationCheckpoint] = None,
    shard_steps: Optional[int] = None,
) -> MobileRunResult:
    """Run the paper's simulator: fixed range, all iterations.

    Honours ``config.workers``, ``config.transport`` and intra-iteration
    sharding (``shard_steps`` argument, ``config.shard_steps``, or
    automatic when workers outnumber pending iterations) — every
    execution shape is bit-identical to the serial run (see the module
    docstring).  With a ``checkpoint``, each iteration's
    :class:`~repro.simulation.results.StepColumns` is persisted as it
    completes and loaded instead of resimulated on the next run.

    Raises:
        ConfigurationError: if ``config.transmitting_range`` is not set.
    """
    if config.transmitting_range is None:
        raise ConfigurationError(
            "run_fixed_range requires config.transmitting_range to be set; "
            "use collect_frame_statistics / estimate_thresholds to derive ranges"
        )
    adapter = (
        _FixedRangeCheckpoint(checkpoint, config)
        if checkpoint is not None
        else None
    )
    iterations = _map_iterations(
        _fixed_range_iteration,
        "fixed",
        config,
        checkpoint=adapter,
        shard_steps=shard_steps,
    )
    return MobileRunResult(
        transmitting_range=config.transmitting_range,
        node_count=config.network.node_count,
        iterations=tuple(iterations),
    )


def collect_frame_statistics(
    config: SimulationConfig,
    checkpoint: Optional[IterationCheckpoint] = None,
    shard_steps: Optional[int] = None,
) -> List[FrameStatisticsColumns]:
    """Run all iterations in trace-statistics mode.

    Returns one columnar sequence of :class:`FrameStatistics` per
    iteration.  The random
    streams are the same as :func:`run_fixed_range` uses for the same seed,
    so thresholds derived from these statistics are consistent with
    fixed-range runs on the same configuration.  Honours ``config.workers``,
    ``config.transport`` and intra-iteration sharding (``shard_steps``
    argument, ``config.shard_steps``, or automatic when workers outnumber
    pending iterations) — all bit-identical to serial — plus an optional
    per-iteration ``checkpoint`` (each iteration's
    :class:`FrameStatisticsColumns` is persisted as it completes; saved
    iterations resume without resimulation).
    """
    return _map_iterations(
        _frame_statistics_iteration,
        "stats",
        config,
        checkpoint=checkpoint,
        shard_steps=shard_steps,
    )


def stationary_critical_range(
    node_count: int,
    side: float,
    dimension: int = 2,
    iterations: int = 100,
    seed: Optional[int] = None,
    confidence: float = 0.99,
    placement: str = "uniform",
    workers: int = 1,
    backend: str = "numpy",
) -> float:
    """Estimate ``rstationary``: the range connecting random static placements.

    The paper takes its ``rstationary`` values from the stationary
    simulations of [1, 11], where the critical range is the value at which
    the great majority of random placements are connected.  Here we draw
    ``iterations`` independent placements, compute the exact critical range
    of each (longest MST edge), and return the ``confidence``-quantile of
    those values — i.e. the range at which a fraction ``confidence`` of
    random placements is connected.

    Args:
        node_count: number of nodes ``n``.
        side: region side ``l``.
        dimension: region dimension (2 in the paper's mobile study).
        iterations: number of independent placements to draw.
        seed: root seed for reproducibility.
        confidence: the quantile of per-placement critical ranges returned;
            1.0 returns the maximum observed.
        placement: placement strategy name (default ``uniform``).
        workers: process count for the placement draws (1 = serial;
            results are bit-identical for every value).
        backend: array backend for the connectivity kernels
            (:mod:`repro.backend`).
    """
    from repro.simulation.config import MobilitySpec, NetworkConfig
    from repro.simulation.metrics import range_for_connectivity_fraction

    if not 0.0 < confidence <= 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1], got {confidence}")
    network = NetworkConfig(
        node_count=node_count, side=side, dimension=dimension, placement=placement
    )
    config = SimulationConfig(
        network=network,
        mobility=MobilitySpec.stationary(),
        steps=1,
        iterations=iterations,
        seed=seed,
        workers=workers,
        backend=backend,
    )
    statistics = collect_frame_statistics(config)
    # Each iteration contributes exactly one frame (steps == 1); pool them.
    pooled = pool_frame_statistics(statistics)
    return range_for_connectivity_fraction(pooled, confidence)
