"""Multi-iteration simulation runners.

The paper averages every reported quantity over 50 independent simulations
of 10 000 mobility steps each.  The runners here execute those iterations
with independent, reproducible random streams derived from a single root
seed (see :class:`repro.stats.rng.RandomSource`).

Execution backend
-----------------
``SimulationConfig.workers`` selects how the iterations run:

* ``workers == 1`` (default) — a serial in-process loop;
* ``workers > 1`` — the iterations fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.

Iteration ``i`` always consumes the stream ``RandomSource(seed).child(i)``
regardless of which process executes it, and the root entropy is resolved
*once* in the parent (so even ``seed=None`` runs hand every worker the same
root).  Parallel results are therefore bit-identical to serial results —
only the wall-clock time changes.

Results cross the process boundary in the columnar containers of
:mod:`repro.simulation.results` (:class:`~repro.simulation.results.
StepColumns` per fixed-range iteration, :class:`~repro.simulation.results.
FrameStatisticsColumns` per trace-statistics iteration), so a 10 000-step
iteration pickles as a handful of NumPy arrays instead of 10 000 per-step
dataclasses.

Per-iteration checkpointing
---------------------------
Both runners accept a *checkpoint* implementing the
:class:`IterationCheckpoint` protocol.  Iterations whose results
``load(index)`` returns are not simulated again, and every freshly
simulated iteration is handed to ``save(index, result)`` the moment it
exists — in completion order for parallel runs — so a killed paper-scale
run (50 iterations of 10 000 steps) resumes at the first unfinished
*iteration* instead of redoing the whole configuration.  Because
iteration ``i`` always consumes child stream ``i``, a resumed run is
bit-identical to an uninterrupted one.  The store-backed implementation
is :class:`repro.store.checkpoints.StoreIterationCheckpoint`; this module
only defines the protocol so the simulation layer stays storage-free.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from functools import partial
from typing import Callable, Dict, List, Optional, TypeVar

from repro.exceptions import ConfigurationError
from repro.simulation.config import SimulationConfig
from repro.simulation.engine import (
    FrameStatisticsColumns,
    simulate_frame_statistics,
    simulate_iteration,
)
from repro.simulation.results import (
    IterationResult,
    MobileRunResult,
    pool_frame_statistics,
)
from repro.stats.rng import RandomSource

ResultT = TypeVar("ResultT")


class IterationCheckpoint:
    """Protocol of a per-iteration checkpoint (duck-typed).

    ``load`` returns the previously simulated result of iteration
    ``index`` — a :class:`~repro.simulation.results.StepColumns` for
    fixed-range runs, a :class:`FrameStatisticsColumns` for
    trace-statistics runs — or ``None`` when the iteration must be
    (re)simulated; ``save`` persists one freshly simulated iteration.
    Both are called in the process driving the iterations (the parent of
    the iteration pool), in index order for ``load`` and in completion
    order for ``save``.
    """

    def load(self, index: int) -> Optional[object]:  # pragma: no cover
        raise NotImplementedError

    def save(self, index: int, result: object) -> None:  # pragma: no cover
        raise NotImplementedError


class _FixedRangeCheckpoint:
    """Adapter persisting only each iteration's :class:`StepColumns`.

    The surrounding :class:`~repro.simulation.results.IterationResult` is
    pure configuration (index, node count, range) and is rebuilt from the
    config on load, so the store only ever holds the columnar containers
    the codecs already understand.
    """

    def __init__(self, checkpoint: IterationCheckpoint, config: SimulationConfig) -> None:
        self._checkpoint = checkpoint
        self._config = config

    def load(self, index: int) -> Optional[IterationResult]:
        records = self._checkpoint.load(index)
        if records is None:
            return None
        return IterationResult(
            iteration=index,
            node_count=self._config.network.node_count,
            transmitting_range=self._config.transmitting_range,
            records=records,
        )

    def save(self, index: int, result: IterationResult) -> None:
        self._checkpoint.save(index, result.records)


def _fixed_range_iteration(
    index: int, config: SimulationConfig, entropy: int
) -> IterationResult:
    """Run fixed-range iteration ``index`` on its own child stream."""
    rng = RandomSource.from_entropy(entropy).child(index)
    return simulate_iteration(
        network=config.network,
        mobility=config.mobility,
        steps=config.steps,
        transmitting_range=config.transmitting_range,
        rng=rng,
        iteration=index,
    )


def _frame_statistics_iteration(
    index: int, config: SimulationConfig, entropy: int
) -> FrameStatisticsColumns:
    """Run trace-statistics iteration ``index`` on its own child stream."""
    rng = RandomSource.from_entropy(entropy).child(index)
    return simulate_frame_statistics(
        network=config.network,
        mobility=config.mobility,
        steps=config.steps,
        rng=rng,
    )


def _map_iterations(
    task: Callable[[int, SimulationConfig, int], ResultT],
    config: SimulationConfig,
    checkpoint: Optional[IterationCheckpoint] = None,
) -> List[ResultT]:
    """Run ``task`` for every iteration index, serially or in a process pool.

    ``task`` must be a module-level callable (it is pickled to worker
    processes).  Results are returned in iteration order and are
    bit-identical for every ``config.workers`` value.

    With a ``checkpoint``, previously saved iterations are loaded instead
    of simulated and fresh ones are saved as soon as they complete, so a
    killed run loses at most the iterations still in flight.
    """
    entropy = RandomSource(config.seed).entropy
    bound = partial(task, config=config, entropy=entropy)
    results: Dict[int, ResultT] = {}
    if checkpoint is None:
        pending = list(range(config.iterations))
    else:
        pending = []
        for index in range(config.iterations):
            loaded = checkpoint.load(index)
            if loaded is None:
                pending.append(index)
            else:
                results[index] = loaded
    worker_count = min(config.workers, len(pending))
    if worker_count <= 1:
        for index in pending:
            result = bound(index)
            if checkpoint is not None:
                checkpoint.save(index, result)
            results[index] = result
    elif checkpoint is None:
        # A large chunksize amortises pickling without starving workers.
        chunksize = max(1, len(pending) // (worker_count * 4))
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            results.update(
                zip(pending, pool.map(bound, pending, chunksize=chunksize))
            )
    else:
        # Checkpointed parallel runs save each iteration the moment it
        # finishes (completion order), trading the chunked map's pickling
        # economy for durability of every finished iteration.
        with ProcessPoolExecutor(max_workers=worker_count) as pool:
            futures = {pool.submit(bound, index): index for index in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    result = future.result()
                    checkpoint.save(index, result)
                    results[index] = result
    return [results[index] for index in range(config.iterations)]


def run_fixed_range(
    config: SimulationConfig,
    checkpoint: Optional[IterationCheckpoint] = None,
) -> MobileRunResult:
    """Run the paper's simulator: fixed range, all iterations.

    Honours ``config.workers`` (parallel execution is bit-identical to
    serial — see the module docstring).  With a ``checkpoint``, each
    iteration's :class:`~repro.simulation.results.StepColumns` is
    persisted as it completes and loaded instead of resimulated on the
    next run (see the module docstring).

    Raises:
        ConfigurationError: if ``config.transmitting_range`` is not set.
    """
    if config.transmitting_range is None:
        raise ConfigurationError(
            "run_fixed_range requires config.transmitting_range to be set; "
            "use collect_frame_statistics / estimate_thresholds to derive ranges"
        )
    adapter = (
        _FixedRangeCheckpoint(checkpoint, config)
        if checkpoint is not None
        else None
    )
    iterations = _map_iterations(_fixed_range_iteration, config, checkpoint=adapter)
    return MobileRunResult(
        transmitting_range=config.transmitting_range,
        node_count=config.network.node_count,
        iterations=tuple(iterations),
    )


def collect_frame_statistics(
    config: SimulationConfig,
    checkpoint: Optional[IterationCheckpoint] = None,
) -> List[FrameStatisticsColumns]:
    """Run all iterations in trace-statistics mode.

    Returns one columnar sequence of :class:`FrameStatistics` per
    iteration.  The random
    streams are the same as :func:`run_fixed_range` uses for the same seed,
    so thresholds derived from these statistics are consistent with
    fixed-range runs on the same configuration.  Honours ``config.workers``
    (parallel execution is bit-identical to serial) and an optional
    per-iteration ``checkpoint`` (each iteration's
    :class:`FrameStatisticsColumns` is persisted as it completes; saved
    iterations resume without resimulation).
    """
    return _map_iterations(
        _frame_statistics_iteration, config, checkpoint=checkpoint
    )


def stationary_critical_range(
    node_count: int,
    side: float,
    dimension: int = 2,
    iterations: int = 100,
    seed: Optional[int] = None,
    confidence: float = 0.99,
    placement: str = "uniform",
    workers: int = 1,
) -> float:
    """Estimate ``rstationary``: the range connecting random static placements.

    The paper takes its ``rstationary`` values from the stationary
    simulations of [1, 11], where the critical range is the value at which
    the great majority of random placements are connected.  Here we draw
    ``iterations`` independent placements, compute the exact critical range
    of each (longest MST edge), and return the ``confidence``-quantile of
    those values — i.e. the range at which a fraction ``confidence`` of
    random placements is connected.

    Args:
        node_count: number of nodes ``n``.
        side: region side ``l``.
        dimension: region dimension (2 in the paper's mobile study).
        iterations: number of independent placements to draw.
        seed: root seed for reproducibility.
        confidence: the quantile of per-placement critical ranges returned;
            1.0 returns the maximum observed.
        placement: placement strategy name (default ``uniform``).
        workers: process count for the placement draws (1 = serial;
            results are bit-identical for every value).
    """
    from repro.simulation.config import MobilitySpec, NetworkConfig
    from repro.simulation.metrics import range_for_connectivity_fraction

    if not 0.0 < confidence <= 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1], got {confidence}")
    network = NetworkConfig(
        node_count=node_count, side=side, dimension=dimension, placement=placement
    )
    config = SimulationConfig(
        network=network,
        mobility=MobilitySpec.stationary(),
        steps=1,
        iterations=iterations,
        seed=seed,
        workers=workers,
    )
    statistics = collect_frame_statistics(config)
    # Each iteration contributes exactly one frame (steps == 1); pool them.
    pooled = pool_frame_statistics(statistics)
    return range_for_connectivity_fraction(pooled, confidence)
