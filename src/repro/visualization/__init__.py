"""Terminal visualisation helpers.

The library is plotting-free by design; for quick inspection of placements,
communication graphs and traces it renders small ASCII pictures instead.
These are used by the examples and are handy in a REPL when debugging a
mobility model or a placement strategy.
"""

from repro.visualization.ascii_art import (
    render_connectivity_timeline,
    render_graph,
    render_placement,
)

__all__ = [
    "render_connectivity_timeline",
    "render_graph",
    "render_placement",
]
