"""ASCII rendering of placements, graphs and connectivity timelines.

The renderings are intentionally coarse — a terminal-sized grid of
characters — but they answer the questions one actually asks when eyeballing
a simulation: are the nodes clustered or spread out, which nodes form the
big component, and when was the network down.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.graph.adjacency import CommunicationGraph
from repro.graph.components import connected_components
from repro.types import Positions, as_positions


def _character_grid(width: int, height: int) -> List[List[str]]:
    return [[" " for _ in range(width)] for _ in range(height)]


def _to_cell(
    point: np.ndarray, region_side: float, width: int, height: int
) -> tuple:
    """Map a 2-D point in [0, side]^2 to a character cell (row, column)."""
    column = int(point[0] / region_side * (width - 1))
    # Rows grow downward; flip the y axis so the picture is not mirrored.
    row = int((1.0 - point[1] / region_side) * (height - 1))
    return (
        min(max(row, 0), height - 1),
        min(max(column, 0), width - 1),
    )


def render_placement(
    positions: Positions,
    region: Region,
    width: int = 60,
    height: int = 24,
    marker: str = "o",
) -> str:
    """Render a 2-D placement as an ASCII scatter plot inside a frame.

    Args:
        positions: ``(n, 2)`` placement.
        region: the deployment region (defines the plot bounds).
        width, height: character dimensions of the drawing area.
        marker: character used for nodes (overlapping nodes show ``*``).
    """
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must both be at least 2")
    if region.dimension != 2:
        raise ConfigurationError("render_placement only supports 2-D regions")
    points = as_positions(positions)
    if points.shape[0] and points.shape[1] != 2:
        raise ConfigurationError("render_placement expects (n, 2) positions")

    grid = _character_grid(width, height)
    for point in points:
        row, column = _to_cell(point, region.side, width, height)
        grid[row][column] = marker if grid[row][column] == " " else "*"

    border = "+" + "-" * width + "+"
    lines = [border]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    return "\n".join(lines)


def render_graph(
    graph: CommunicationGraph,
    region: Optional[Region] = None,
    width: int = 60,
    height: int = 24,
) -> str:
    """Render a communication graph: nodes labelled by component.

    Nodes of the largest connected component are drawn as ``#``, nodes of
    every other component as ``o``, and isolated nodes as ``.`` — a quick
    visual answer to "how fragmented is the network right now?".

    The graph must carry positions (built by
    :func:`repro.graph.builder.build_communication_graph`).
    """
    if graph.positions is None:
        raise ConfigurationError("render_graph requires a graph with positions")
    points = graph.positions
    if points.shape[1] != 2:
        raise ConfigurationError("render_graph only supports 2-D positions")
    if region is None:
        side = float(points.max()) if points.size else 1.0
        region = Region.square(max(side, 1e-9))

    components = connected_components(graph)
    largest = max(components, key=len) if components else []
    largest_set = set(largest)

    grid = _character_grid(width, height)
    for node in graph.nodes():
        row, column = _to_cell(points[node], region.side, width, height)
        if graph.degree(node) == 0:
            symbol = "."
        elif node in largest_set:
            symbol = "#"
        else:
            symbol = "o"
        grid[row][column] = symbol

    border = "+" + "-" * width + "+"
    lines = [border]
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    lines.append(
        f"# largest component ({len(largest)}/{graph.node_count} nodes), "
        "o other components, . isolated"
    )
    return "\n".join(lines)


def render_connectivity_timeline(
    connected_series: Sequence[bool], width: int = 72
) -> str:
    """Render a per-step connectivity series as a one-line timeline.

    Each character summarises a bucket of steps: ``#`` all connected,
    ``-`` none connected, ``+`` mixed.  The availability percentage is
    appended.
    """
    if width < 1:
        raise ConfigurationError(f"width must be positive, got {width}")
    series = [bool(value) for value in connected_series]
    if not series:
        return "(empty timeline)"
    bucket_count = min(width, len(series))
    buckets = np.array_split(np.asarray(series, dtype=bool), bucket_count)
    characters = []
    for bucket in buckets:
        if bucket.all():
            characters.append("#")
        elif not bucket.any():
            characters.append("-")
        else:
            characters.append("+")
    availability = sum(series) / len(series)
    return "".join(characters) + f"  ({availability:.1%} connected)"
