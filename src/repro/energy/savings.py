"""Energy savings from transmitting-range reductions.

Section 4.2 argues that accepting brief disconnections (using ``r90``
instead of ``r100``) or partial connectivity (``rl50`` instead of
``rstationary``) buys large energy savings because power scales like
``r**alpha``.  These helpers turn range ratios into the savings figures the
paper quotes, and invert the relation (what range reduction is needed for a
target saving).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping

from repro.energy.model import EnergyModel
from repro.exceptions import ConfigurationError


def network_energy(
    node_count: int, transmitting_range: float, model: EnergyModel = EnergyModel()
) -> float:
    """Total transmission power of ``node_count`` nodes at a common range."""
    if node_count < 0:
        raise ConfigurationError(f"node_count must be non-negative, got {node_count}")
    return node_count * model.node_power(transmitting_range)


def energy_savings_fraction(
    reduced_range: float,
    reference_range: float,
    model: EnergyModel = EnergyModel(),
) -> float:
    """Fractional energy saving of operating at ``reduced_range``.

    ``1 - power(reduced) / power(reference)``; e.g. with the free-space
    exponent, halving the range saves 75 % of the transmission energy.

    Raises:
        ConfigurationError: if ``reference_range`` draws zero power.
    """
    if reduced_range < 0 or reference_range < 0:
        raise ConfigurationError("ranges must be non-negative")
    reference_power = model.node_power(reference_range)
    if reference_power == 0:
        raise ConfigurationError(
            "reference range draws zero power; savings fraction is undefined"
        )
    return 1.0 - model.node_power(reduced_range) / reference_power


def range_reduction_for_savings(
    target_savings: float, model: EnergyModel = EnergyModel()
) -> float:
    """Range ratio ``r_reduced / r_reference`` achieving ``target_savings``.

    Only meaningful for a pure path-loss model (zero electronics power);
    with a constant term the relation depends on the absolute ranges and
    callers should invert :func:`energy_savings_fraction` numerically.
    """
    if not 0.0 <= target_savings < 1.0:
        raise ConfigurationError(
            f"target_savings must be in [0, 1), got {target_savings}"
        )
    if model.electronics_power != 0:
        raise ConfigurationError(
            "range_reduction_for_savings assumes a pure path-loss model "
            "(electronics_power == 0)"
        )
    return (1.0 - target_savings) ** (1.0 / model.path_loss_exponent)


def savings_table(
    range_ratios: Mapping[str, float], model: EnergyModel = EnergyModel()
) -> Dict[str, float]:
    """Energy savings for a table of range ratios ``r_x / rstationary``.

    This is the calculation behind the paper's narrative numbers: a ratio
    of 0.6 (r90 being ~40 % below r100) maps to a ~64 % transmission-energy
    saving at ``alpha = 2``.

    Args:
        range_ratios: mapping from a label (``"r90"``) to the ratio of that
            range to the reference range.

    Returns:
        Mapping from the same labels to fractional savings relative to the
        reference range (ratio 1.0).
    """
    savings: Dict[str, float] = {}
    for label, ratio in range_ratios.items():
        if ratio < 0:
            raise ConfigurationError(f"ratio for {label!r} must be non-negative")
        if model.electronics_power == 0:
            savings[label] = 1.0 - ratio**model.path_loss_exponent
        else:
            # With a constant term the ratio alone does not determine the
            # saving; normalise against a unit reference range.
            savings[label] = energy_savings_fraction(ratio, 1.0, model)
    return savings


def equivalent_lifetime_factor(
    reduced_range: float,
    reference_range: float,
    model: EnergyModel = EnergyModel(),
) -> float:
    """Battery-lifetime multiplier obtained by the range reduction.

    Assuming lifetime is inversely proportional to transmission power, the
    factor is ``power(reference) / power(reduced)``.  Returns ``inf`` when
    the reduced range draws zero power.
    """
    reduced_power = model.node_power(reduced_range)
    reference_power = model.node_power(reference_range)
    if reduced_power == 0:
        return math.inf
    return reference_power / reduced_power
