"""Radio energy model.

The standard path-loss model: the power needed to reach a receiver at
distance ``r`` is proportional to ``r ** alpha`` where the path-loss
exponent ``alpha`` is 2 in free space and up to 4 or more in cluttered
environments ("proportional to the square (or, depending on environmental
conditions, to a higher power) of the transmitting range" — Section 1).
An optional constant electronics term models the distance-independent cost
of running the transceiver circuitry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

#: Path-loss exponent in free space.
FREE_SPACE_EXPONENT = 2.0

#: Path-loss exponent of the two-ray ground-reflection model.
TWO_RAY_GROUND_EXPONENT = 4.0


def transmission_power(
    transmitting_range: float,
    path_loss_exponent: float = FREE_SPACE_EXPONENT,
    coefficient: float = 1.0,
) -> float:
    """Power needed to cover ``transmitting_range``: ``coefficient * r**alpha``."""
    if transmitting_range < 0:
        raise ConfigurationError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    if path_loss_exponent < 1:
        raise ConfigurationError(
            f"path_loss_exponent must be at least 1, got {path_loss_exponent}"
        )
    if coefficient <= 0:
        raise ConfigurationError(f"coefficient must be positive, got {coefficient}")
    return coefficient * transmitting_range**path_loss_exponent


@dataclass(frozen=True)
class EnergyModel:
    """Per-node radio energy model.

    Attributes:
        path_loss_exponent: exponent ``alpha`` of the distance term.
        amplifier_coefficient: multiplier of the ``r**alpha`` term.
        electronics_power: distance-independent power drawn while
            transmitting (circuitry, baseband processing).
    """

    path_loss_exponent: float = FREE_SPACE_EXPONENT
    amplifier_coefficient: float = 1.0
    electronics_power: float = 0.0

    def __post_init__(self) -> None:
        if self.path_loss_exponent < 1:
            raise ConfigurationError(
                f"path_loss_exponent must be at least 1, got {self.path_loss_exponent}"
            )
        if self.amplifier_coefficient <= 0:
            raise ConfigurationError(
                f"amplifier_coefficient must be positive, got {self.amplifier_coefficient}"
            )
        if self.electronics_power < 0:
            raise ConfigurationError(
                f"electronics_power must be non-negative, got {self.electronics_power}"
            )

    def node_power(self, transmitting_range: float) -> float:
        """Power drawn by one node transmitting at ``transmitting_range``."""
        return self.electronics_power + transmission_power(
            transmitting_range,
            path_loss_exponent=self.path_loss_exponent,
            coefficient=self.amplifier_coefficient,
        )

    def power_ratio(self, range_a: float, range_b: float) -> float:
        """Ratio ``power(range_a) / power(range_b)``.

        Raises:
            ConfigurationError: if the denominator power is zero.
        """
        denominator = self.node_power(range_b)
        if denominator == 0:
            raise ConfigurationError(
                "cannot form a power ratio against a zero-power configuration"
            )
        return self.node_power(range_a) / denominator
