"""Energy model and the energy/connectivity trade-off.

The paper motivates every range reduction by the energy it saves:
transmitting power grows with the square (or a higher power, depending on
the environment) of the transmitting range.  This package provides the
radio energy model and the savings calculations quoted in Section 4.2
("substantial energy savings can be achieved under both models if temporary
disconnections can be tolerated").
"""

from repro.energy.model import (
    EnergyModel,
    FREE_SPACE_EXPONENT,
    TWO_RAY_GROUND_EXPONENT,
    transmission_power,
)
from repro.energy.savings import (
    energy_savings_fraction,
    network_energy,
    range_reduction_for_savings,
    savings_table,
)

__all__ = [
    "EnergyModel",
    "FREE_SPACE_EXPONENT",
    "TWO_RAY_GROUND_EXPONENT",
    "energy_savings_fraction",
    "network_energy",
    "range_reduction_for_savings",
    "savings_table",
    "transmission_power",
]
