"""Structural properties of communication graphs.

The paper's lower bound analysis (Section 3) is built on the distinction
between "graphs containing an isolated node" and "disconnected graphs";
this module provides isolation checks as well as the richer properties
(degrees, articulation points, a simple k-connectivity test) that the
topology-control and extension experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.adjacency import CommunicationGraph
from repro.graph.components import is_connected


def isolated_nodes(graph: CommunicationGraph) -> List[int]:
    """Indices of nodes with no neighbours."""
    return [node for node in graph.nodes() if graph.degree(node) == 0]


def has_isolated_node(graph: CommunicationGraph) -> bool:
    """``True`` if at least one node has no neighbours.

    The existence of an isolated node implies the graph is disconnected
    (for ``n >= 2``), which is the weaker disconnection criterion used by
    the earlier bounds the paper improves on.
    """
    if graph.node_count < 2:
        return False
    return any(graph.degree(node) == 0 for node in graph.nodes())


def degree_sequence(graph: CommunicationGraph) -> List[int]:
    """Sorted (descending) list of node degrees."""
    return sorted(graph.degrees(), reverse=True)


def minimum_degree(graph: CommunicationGraph) -> int:
    """Smallest node degree (0 for the empty graph)."""
    degrees = graph.degrees()
    return min(degrees) if degrees else 0


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of the degree distribution of a graph."""

    minimum: int
    maximum: int
    mean: float

    @classmethod
    def empty(cls) -> "DegreeStatistics":
        return cls(minimum=0, maximum=0, mean=0.0)


def degree_statistics(graph: CommunicationGraph) -> DegreeStatistics:
    """Min/max/mean degree of ``graph``."""
    degrees = graph.degrees()
    if not degrees:
        return DegreeStatistics.empty()
    return DegreeStatistics(
        minimum=min(degrees),
        maximum=max(degrees),
        mean=sum(degrees) / len(degrees),
    )


def articulation_points(graph: CommunicationGraph) -> List[int]:
    """Nodes whose removal increases the number of connected components.

    Uses the iterative Hopcroft–Tarjan low-link algorithm so that large
    graphs do not hit the recursion limit.
    """
    n = graph.node_count
    adjacency = graph.adjacency_lists()
    visited = [False] * n
    discovery = [0] * n
    low = [0] * n
    parent: List[int] = [-1] * n
    points = set()
    timer = 0

    for root in range(n):
        if visited[root]:
            continue
        # Iterative DFS, stack of (node, iterator over neighbours).
        stack = [(root, iter(adjacency[root]))]
        visited[root] = True
        discovery[root] = low[root] = timer
        timer += 1
        root_children = 0
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if not visited[neighbor]:
                    visited[neighbor] = True
                    discovery[neighbor] = low[neighbor] = timer
                    timer += 1
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    stack.append((neighbor, iter(adjacency[neighbor])))
                    advanced = True
                    break
                if neighbor != parent[node]:
                    low[node] = min(low[node], discovery[neighbor])
            if not advanced:
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
                    if above != root and low[node] >= discovery[above]:
                        points.add(above)
        if root_children > 1:
            points.add(root)
    return sorted(points)


def is_k_connected(graph: CommunicationGraph, k: int) -> bool:
    """``True`` if the graph stays connected after removing any ``k-1`` nodes.

    For ``k == 1`` this is ordinary connectivity and for ``k == 2`` the
    articulation-point test is used.  For larger ``k`` the check removes
    every subset of ``k-1`` nodes, which is exponential in ``k`` and meant
    for the small graphs exercised in tests and examples, not for
    production-sized networks.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if graph.node_count <= k:
        # A complete graph on k nodes is (k-1)-connected at most; follow the
        # usual convention that a graph on <= k nodes cannot be k-connected
        # unless it is the complete graph on k+1 nodes.
        return graph.node_count > k
    if not is_connected(graph):
        return False
    if k == 1:
        return True
    if minimum_degree(graph) < k:
        return False
    if k == 2:
        return not articulation_points(graph)
    from itertools import combinations

    nodes = list(graph.nodes())
    for removed in combinations(nodes, k - 1):
        survivors = [node for node in nodes if node not in removed]
        if not survivors:
            continue
        if not is_connected(graph.subgraph(survivors)):
            return False
    return True
