"""Conversion between :class:`CommunicationGraph` and :mod:`networkx`.

``networkx`` is an optional dependency used only as a cross-checking oracle
in the test suite and for users who want to run their own graph analytics
on the communication graphs produced by the simulator.  The import is done
lazily so the core library works without it.
"""

from __future__ import annotations

from typing import Any

from repro.graph.adjacency import CommunicationGraph


def to_networkx(graph: CommunicationGraph) -> Any:
    """Convert ``graph`` to a :class:`networkx.Graph`.

    Node positions (if known) are attached as the ``pos`` node attribute.

    Raises:
        ImportError: if networkx is not installed.
    """
    import networkx as nx

    result = nx.Graph()
    result.add_nodes_from(range(graph.node_count))
    result.add_edges_from(graph.edges())
    if graph.positions is not None:
        for node in graph.nodes():
            result.nodes[node]["pos"] = tuple(graph.positions[node])
    return result


def from_networkx(nx_graph: Any) -> CommunicationGraph:
    """Convert a :class:`networkx.Graph` with integer nodes ``0..n-1``.

    Raises:
        ValueError: if the node labels are not exactly ``0..n-1``.
    """
    nodes = sorted(nx_graph.nodes())
    n = len(nodes)
    if nodes != list(range(n)):
        raise ValueError(
            "from_networkx requires nodes labelled 0..n-1; relabel the graph first"
        )
    graph = CommunicationGraph(n)
    for u, v in nx_graph.edges():
        graph.add_edge(int(u), int(v))
    return graph
