"""Construction of communication graphs from placements.

Two strategies are provided and selected automatically by node count:

* **brute force** — vectorised all-pairs distance comparison, best for small
  ``n`` where building a grid index costs more than it saves;
* **grid** — bucket nodes into cells of side ``r`` and only compare nodes in
  neighbouring cells (see :class:`repro.geometry.spatial_index.GridIndex`).

Both produce exactly the same edge set; the ablation benchmark
``bench_ablation_index`` measures the crossover.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.distance import squared_distance_matrix
from repro.geometry.spatial_index import GridIndex
from repro.graph.adjacency import CommunicationGraph
from repro.types import Edge, Positions, as_positions

#: Below this many nodes the vectorised brute-force pass is faster than
#: building a grid index; determined empirically, see bench_ablation_index.
BRUTE_FORCE_THRESHOLD = 192


def neighbor_pairs(
    positions: Positions, transmitting_range: float, method: str = "auto"
) -> List[Edge]:
    """All unordered pairs of nodes within ``transmitting_range``.

    Args:
        positions: ``(n, d)`` placement.
        transmitting_range: common range ``r``; must be non-negative.
        method: ``"auto"``, ``"brute"`` or ``"grid"``.

    Returns:
        Sorted list of ``(u, v)`` pairs with ``u < v``.
    """
    if transmitting_range < 0:
        raise ConfigurationError(
            f"transmitting range must be non-negative, got {transmitting_range}"
        )
    points = as_positions(positions)
    n = points.shape[0]
    if n < 2:
        return []
    if method == "auto":
        method = "brute" if n <= BRUTE_FORCE_THRESHOLD else "grid"
    if transmitting_range == 0.0:
        # A zero range still connects coincident nodes (distance 0 <= 0);
        # the grid index cannot be built with a zero cell size, so always
        # answer this case with the brute-force pass.
        method = "brute"
    if method == "brute":
        return _brute_force_pairs(points, transmitting_range)
    if method == "grid":
        index = GridIndex(points, cell_size=transmitting_range)
        return sorted(index.neighbor_pairs(transmitting_range))
    raise ConfigurationError(
        f"unknown builder method {method!r}; expected 'auto', 'brute' or 'grid'"
    )


def _brute_force_pairs(points: np.ndarray, transmitting_range: float) -> List[Edge]:
    squared = squared_distance_matrix(points)
    limit = transmitting_range * transmitting_range
    upper = np.triu(squared <= limit, k=1)
    rows, cols = np.nonzero(upper)
    return [(int(u), int(v)) for u, v in zip(rows, cols)]


def build_communication_graph(
    positions: Positions,
    transmitting_range: float,
    method: str = "auto",
) -> CommunicationGraph:
    """Build the point graph induced by ``positions`` and ``transmitting_range``.

    The returned graph remembers both the positions and the range so that
    downstream metrics can relate component sizes back to ``n`` and report
    the generating ``r``.
    """
    points = as_positions(positions)
    edges = neighbor_pairs(points, transmitting_range, method=method)
    return CommunicationGraph(
        node_count=points.shape[0],
        edges=edges,
        positions=points,
        transmitting_range=transmitting_range,
    )


def adjacency_from_pairs(node_count: int, pairs: List[Edge]) -> List[List[int]]:
    """Plain adjacency lists from an edge list (helper for hot loops).

    Used by the simulator when only connectivity (not the full graph object)
    is required at each mobility step.
    """
    adjacency: List[List[int]] = [[] for _ in range(node_count)]
    for u, v in pairs:
        adjacency[u].append(v)
        adjacency[v].append(u)
    return adjacency
