"""Communication-graph substrate.

The paper models a network as a *point graph*: nodes at known positions,
with an undirected edge whenever two nodes are within the common
transmitting range ``r`` of each other.  This package provides

* :class:`~repro.graph.adjacency.CommunicationGraph` — an adjacency-list
  graph that remembers the positions and range that generated it,
* :func:`~repro.graph.builder.build_communication_graph` — grid-accelerated
  construction from a placement,
* connected-component machinery (union-find and BFS based),
* structural properties used by the analysis (isolated nodes, degrees,
  articulation points, k-connectivity), and
* conversion to/from :mod:`networkx` for cross-checking in the tests.
"""

from repro.graph.adjacency import CommunicationGraph
from repro.graph.builder import build_communication_graph, neighbor_pairs
from repro.graph.components import (
    ComponentSummary,
    connected_components,
    component_sizes,
    is_connected,
    largest_component_fraction,
    largest_component_size,
)
from repro.graph.properties import (
    degree_sequence,
    degree_statistics,
    has_isolated_node,
    is_k_connected,
    isolated_nodes,
    articulation_points,
    minimum_degree,
)
from repro.graph.traversal import bfs_order, bfs_tree, hop_counts, shortest_hop_path
from repro.graph.union_find import UnionFind

__all__ = [
    "CommunicationGraph",
    "ComponentSummary",
    "UnionFind",
    "articulation_points",
    "bfs_order",
    "bfs_tree",
    "build_communication_graph",
    "component_sizes",
    "connected_components",
    "degree_sequence",
    "degree_statistics",
    "has_isolated_node",
    "hop_counts",
    "is_connected",
    "is_k_connected",
    "isolated_nodes",
    "largest_component_fraction",
    "largest_component_size",
    "minimum_degree",
    "neighbor_pairs",
    "shortest_hop_path",
]
