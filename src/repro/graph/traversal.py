"""Breadth-first traversal utilities.

Hop-count metrics are not central to the paper but are natural companions
of its connectivity metrics (a connected network with very long multi-hop
paths has a different quality of service than a dense one), and the BFS
component finder doubles as an independent oracle against which the
union-find implementation is tested.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.graph.adjacency import CommunicationGraph


def bfs_order(graph: CommunicationGraph, source: int) -> List[int]:
    """Nodes reachable from ``source`` in breadth-first visitation order."""
    _check_source(graph, source)
    visited = [False] * graph.node_count
    visited[source] = True
    order = [source]
    queue = deque([source])
    adjacency = graph.adjacency_lists()
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if not visited[neighbor]:
                visited[neighbor] = True
                order.append(neighbor)
                queue.append(neighbor)
    return order


def bfs_tree(graph: CommunicationGraph, source: int) -> Dict[int, Optional[int]]:
    """Parent pointers of a BFS tree rooted at ``source``.

    The root maps to ``None``; unreachable nodes are absent from the result.
    """
    _check_source(graph, source)
    parents: Dict[int, Optional[int]] = {source: None}
    queue = deque([source])
    adjacency = graph.adjacency_lists()
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def hop_counts(graph: CommunicationGraph, source: int) -> List[Optional[int]]:
    """Hop distance from ``source`` to every node (``None`` if unreachable)."""
    _check_source(graph, source)
    distances: List[Optional[int]] = [None] * graph.node_count
    distances[source] = 0
    queue = deque([source])
    adjacency = graph.adjacency_lists()
    while queue:
        node = queue.popleft()
        base = distances[node]
        assert base is not None
        for neighbor in adjacency[node]:
            if distances[neighbor] is None:
                distances[neighbor] = base + 1
                queue.append(neighbor)
    return distances


def shortest_hop_path(
    graph: CommunicationGraph, source: int, target: int
) -> Optional[List[int]]:
    """A minimum-hop path from ``source`` to ``target`` or ``None``.

    The path includes both endpoints; a path from a node to itself is the
    single-element list ``[source]``.
    """
    _check_source(graph, source)
    _check_source(graph, target)
    if source == target:
        return [source]
    parents = bfs_tree(graph, source)
    if target not in parents:
        return None
    path = [target]
    while path[-1] != source:
        parent = parents[path[-1]]
        assert parent is not None
        path.append(parent)
    path.reverse()
    return path


def components_by_bfs(graph: CommunicationGraph) -> List[List[int]]:
    """Connected components found by repeated BFS (oracle for union-find)."""
    seen = [False] * graph.node_count
    components: List[List[int]] = []
    for start in range(graph.node_count):
        if seen[start]:
            continue
        members = bfs_order(graph, start)
        for node in members:
            seen[node] = True
        components.append(sorted(members))
    return components


def _check_source(graph: CommunicationGraph, node: int) -> None:
    if not 0 <= node < graph.node_count:
        raise IndexError(
            f"node {node} out of range for a graph with {graph.node_count} nodes"
        )
