"""Disjoint-set (union-find) data structure.

Connected components of the communication graph are needed at every
mobility step of every simulation iteration, so this is one of the hottest
code paths in the library.  The implementation uses union by size and path
halving, giving effectively constant amortised cost per operation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``."""

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._parent = list(range(size))
        self._size = [1] * size
        self._components = size

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def component_count(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._components

    def find(self, item: int) -> int:
        """Representative of the set containing ``item`` (with path halving)."""
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a: int, b: int) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns:
            ``True`` if a merge happened, ``False`` if they were already in
            the same set.
        """
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """``True`` if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, item: int) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def largest_set_size(self) -> int:
        """Size of the largest set (0 for an empty structure)."""
        if not self._parent:
            return 0
        return max(self._size[self.find(i)] for i in range(len(self._parent)))

    def groups(self) -> List[List[int]]:
        """All sets as lists of member indices (each sorted ascending)."""
        buckets: Dict[int, List[int]] = {}
        for item in range(len(self._parent)):
            buckets.setdefault(self.find(item), []).append(item)
        return [sorted(members) for members in buckets.values()]

    @classmethod
    def from_edges(cls, size: int, edges: Iterable[Tuple[int, int]]) -> "UnionFind":
        """Build a union-find over ``size`` items, merged along ``edges``."""
        structure = cls(size)
        for a, b in edges:
            structure.union(a, b)
        return structure
