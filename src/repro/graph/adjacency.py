"""The :class:`CommunicationGraph` structure.

A communication graph is the point graph induced by a placement and a common
transmitting range: nodes are indexed ``0 .. n-1``, and an undirected edge
connects two nodes whose Euclidean distance is at most ``r``.  The class
stores an adjacency list, the edge list, and (optionally) the positions and
range that generated it so downstream metrics such as "largest connected
component as a fraction of n" can be computed without re-deriving context.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.types import Edge, Positions, as_positions


class CommunicationGraph:
    """Undirected graph over nodes ``0 .. n-1`` with optional geometry.

    Args:
        node_count: number of nodes ``n``.
        edges: iterable of ``(u, v)`` pairs; self loops are ignored and
            duplicates are collapsed.
        positions: optional ``(n, d)`` array of node positions.
        transmitting_range: optional range ``r`` used to generate the edges.
    """

    def __init__(
        self,
        node_count: int,
        edges: Iterable[Edge] = (),
        positions: Optional[Positions] = None,
        transmitting_range: Optional[float] = None,
    ) -> None:
        if node_count < 0:
            raise ValueError(f"node_count must be non-negative, got {node_count}")
        self._node_count = node_count
        self._adjacency: List[Set[int]] = [set() for _ in range(node_count)]
        self._edge_set: Set[Edge] = set()
        self._positions = None if positions is None else as_positions(positions)
        if self._positions is not None and self._positions.shape[0] != node_count:
            raise ValueError(
                f"positions describe {self._positions.shape[0]} nodes, "
                f"but node_count is {node_count}"
            )
        self._transmitting_range = transmitting_range
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------ #
    # Construction and mutation
    # ------------------------------------------------------------------ #
    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``; self loops are ignored."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            return
        key = (u, v) if u < v else (v, u)
        if key in self._edge_set:
            return
        self._edge_set.add(key)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_edge(self, u: int, v: int) -> None:
        """Remove the undirected edge ``(u, v)`` if present."""
        key = (u, v) if u < v else (v, u)
        if key in self._edge_set:
            self._edge_set.discard(key)
            self._adjacency[u].discard(v)
            self._adjacency[v].discard(u)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._node_count:
            raise IndexError(
                f"node {node} out of range for a graph with {self._node_count} nodes"
            )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def node_count(self) -> int:
        """Number of nodes ``n``."""
        return self._node_count

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return len(self._edge_set)

    @property
    def positions(self) -> Optional[Positions]:
        """Node positions used to build the graph, if known."""
        return self._positions

    @property
    def transmitting_range(self) -> Optional[float]:
        """Common transmitting range used to build the graph, if known."""
        return self._transmitting_range

    def nodes(self) -> range:
        """Iterable of node indices."""
        return range(self._node_count)

    def edges(self) -> List[Edge]:
        """Sorted list of undirected edges as ``(u, v)`` with ``u < v``."""
        return sorted(self._edge_set)

    def has_edge(self, u: int, v: int) -> bool:
        """``True`` if the undirected edge ``(u, v)`` exists."""
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        return key in self._edge_set

    def neighbors(self, node: int) -> Set[int]:
        """Set of neighbours of ``node`` (a copy; safe to mutate)."""
        self._check_node(node)
        return set(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        self._check_node(node)
        return len(self._adjacency[node])

    def degrees(self) -> List[int]:
        """Degree of every node, indexed by node id."""
        return [len(adj) for adj in self._adjacency]

    def adjacency_lists(self) -> List[Set[int]]:
        """Internal adjacency sets (not copied — treat as read only)."""
        return self._adjacency

    def adjacency_matrix(self) -> np.ndarray:
        """Dense boolean adjacency matrix (for small graphs / tests)."""
        matrix = np.zeros((self._node_count, self._node_count), dtype=bool)
        for u, v in self._edge_set:
            matrix[u, v] = True
            matrix[v, u] = True
        return matrix

    def subgraph(self, nodes: Sequence[int]) -> "CommunicationGraph":
        """Induced subgraph on ``nodes`` with node ids relabelled to 0..k-1."""
        ordered = list(nodes)
        mapping: Dict[int, int] = {old: new for new, old in enumerate(ordered)}
        sub_positions = None
        if self._positions is not None:
            sub_positions = self._positions[ordered]
        sub = CommunicationGraph(
            len(ordered),
            positions=sub_positions,
            transmitting_range=self._transmitting_range,
        )
        member = set(ordered)
        for u, v in self._edge_set:
            if u in member and v in member:
                sub.add_edge(mapping[u], mapping[v])
        return sub

    def copy(self) -> "CommunicationGraph":
        """Deep copy of the graph (positions are shared, edges copied)."""
        return CommunicationGraph(
            self._node_count,
            edges=self._edge_set,
            positions=self._positions,
            transmitting_range=self._transmitting_range,
        )

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._node_count))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CommunicationGraph(nodes={self._node_count}, "
            f"edges={self.edge_count}, r={self._transmitting_range!r})"
        )
