"""Connected components of a communication graph.

The two central statistics of the paper's simulation study are computed
here: whether the graph is connected, and the size of its largest connected
component (reported as a fraction of ``n`` in Figures 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.adjacency import CommunicationGraph
from repro.graph.union_find import UnionFind


@dataclass(frozen=True)
class ComponentSummary:
    """Aggregate view of the component structure of one graph."""

    node_count: int
    component_count: int
    largest_size: int
    sizes: tuple

    @property
    def is_connected(self) -> bool:
        """``True`` when every node is in a single component.

        The empty graph is treated as connected (it has no pair of nodes
        that fail to communicate), matching the convention of the paper's
        simulator.
        """
        return self.component_count <= 1

    @property
    def largest_fraction(self) -> float:
        """Largest component size divided by ``n`` (0 for an empty graph)."""
        if self.node_count == 0:
            return 0.0
        return self.largest_size / self.node_count


def connected_components(graph: CommunicationGraph) -> List[List[int]]:
    """All connected components as lists of node indices (sorted)."""
    structure = UnionFind(graph.node_count)
    for u, v in graph.edges():
        structure.union(u, v)
    return structure.groups()


def component_sizes(graph: CommunicationGraph) -> List[int]:
    """Sizes of all connected components, sorted descending."""
    return sorted((len(c) for c in connected_components(graph)), reverse=True)


def summarize_components(graph: CommunicationGraph) -> ComponentSummary:
    """Compute the :class:`ComponentSummary` of ``graph``."""
    sizes = component_sizes(graph)
    return ComponentSummary(
        node_count=graph.node_count,
        component_count=len(sizes),
        largest_size=sizes[0] if sizes else 0,
        sizes=tuple(sizes),
    )


def is_connected(graph: CommunicationGraph) -> bool:
    """``True`` if the graph has at most one connected component."""
    if graph.node_count <= 1:
        return True
    # Quick reject: a connected graph on n nodes needs at least n-1 edges.
    if graph.edge_count < graph.node_count - 1:
        return False
    structure = UnionFind(graph.node_count)
    for u, v in graph.edges():
        structure.union(u, v)
        if structure.component_count == 1:
            return True
    return structure.component_count == 1


def largest_component_size(graph: CommunicationGraph) -> int:
    """Number of nodes in the largest connected component."""
    sizes = component_sizes(graph)
    return sizes[0] if sizes else 0


def largest_component_fraction(graph: CommunicationGraph) -> float:
    """Largest component size as a fraction of the total node count."""
    if graph.node_count == 0:
        return 0.0
    return largest_component_size(graph) / graph.node_count
