"""Command line interface.

``adhoc-connectivity`` (or ``python -m repro``) exposes the registered
experiments::

    adhoc-connectivity list
    adhoc-connectivity run fig2 --scale smoke
    adhoc-connectivity run fig7 --scale default --output fig7.json
    adhoc-connectivity run fig2 --scale paper --workers 8
    adhoc-connectivity run fig2 --scale paper --sweep-workers 4 --workers 2
    adhoc-connectivity run fig2 --scale paper --total-workers 8
    adhoc-connectivity run fig2 --scale paper --workers 8 --shard-steps 2500
    adhoc-connectivity run fig2 --scale paper --transport shm
    adhoc-connectivity stationary --side 1024 --nodes 32 --workers 4
    adhoc-connectivity campaign run grid.toml --store .repro-store
    adhoc-connectivity campaign run grid.toml --total-workers 8
    adhoc-connectivity campaign status grid.toml --store .repro-store
    adhoc-connectivity campaign report --store .repro-store
    adhoc-connectivity campaign report --store .repro-store --chrome-trace out.json
    adhoc-connectivity campaign clean grid.toml --store .repro-store
    adhoc-connectivity campaign gc --store .repro-store --max-bytes 500000000
    adhoc-connectivity campaign serve grid.toml --port 8750 --max-retries 2
    adhoc-connectivity campaign work --server http://127.0.0.1:8750

``campaign run --total-workers W`` is the single budget knob: the whole
campaign shares one pool of ``W`` workers, independent scenarios run
concurrently under it (the campaign scheduler), and workers freed by
short scenarios rebalance into the scenarios still running.  Results are
bit-identical to a serial run for every ``W``.

``campaign serve`` + ``campaign work`` are the distributed variant of
the same grid: the serving process exposes its result store and a
pull-based work queue over HTTP, workers on any host lease tasks and
publish results back, and a worker that goes silent mid-lease is
re-enqueued under the same retry policy ``campaign run`` uses.  The
resulting store is bit-identical to a single-host run.

The CLI is intentionally thin: it parses arguments, calls the experiment
or campaign layer and prints the rendered tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.backend import backend_names
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.progress import as_text as progress_as_text
from repro.telemetry import report as telemetry_report
from repro.experiments import (
    get_experiment,
    list_experiments,
    render_sweep,
    save_sweep,
)
from repro.experiments.registry import scale_by_name
from repro.simulation.runner import stationary_critical_range
from repro.store import ResultStore

#: Default result-store root of the campaign subcommands.
DEFAULT_STORE = ".repro-store"


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="adhoc-connectivity",
        description=(
            "Reproduction of 'An Evaluation of Connectivity in Mobile "
            "Wireless Ad Hoc Networks' (Santi & Blough, DSN 2002)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run a registered experiment")
    run_parser.add_argument("experiment", help="experiment identifier, e.g. fig2")
    run_parser.add_argument(
        "--scale",
        default="default",
        choices=["smoke", "default", "paper"],
        help="size preset (smoke: seconds, default: minutes, paper: hours)",
    )
    run_parser.add_argument(
        "--output",
        default=None,
        help="optional path (.json or .csv) to save the sweep result",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the simulation iterations within one "
            "parameter value (results are bit-identical for every value)"
        ),
    )
    run_parser.add_argument(
        "--sweep-workers",
        type=int,
        default=None,
        help=(
            "parameter values of the sweep measured concurrently, each in "
            "its own process; the total budget is sweep-workers x workers"
        ),
    )
    run_parser.add_argument(
        "--total-workers",
        type=int,
        default=None,
        help=(
            "split one total process budget between the sweep and "
            "iteration levels automatically (overrides --workers and "
            "--sweep-workers)"
        ),
    )
    run_parser.add_argument(
        "--shard-steps",
        type=int,
        default=None,
        help=(
            "split each iteration's trajectory into shards of this many "
            "frames executed by different workers (default: automatic "
            "when workers exceed the iteration count; bit-identical "
            "either way)"
        ),
    )
    run_parser.add_argument(
        "--transport",
        default=None,
        choices=["auto", "pickle", "shm"],
        help=(
            "worker-to-parent result transport: shared memory (zero-copy "
            "adoption), pickle, or auto (shared memory for large payloads "
            "only; the default). Results are bit-identical for every choice"
        ),
    )
    run_parser.add_argument(
        "--backend",
        default=None,
        choices=list(backend_names()),
        help=(
            "array backend for the connectivity kernels (default: numpy). "
            "Unlike the worker/transport knobs this selects a different "
            "execution environment and therefore different cache keys"
        ),
    )

    stationary_parser = subparsers.add_parser(
        "stationary", help="estimate the stationary critical range"
    )
    stationary_parser.add_argument("--side", type=float, required=True, help="region side l")
    stationary_parser.add_argument("--nodes", type=int, required=True, help="node count n")
    stationary_parser.add_argument("--dimension", type=int, default=2)
    stationary_parser.add_argument("--iterations", type=int, default=200)
    stationary_parser.add_argument("--confidence", type=float, default=0.99)
    stationary_parser.add_argument("--seed", type=int, default=None)
    stationary_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the placement draws",
    )
    stationary_parser.add_argument(
        "--backend",
        default="numpy",
        choices=list(backend_names()),
        help="array backend for the connectivity kernels",
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run declarative campaign grids against a cached result store",
    )
    campaign_commands = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    def add_spec_and_store(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", help="campaign spec file (.toml or .json)")
        sub.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"result-store root directory (default: {DEFAULT_STORE})",
        )

    campaign_run = campaign_commands.add_parser(
        "run", help="run every scenario of a campaign spec"
    )
    add_spec_and_store(campaign_run)
    campaign_run.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "reuse intact store entries (default); --no-resume evicts the "
            "spec's entries first and recomputes from scratch"
        ),
    )
    campaign_run.add_argument(
        "--output-dir",
        default=None,
        help="optional directory to also save one <scenario>.json per sweep",
    )
    campaign_run.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario tables"
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "iteration-level worker processes per parameter value "
            "(serial scenario loop)"
        ),
    )
    campaign_run.add_argument(
        "--sweep-workers",
        type=int,
        default=None,
        help=(
            "parameter values of each scenario measured concurrently "
            "(serial scenario loop)"
        ),
    )
    campaign_run.add_argument(
        "--total-workers",
        type=int,
        default=None,
        help=(
            "one total worker budget for the whole campaign: scenarios "
            "run concurrently under the campaign scheduler and freed "
            "workers rebalance into still-running scenarios (overrides "
            "--workers and --sweep-workers; results are bit-identical "
            "for every budget)"
        ),
    )
    campaign_run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "failed attempts a task may accumulate beyond its first before "
            "it is quarantined as a poison task and the campaign continues "
            "without it (default: 0 — the first failure aborts the run); "
            "crashed workers, task exceptions and timed-out tasks are "
            "retried with backoff on a respawned pool, bit-identically "
            "when the retry succeeds"
        ),
    )
    campaign_run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "seconds one scheduled task may run before its pool is presumed "
            "hung and terminated (needs --total-workers; default: no limit)"
        ),
    )
    campaign_run.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base of the capped exponential delay between retry attempts "
            "(default: 0.5)"
        ),
    )
    campaign_run.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "record a per-run trace under <store>/telemetry (default); "
            "--no-telemetry runs untraced"
        ),
    )

    campaign_serve = campaign_commands.add_parser(
        "serve",
        help=(
            "run a campaign as the serving side of a distributed fan-out: "
            "start the HTTP result server + work queue, then drive the "
            "grid through workers started with 'campaign work'"
        ),
    )
    add_spec_and_store(campaign_serve)
    campaign_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface the result server binds (default: 127.0.0.1)",
    )
    campaign_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="server port (default: 0 — the OS picks a free one)",
    )
    campaign_serve.add_argument(
        "--url-file",
        default=None,
        metavar="PATH",
        help=(
            "write the resolved server URL here once listening (hand it "
            "to 'campaign work --server'; essential with --port 0)"
        ),
    )
    campaign_serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "how long a leased task lives without a worker heartbeat "
            "before it is presumed lost and re-enqueued (default: 30)"
        ),
    )
    campaign_serve.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "failed attempts a task may accumulate beyond its first — "
            "published worker errors and expired leases both count — "
            "before it is quarantined as a poison task (default: 0; the "
            "first failure aborts the serve)"
        ),
    )
    campaign_serve.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base of the capped exponential delay before a charged task "
            "is leasable again (default: 0.5)"
        ),
    )
    campaign_serve.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "reuse intact store entries (default); --no-resume evicts the "
            "spec's entries first and recomputes from scratch"
        ),
    )
    campaign_serve.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "record a per-run trace under <store>/telemetry (default); "
            "--no-telemetry runs untraced"
        ),
    )
    campaign_serve.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario tables"
    )

    campaign_work = campaign_commands.add_parser(
        "work",
        help=(
            "pull-based campaign worker: lease tasks from a 'campaign "
            "serve' URL, heartbeat while computing, publish results back "
            "(needs no spec and no local store)"
        ),
    )
    campaign_work.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="base URL of the serving process (see --url-file on serve)",
    )
    campaign_work.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="sleep between polls while no task is ready (default: 0.5)",
    )
    campaign_work.add_argument(
        "--worker-id",
        default=None,
        help="lease owner name reported to the server (default: host:pid)",
    )
    campaign_work.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-task progress lines",
    )

    campaign_report = campaign_commands.add_parser(
        "report",
        help=(
            "summarise a recorded campaign run: slowest spans, cache hit "
            "rates, retry/quarantine counts, per-scenario wall clock"
        ),
    )
    campaign_report.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result-store root directory (default: {DEFAULT_STORE})",
    )
    campaign_report.add_argument(
        "--run",
        default=None,
        metavar="RUN_ID",
        help="run id under <store>/telemetry (default: the latest run)",
    )
    campaign_report.add_argument(
        "--limit",
        type=int,
        default=10,
        help="slowest spans listed (default: 10)",
    )
    campaign_report.add_argument(
        "--json",
        action="store_true",
        help="print the full run report as JSON instead of text",
    )
    campaign_report.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help=(
            "also export the run in Chrome trace_event format (open in "
            "chrome://tracing or Perfetto)"
        ),
    )

    campaign_status = campaign_commands.add_parser(
        "status",
        help=(
            "report per-scenario store progress without running "
            "(value- and iteration-granular coverage)"
        ),
    )
    add_spec_and_store(campaign_status)

    campaign_clean = campaign_commands.add_parser(
        "clean", help="evict every store entry the spec's grid addresses"
    )
    add_spec_and_store(campaign_clean)

    campaign_gc = campaign_commands.add_parser(
        "gc",
        help=(
            "garbage-collect the result store: evict entries older than "
            "--max-age, then the least recently used until under "
            "--max-bytes (store-wide; needs no spec)"
        ),
    )
    campaign_gc.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result-store root directory (default: {DEFAULT_STORE})",
    )
    campaign_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget the surviving entries must fit in (LRU eviction)",
    )
    campaign_gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        help="evict entries not read or written for this many seconds",
    )
    campaign_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what the pass would evict without removing anything",
    )
    campaign_gc.add_argument(
        "--campaign",
        default=None,
        metavar="NAME",
        help=(
            "restrict the pass to entries written by the named campaign "
            "(matched against the entry metadata; default: the whole store)"
        ),
    )
    return parser


def _latest_scenario_activity(store: ResultStore) -> dict:
    """Per-scenario wall/last-activity of the store's latest recorded run.

    ``campaign status`` stays byte-identical when no telemetry run exists
    (or the report cannot be read) — this helper then returns an empty
    mapping and no suffix is printed.
    """
    try:
        run_dir = telemetry_report.latest_run_dir(
            Path(store.root) / "telemetry"
        )
        if run_dir is None:
            return {}
        report = telemetry_report.load_or_build_report(run_dir)
        scenarios = report.get("scenarios")
        return scenarios if isinstance(scenarios, dict) else {}
    except Exception:
        return {}


def _campaign_report_main(arguments: argparse.Namespace) -> int:
    """The ``campaign report`` subcommand (needs no spec)."""
    telemetry_root = Path(arguments.store) / "telemetry"
    if arguments.run is not None:
        run_dir = telemetry_root / arguments.run
        if not run_dir.is_dir():
            print(
                f"No run {arguments.run!r} under {telemetry_root}",
                file=sys.stderr,
            )
            return 1
    else:
        run_dir = telemetry_report.latest_run_dir(telemetry_root)
        if run_dir is None:
            print(
                f"No recorded runs under {telemetry_root} (run a campaign "
                f"with telemetry enabled first)",
                file=sys.stderr,
            )
            return 1
    report = telemetry_report.load_or_build_report(run_dir)
    if arguments.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(telemetry_report.render_report(report, limit=arguments.limit))
    if arguments.chrome_trace:
        exported = telemetry_report.chrome_trace(run_dir)
        path = Path(arguments.chrome_trace)
        path.write_text(
            json.dumps(exported, default=str), encoding="utf-8"
        )
        print(f"Chrome trace written to {path}")
    return 0


def _campaign_main(arguments: argparse.Namespace) -> int:
    """Dispatch the ``campaign run / status / clean / gc`` subcommands."""
    if arguments.campaign_command == "gc":
        store = ResultStore(arguments.store)
        report = store.gc(
            max_bytes=arguments.max_bytes,
            max_age=arguments.max_age,
            dry_run=arguments.dry_run,
            campaign=arguments.campaign,
        )
        scope = (
            f"campaign {arguments.campaign!r} in store {store.root}"
            if arguments.campaign
            else f"Store {store.root}"
        )
        verb = "would evict" if arguments.dry_run else "evicted"
        print(
            f"{scope}: scanned {report.scanned} entr"
            f"{'y' if report.scanned == 1 else 'ies'}, {verb} "
            f"{report.evicted} ({report.freed_bytes} bytes freed, "
            f"{report.remaining_bytes} bytes remain)"
        )
        return 0

    if arguments.campaign_command == "report":
        return _campaign_report_main(arguments)

    if arguments.campaign_command == "work":
        # A worker needs neither spec nor store: everything it runs
        # arrives over the wire from the serving process.
        from repro.distributed import run_worker

        say = (lambda message: None) if arguments.quiet else print
        completed = run_worker(
            arguments.server,
            poll_interval=arguments.poll_interval,
            worker_id=arguments.worker_id,
            say=say,
        )
        print(f"Worker done: {completed} task(s) completed.")
        return 0

    spec = CampaignSpec.load(arguments.spec)
    store = ResultStore(arguments.store)

    if arguments.campaign_command == "serve":
        from repro.distributed import serve_campaign

        print(
            f"Campaign {spec.name!r}: {spec.scenario_count()} scenario(s), "
            f"store {store.root}"
        )
        result = serve_campaign(
            spec,
            store,
            host=arguments.host,
            port=arguments.port,
            lease_seconds=arguments.lease_seconds,
            max_retries=arguments.max_retries,
            retry_backoff=arguments.retry_backoff,
            telemetry_enabled=arguments.telemetry,
            resume=arguments.resume,
            progress=progress_as_text(print),
            url_file=(
                Path(arguments.url_file) if arguments.url_file else None
            ),
            on_ready=lambda url: print(f"Serving at {url}"),
        )
        quarantined = result.quarantined_tasks
        summary = (
            f"\nDone: {result.cache_hits} cache hit(s), "
            f"{result.computed_values} value(s) computed."
        )
        if quarantined:
            summary += (
                f" WARNING: {quarantined} task(s) quarantined — partial "
                f"results kept; see 'campaign status', drop the records "
                f"with 'campaign clean'."
            )
        print(summary)
        if not arguments.quiet:
            for outcome in result.outcomes:
                if outcome.sweep is None:
                    print(
                        f"\n{outcome.scenario.describe()}: no complete sweep "
                        f"({outcome.quarantined_values} quarantined task(s))"
                    )
                    continue
                print()
                print(
                    render_sweep(
                        outcome.sweep,
                        title=f"{outcome.scenario.describe()} "
                        f"({'cached' if outcome.cache_hit else 'computed'})",
                    )
                )
        return 1 if quarantined else 0

    runner = CampaignRunner(
        spec,
        store,
        workers=getattr(arguments, "workers", None),
        sweep_workers=getattr(arguments, "sweep_workers", None),
        total_workers=getattr(arguments, "total_workers", None),
        max_retries=getattr(arguments, "max_retries", None),
        task_timeout=getattr(arguments, "task_timeout", None),
        retry_backoff=getattr(arguments, "retry_backoff", None),
        telemetry=getattr(arguments, "telemetry", None),
    )

    if arguments.campaign_command == "run":
        print(
            f"Campaign {spec.name!r}: {spec.scenario_count()} scenario(s), "
            f"store {store.root}"
        )
        result = runner.run(
            resume=arguments.resume, progress=progress_as_text(print)
        )
        quarantined = result.quarantined_tasks
        summary = (
            f"\nDone: {result.cache_hits} cache hit(s), "
            f"{result.computed_values} value(s) computed."
        )
        if quarantined:
            summary += (
                f" WARNING: {quarantined} task(s) quarantined — partial "
                f"results kept; see 'campaign status', drop the records "
                f"with 'campaign clean'."
            )
        print(summary)
        for outcome in result.outcomes:
            if outcome.sweep is None:
                print(
                    f"\n{outcome.scenario.describe()}: no complete sweep "
                    f"({outcome.quarantined_values} quarantined task(s))"
                )
                continue
            if not arguments.quiet:
                print()
                print(
                    render_sweep(
                        outcome.sweep,
                        title=f"{outcome.scenario.describe()} "
                        f"({'cached' if outcome.cache_hit else 'computed'})",
                    )
                )
            if arguments.output_dir:
                safe_name = outcome.scenario.scenario_id.replace("/", "_")
                path = save_sweep(
                    outcome.sweep,
                    Path(arguments.output_dir) / f"{safe_name}.json",
                    metadata={
                        "campaign": spec.name,
                        "scenario": outcome.scenario.scenario_id,
                    },
                )
                print(f"Saved {outcome.scenario.scenario_id} to {path}")
        return 1 if quarantined else 0

    if arguments.campaign_command == "status":
        statuses = runner.status()
        complete = sum(1 for status in statuses if status.complete)
        print(
            f"Campaign {spec.name!r}: {complete}/{len(statuses)} scenario(s) "
            f"complete in store {store.root}"
        )
        activity = _latest_scenario_activity(store)
        for status in statuses:
            line = f"  {status.scenario.describe():48s} {status.state}"
            entry = activity.get(status.scenario.scenario_id)
            if entry is not None:
                wall = entry.get("wall_seconds")
                if isinstance(wall, (int, float)):
                    line += f"  [wall {wall:.2f}s"
                    moment = entry.get("last_activity")
                    if isinstance(moment, (int, float)):
                        stamp = time.strftime(
                            "%Y-%m-%d %H:%M:%S", time.localtime(moment)
                        )
                        line += f", last activity {stamp}"
                    line += "]"
            print(line)
        return 0

    if arguments.campaign_command == "clean":
        removed = runner.clean()
        print(
            f"Campaign {spec.name!r}: evicted {removed} store entr"
            f"{'y' if removed == 1 else 'ies'} from {store.root}"
        )
        return 0

    raise AssertionError(f"unknown campaign command {arguments.campaign_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        for experiment in list_experiments():
            print(f"{experiment.identifier:28s} {experiment.title}")
            print(f"{'':28s} ({experiment.paper_reference})")
        return 0

    if arguments.command == "run":
        experiment = get_experiment(arguments.experiment)
        print(f"Running {experiment.identifier}: {experiment.title}")
        print(experiment.description)
        scale = scale_by_name(arguments.scale)
        if arguments.total_workers is not None:
            # Split for this experiment's actual sweep width (system sides
            # for fig2-6, parameter points for fig7-9).
            scale = experiment.with_worker_budget(scale, arguments.total_workers)
        else:
            if arguments.workers is not None:
                scale = scale.with_workers(arguments.workers)
            if arguments.sweep_workers is not None:
                scale = scale.with_sweep_workers(arguments.sweep_workers)
        if arguments.shard_steps is not None:
            scale = scale.with_shard_steps(arguments.shard_steps)
        if arguments.transport is not None:
            scale = scale.with_transport(arguments.transport)
        if arguments.backend is not None:
            scale = scale.with_backend(arguments.backend)
        sweep = experiment.run(scale)
        print()
        print(render_sweep(sweep, title=f"{experiment.identifier} ({arguments.scale} scale)"))
        if arguments.output:
            path = save_sweep(
                sweep,
                arguments.output,
                metadata={
                    "experiment": experiment.identifier,
                    "scale": arguments.scale,
                },
            )
            print(f"\nSaved results to {path}")
        return 0

    if arguments.command == "campaign":
        return _campaign_main(arguments)

    if arguments.command == "stationary":
        value = stationary_critical_range(
            node_count=arguments.nodes,
            side=arguments.side,
            dimension=arguments.dimension,
            iterations=arguments.iterations,
            seed=arguments.seed,
            confidence=arguments.confidence,
            workers=arguments.workers,
            backend=arguments.backend,
        )
        print(
            f"rstationary(n={arguments.nodes}, l={arguments.side}, "
            f"d={arguments.dimension}, confidence={arguments.confidence}) = {value:.4f}"
        )
        return 0

    parser.error(f"unknown command {arguments.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
