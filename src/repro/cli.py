"""Command line interface.

``adhoc-connectivity`` (or ``python -m repro``) exposes the registered
experiments::

    adhoc-connectivity list
    adhoc-connectivity run fig2 --scale smoke
    adhoc-connectivity run fig7 --scale default --output fig7.json
    adhoc-connectivity run fig2 --scale paper --workers 8
    adhoc-connectivity run fig2 --scale paper --sweep-workers 4 --workers 2
    adhoc-connectivity run fig2 --scale paper --total-workers 8
    adhoc-connectivity run fig2 --scale paper --workers 8 --shard-steps 2500
    adhoc-connectivity run fig2 --scale paper --transport shm
    adhoc-connectivity stationary --side 1024 --nodes 32 --workers 4
    adhoc-connectivity campaign run grid.toml --store .repro-store
    adhoc-connectivity campaign run grid.toml --total-workers 8
    adhoc-connectivity campaign status grid.toml --store .repro-store
    adhoc-connectivity campaign report --store .repro-store
    adhoc-connectivity campaign report --store .repro-store --chrome-trace out.json
    adhoc-connectivity campaign clean grid.toml --store .repro-store
    adhoc-connectivity campaign gc --store .repro-store --max-bytes 500000000
    adhoc-connectivity campaign serve grid.toml --port 8750 --max-retries 2
    adhoc-connectivity campaign work --server http://127.0.0.1:8750
    adhoc-connectivity query serve grid.toml --store .repro-store --port 8800
    adhoc-connectivity query ask --url http://127.0.0.1:8800 \\
        --nodes 32 --probability 0.9

``campaign run --total-workers W`` is the single budget knob: the whole
campaign shares one pool of ``W`` workers, independent scenarios run
concurrently under it (the campaign scheduler), and workers freed by
short scenarios rebalance into the scenarios still running.  Results are
bit-identical to a serial run for every ``W``.

``campaign serve`` + ``campaign work`` are the distributed variant of
the same grid: the serving process exposes its result store and a
pull-based work queue over HTTP, workers on any host lease tasks and
publish results back, and a worker that goes silent mid-lease is
re-enqueued under the same retry policy ``campaign run`` uses.  The
resulting store is bit-identical to a single-host run.

``query serve`` + ``query ask`` flip the batch pipeline into serving:
the query service answers critical-range / connectivity-probability
questions over a campaign's store at interactive latency, and questions
it cannot answer confidently come back flagged ``refine=true`` with a
refinement simulation enqueued for any attached ``campaign work``
worker (point it at the printed *fill* URL).

The CLI is intentionally thin: it parses arguments, calls the experiment
or campaign layer and prints the rendered tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.backend import backend_names
from repro.campaigns import CampaignRunner, CampaignSpec
from repro.campaigns.progress import as_text as progress_as_text
from repro.telemetry import report as telemetry_report
from repro.experiments import (
    get_experiment,
    list_experiments,
    render_sweep,
    save_sweep,
)
from repro.experiments.registry import scale_by_name
from repro.simulation.runner import stationary_critical_range
from repro.store import ResultStore

#: Default result-store root of the campaign subcommands.
DEFAULT_STORE = ".repro-store"


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the CLI."""
    parser = argparse.ArgumentParser(
        prog="adhoc-connectivity",
        description=(
            "Reproduction of 'An Evaluation of Connectivity in Mobile "
            "Wireless Ad Hoc Networks' (Santi & Blough, DSN 2002)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the registered experiments")

    run_parser = subparsers.add_parser("run", help="run a registered experiment")
    run_parser.add_argument("experiment", help="experiment identifier, e.g. fig2")
    run_parser.add_argument(
        "--scale",
        default="default",
        choices=["smoke", "default", "paper"],
        help="size preset (smoke: seconds, default: minutes, paper: hours)",
    )
    run_parser.add_argument(
        "--output",
        default=None,
        help="optional path (.json or .csv) to save the sweep result",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the simulation iterations within one "
            "parameter value (results are bit-identical for every value)"
        ),
    )
    run_parser.add_argument(
        "--sweep-workers",
        type=int,
        default=None,
        help=(
            "parameter values of the sweep measured concurrently, each in "
            "its own process; the total budget is sweep-workers x workers"
        ),
    )
    run_parser.add_argument(
        "--total-workers",
        type=int,
        default=None,
        help=(
            "split one total process budget between the sweep and "
            "iteration levels automatically (overrides --workers and "
            "--sweep-workers)"
        ),
    )
    run_parser.add_argument(
        "--shard-steps",
        type=int,
        default=None,
        help=(
            "split each iteration's trajectory into shards of this many "
            "frames executed by different workers (default: automatic "
            "when workers exceed the iteration count; bit-identical "
            "either way)"
        ),
    )
    run_parser.add_argument(
        "--transport",
        default=None,
        choices=["auto", "pickle", "shm"],
        help=(
            "worker-to-parent result transport: shared memory (zero-copy "
            "adoption), pickle, or auto (shared memory for large payloads "
            "only; the default). Results are bit-identical for every choice"
        ),
    )
    run_parser.add_argument(
        "--backend",
        default=None,
        choices=list(backend_names()),
        help=(
            "array backend for the connectivity kernels (default: numpy). "
            "Unlike the worker/transport knobs this selects a different "
            "execution environment and therefore different cache keys"
        ),
    )

    stationary_parser = subparsers.add_parser(
        "stationary", help="estimate the stationary critical range"
    )
    stationary_parser.add_argument("--side", type=float, required=True, help="region side l")
    stationary_parser.add_argument("--nodes", type=int, required=True, help="node count n")
    stationary_parser.add_argument("--dimension", type=int, default=2)
    stationary_parser.add_argument("--iterations", type=int, default=200)
    stationary_parser.add_argument("--confidence", type=float, default=0.99)
    stationary_parser.add_argument("--seed", type=int, default=None)
    stationary_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the placement draws",
    )
    stationary_parser.add_argument(
        "--backend",
        default="numpy",
        choices=list(backend_names()),
        help="array backend for the connectivity kernels",
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="run declarative campaign grids against a cached result store",
    )
    campaign_commands = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    def add_spec_and_store(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("spec", help="campaign spec file (.toml or .json)")
        sub.add_argument(
            "--store",
            default=DEFAULT_STORE,
            help=f"result-store root directory (default: {DEFAULT_STORE})",
        )

    campaign_run = campaign_commands.add_parser(
        "run", help="run every scenario of a campaign spec"
    )
    add_spec_and_store(campaign_run)
    campaign_run.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "reuse intact store entries (default); --no-resume evicts the "
            "spec's entries first and recomputes from scratch"
        ),
    )
    campaign_run.add_argument(
        "--output-dir",
        default=None,
        help="optional directory to also save one <scenario>.json per sweep",
    )
    campaign_run.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario tables"
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "iteration-level worker processes per parameter value "
            "(serial scenario loop)"
        ),
    )
    campaign_run.add_argument(
        "--sweep-workers",
        type=int,
        default=None,
        help=(
            "parameter values of each scenario measured concurrently "
            "(serial scenario loop)"
        ),
    )
    campaign_run.add_argument(
        "--total-workers",
        type=int,
        default=None,
        help=(
            "one total worker budget for the whole campaign: scenarios "
            "run concurrently under the campaign scheduler and freed "
            "workers rebalance into still-running scenarios (overrides "
            "--workers and --sweep-workers; results are bit-identical "
            "for every budget)"
        ),
    )
    campaign_run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "failed attempts a task may accumulate beyond its first before "
            "it is quarantined as a poison task and the campaign continues "
            "without it (default: 0 — the first failure aborts the run); "
            "crashed workers, task exceptions and timed-out tasks are "
            "retried with backoff on a respawned pool, bit-identically "
            "when the retry succeeds"
        ),
    )
    campaign_run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "seconds one scheduled task may run before its pool is presumed "
            "hung and terminated (needs --total-workers; default: no limit)"
        ),
    )
    campaign_run.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base of the capped exponential delay between retry attempts "
            "(default: 0.5)"
        ),
    )
    campaign_run.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "record a per-run trace under <store>/telemetry (default); "
            "--no-telemetry runs untraced"
        ),
    )

    campaign_serve = campaign_commands.add_parser(
        "serve",
        help=(
            "run a campaign as the serving side of a distributed fan-out: "
            "start the HTTP result server + work queue, then drive the "
            "grid through workers started with 'campaign work'"
        ),
    )
    add_spec_and_store(campaign_serve)
    campaign_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface the result server binds (default: 127.0.0.1)",
    )
    campaign_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="server port (default: 0 — the OS picks a free one)",
    )
    campaign_serve.add_argument(
        "--url-file",
        default=None,
        metavar="PATH",
        help=(
            "write the resolved server URL here once listening (hand it "
            "to 'campaign work --server'; essential with --port 0)"
        ),
    )
    campaign_serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help=(
            "how long a leased task lives without a worker heartbeat "
            "before it is presumed lost and re-enqueued (default: 30)"
        ),
    )
    campaign_serve.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "failed attempts a task may accumulate beyond its first — "
            "published worker errors and expired leases both count — "
            "before it is quarantined as a poison task (default: 0; the "
            "first failure aborts the serve)"
        ),
    )
    campaign_serve.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "base of the capped exponential delay before a charged task "
            "is leasable again (default: 0.5)"
        ),
    )
    campaign_serve.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "reuse intact store entries (default); --no-resume evicts the "
            "spec's entries first and recomputes from scratch"
        ),
    )
    campaign_serve.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "record a per-run trace under <store>/telemetry (default); "
            "--no-telemetry runs untraced"
        ),
    )
    campaign_serve.add_argument(
        "--quiet", action="store_true", help="suppress the per-scenario tables"
    )

    campaign_work = campaign_commands.add_parser(
        "work",
        help=(
            "pull-based campaign worker: lease tasks from a 'campaign "
            "serve' URL, heartbeat while computing, publish results back "
            "(needs no spec and no local store)"
        ),
    )
    campaign_work.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="base URL of the serving process (see --url-file on serve)",
    )
    campaign_work.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="sleep between polls while no task is ready (default: 0.5)",
    )
    campaign_work.add_argument(
        "--worker-id",
        default=None,
        help="lease owner name reported to the server (default: host:pid)",
    )
    campaign_work.add_argument(
        "--object-cache",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed local payload cache: sha256-verified "
            "copies of downloaded store entries are kept here so "
            "repeated checkpoint reads don't re-download (sets "
            "REPRO_OBJECT_CACHE for the worker and its tasks)"
        ),
    )
    campaign_work.add_argument(
        "--object-cache-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "byte budget of --object-cache (LRU eviction; default 256 MiB, "
            "0 = unbounded)"
        ),
    )
    campaign_work.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-task progress lines",
    )

    campaign_report = campaign_commands.add_parser(
        "report",
        help=(
            "summarise a recorded campaign run: slowest spans, cache hit "
            "rates, retry/quarantine counts, per-scenario wall clock"
        ),
    )
    campaign_report.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result-store root directory (default: {DEFAULT_STORE})",
    )
    campaign_report.add_argument(
        "--run",
        default=None,
        metavar="RUN_ID",
        help="run id under <store>/telemetry (default: the latest run)",
    )
    campaign_report.add_argument(
        "--limit",
        type=int,
        default=10,
        help="slowest spans listed (default: 10)",
    )
    campaign_report.add_argument(
        "--json",
        action="store_true",
        help="print the full run report as JSON instead of text",
    )
    campaign_report.add_argument(
        "--chrome-trace",
        default=None,
        metavar="PATH",
        help=(
            "also export the run in Chrome trace_event format (open in "
            "chrome://tracing or Perfetto)"
        ),
    )

    campaign_status = campaign_commands.add_parser(
        "status",
        help=(
            "report per-scenario store progress without running "
            "(value- and iteration-granular coverage)"
        ),
    )
    add_spec_and_store(campaign_status)

    campaign_clean = campaign_commands.add_parser(
        "clean", help="evict every store entry the spec's grid addresses"
    )
    add_spec_and_store(campaign_clean)

    campaign_gc = campaign_commands.add_parser(
        "gc",
        help=(
            "garbage-collect the result store: evict entries older than "
            "--max-age, then the least recently used until under "
            "--max-bytes (store-wide; needs no spec)"
        ),
    )
    campaign_gc.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result-store root directory (default: {DEFAULT_STORE})",
    )
    campaign_gc.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="byte budget the surviving entries must fit in (LRU eviction)",
    )
    campaign_gc.add_argument(
        "--max-age",
        type=float,
        default=None,
        help="evict entries not read or written for this many seconds",
    )
    campaign_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what the pass would evict without removing anything",
    )
    campaign_gc.add_argument(
        "--campaign",
        default=None,
        metavar="NAME",
        help=(
            "restrict the pass to entries written by the named campaign "
            "(matched against the entry metadata; default: the whole store)"
        ),
    )

    query_parser = subparsers.add_parser(
        "query",
        help=(
            "online critical-range query service over a campaign store "
            "(serve answers at interactive latency / ask one question)"
        ),
    )
    query_commands = query_parser.add_subparsers(
        dest="query_command", required=True
    )

    query_serve = query_commands.add_parser(
        "serve",
        help=(
            "serve interactive critical-range queries over a campaign "
            "store: hot answers from an in-memory cache, cold answers "
            "from disk, unanswerable ones refined through attached "
            "'campaign work' workers"
        ),
    )
    query_serve.add_argument(
        "spec", help="campaign spec (TOML or JSON) defining the served grid"
    )
    query_serve.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result-store root directory (default: {DEFAULT_STORE})",
    )
    query_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface the query API binds (default: 127.0.0.1)",
    )
    query_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="query API port (default: 0 — the OS picks a free one)",
    )
    query_serve.add_argument(
        "--fill-port",
        type=int,
        default=0,
        help=(
            "port of the fill server (store + refinement work queue) "
            "that 'campaign work --server' workers attach to "
            "(default: 0 — the OS picks)"
        ),
    )
    query_serve.add_argument(
        "--url-file",
        default=None,
        metavar="PATH",
        help="write the resolved query API URL here once listening",
    )
    query_serve.add_argument(
        "--fill-url-file",
        default=None,
        metavar="PATH",
        help="write the resolved fill-server URL here once listening",
    )
    query_serve.add_argument(
        "--cache-cells",
        type=int,
        default=256,
        metavar="N",
        help=(
            "decoded grid cells (row + fitted curve) the in-memory hot "
            "cache keeps, LRU-evicted beyond it (default: 256)"
        ),
    )
    query_serve.add_argument(
        "--confidence-floor",
        type=float,
        default=1.0,
        metavar="F",
        help=(
            "minimum store-side cell coverage (0..1, as 'campaign "
            "status' counts it) below which in-grid answers are flagged "
            "refine=true and a refinement simulation is enqueued "
            "(default: 1.0 — trust only fully committed cells)"
        ),
    )
    query_serve.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="refinement-task lease without a heartbeat (default: 30)",
    )
    query_serve.add_argument(
        "--max-retries",
        type=int,
        default=1,
        help=(
            "failed attempts one refinement task may accumulate beyond "
            "its first before it is quarantined (default: 1)"
        ),
    )
    query_serve.add_argument(
        "--retry-backoff",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="base of the capped retry delay (default: 0.5)",
    )
    query_serve.add_argument(
        "--telemetry",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "record query.* metrics in a per-run trace under "
            "<store>/telemetry (default); --no-telemetry serves untraced"
        ),
    )

    query_ask = query_commands.add_parser(
        "ask",
        help="ask one question of a running 'query serve' process",
    )
    query_ask.add_argument(
        "--url",
        required=True,
        metavar="URL",
        help="query API base URL (see 'query serve' / --url-file)",
    )
    query_ask.add_argument(
        "--model",
        default="waypoint",
        help="mobility model of the served grid (default: waypoint)",
    )
    size = query_ask.add_mutually_exclusive_group(required=True)
    size.add_argument(
        "--side",
        type=float,
        default=None,
        help="deployment region side length l",
    )
    size.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="node count n (converted through the paper's l = n**2)",
    )
    direction = query_ask.add_mutually_exclusive_group(required=True)
    direction.add_argument(
        "--probability",
        type=float,
        default=None,
        help=(
            "target connectivity probability — answers the critical "
            "transmitting range achieving it"
        ),
    )
    direction.add_argument(
        "--range",
        type=float,
        default=None,
        help=(
            "candidate transmitting range — answers the connectivity "
            "probability it buys"
        ),
    )
    query_ask.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="give up on the service after this long (default: 30)",
    )
    query_ask.add_argument(
        "--json",
        action="store_true",
        help="print the raw JSON answer instead of a sentence",
    )
    return parser


def _latest_scenario_activity(store: ResultStore) -> dict:
    """Per-scenario wall/last-activity of the store's latest recorded run.

    ``campaign status`` stays byte-identical when no telemetry run exists
    (or the report cannot be read) — this helper then returns an empty
    mapping and no suffix is printed.
    """
    try:
        run_dir = telemetry_report.latest_run_dir(
            Path(store.root) / "telemetry"
        )
        if run_dir is None:
            return {}
        report = telemetry_report.load_or_build_report(run_dir)
        scenarios = report.get("scenarios")
        return scenarios if isinstance(scenarios, dict) else {}
    except Exception:
        return {}


def _campaign_report_main(arguments: argparse.Namespace) -> int:
    """The ``campaign report`` subcommand (needs no spec)."""
    telemetry_root = Path(arguments.store) / "telemetry"
    if arguments.run is not None:
        run_dir = telemetry_root / arguments.run
        if not run_dir.is_dir():
            print(
                f"No run {arguments.run!r} under {telemetry_root}",
                file=sys.stderr,
            )
            return 1
    else:
        run_dir = telemetry_report.latest_run_dir(telemetry_root)
        if run_dir is None:
            print(
                f"No recorded runs under {telemetry_root} (run a campaign "
                f"with telemetry enabled first)",
                file=sys.stderr,
            )
            return 1
    report = telemetry_report.load_or_build_report(run_dir)
    if arguments.json:
        print(json.dumps(report, indent=2, sort_keys=True, default=str))
    else:
        print(telemetry_report.render_report(report, limit=arguments.limit))
    if arguments.chrome_trace:
        exported = telemetry_report.chrome_trace(run_dir)
        path = Path(arguments.chrome_trace)
        path.write_text(
            json.dumps(exported, default=str), encoding="utf-8"
        )
        print(f"Chrome trace written to {path}")
    return 0


def _campaign_main(arguments: argparse.Namespace) -> int:
    """Dispatch the ``campaign run / status / clean / gc`` subcommands."""
    if arguments.campaign_command == "gc":
        store = ResultStore(arguments.store)
        report = store.gc(
            max_bytes=arguments.max_bytes,
            max_age=arguments.max_age,
            dry_run=arguments.dry_run,
            campaign=arguments.campaign,
        )
        scope = (
            f"campaign {arguments.campaign!r} in store {store.root}"
            if arguments.campaign
            else f"Store {store.root}"
        )
        verb = "would evict" if arguments.dry_run else "evicted"
        print(
            f"{scope}: scanned {report.scanned} entr"
            f"{'y' if report.scanned == 1 else 'ies'}, {verb} "
            f"{report.evicted} ({report.freed_bytes} bytes freed, "
            f"{report.remaining_bytes} bytes remain)"
        )
        return 0

    if arguments.campaign_command == "report":
        return _campaign_report_main(arguments)

    if arguments.campaign_command == "work":
        # A worker needs neither spec nor store: everything it runs
        # arrives over the wire from the serving process.
        from repro.distributed import run_worker

        if arguments.object_cache:
            # Environment, not arguments: the store clients that read
            # through the cache are unpickled inside task closures, far
            # from this call frame.
            import os

            from repro.distributed.object_cache import (
                CACHE_BYTES_ENV,
                CACHE_DIR_ENV,
            )

            os.environ[CACHE_DIR_ENV] = arguments.object_cache
            if arguments.object_cache_bytes is not None:
                os.environ[CACHE_BYTES_ENV] = str(
                    arguments.object_cache_bytes
                )

        say = (lambda message: None) if arguments.quiet else print
        completed = run_worker(
            arguments.server,
            poll_interval=arguments.poll_interval,
            worker_id=arguments.worker_id,
            say=say,
        )
        print(f"Worker done: {completed} task(s) completed.")
        return 0

    spec = CampaignSpec.load(arguments.spec)
    store = ResultStore(arguments.store)

    if arguments.campaign_command == "serve":
        from repro.distributed import serve_campaign

        print(
            f"Campaign {spec.name!r}: {spec.scenario_count()} scenario(s), "
            f"store {store.root}"
        )
        result = serve_campaign(
            spec,
            store,
            host=arguments.host,
            port=arguments.port,
            lease_seconds=arguments.lease_seconds,
            max_retries=arguments.max_retries,
            retry_backoff=arguments.retry_backoff,
            telemetry_enabled=arguments.telemetry,
            resume=arguments.resume,
            progress=progress_as_text(print),
            url_file=(
                Path(arguments.url_file) if arguments.url_file else None
            ),
            on_ready=lambda url: print(f"Serving at {url}"),
        )
        quarantined = result.quarantined_tasks
        summary = (
            f"\nDone: {result.cache_hits} cache hit(s), "
            f"{result.computed_values} value(s) computed."
        )
        if quarantined:
            summary += (
                f" WARNING: {quarantined} task(s) quarantined — partial "
                f"results kept; see 'campaign status', drop the records "
                f"with 'campaign clean'."
            )
        print(summary)
        if not arguments.quiet:
            for outcome in result.outcomes:
                if outcome.sweep is None:
                    print(
                        f"\n{outcome.scenario.describe()}: no complete sweep "
                        f"({outcome.quarantined_values} quarantined task(s))"
                    )
                    continue
                print()
                print(
                    render_sweep(
                        outcome.sweep,
                        title=f"{outcome.scenario.describe()} "
                        f"({'cached' if outcome.cache_hit else 'computed'})",
                    )
                )
        return 1 if quarantined else 0

    runner = CampaignRunner(
        spec,
        store,
        workers=getattr(arguments, "workers", None),
        sweep_workers=getattr(arguments, "sweep_workers", None),
        total_workers=getattr(arguments, "total_workers", None),
        max_retries=getattr(arguments, "max_retries", None),
        task_timeout=getattr(arguments, "task_timeout", None),
        retry_backoff=getattr(arguments, "retry_backoff", None),
        telemetry=getattr(arguments, "telemetry", None),
    )

    if arguments.campaign_command == "run":
        print(
            f"Campaign {spec.name!r}: {spec.scenario_count()} scenario(s), "
            f"store {store.root}"
        )
        result = runner.run(
            resume=arguments.resume, progress=progress_as_text(print)
        )
        quarantined = result.quarantined_tasks
        summary = (
            f"\nDone: {result.cache_hits} cache hit(s), "
            f"{result.computed_values} value(s) computed."
        )
        if quarantined:
            summary += (
                f" WARNING: {quarantined} task(s) quarantined — partial "
                f"results kept; see 'campaign status', drop the records "
                f"with 'campaign clean'."
            )
        print(summary)
        for outcome in result.outcomes:
            if outcome.sweep is None:
                print(
                    f"\n{outcome.scenario.describe()}: no complete sweep "
                    f"({outcome.quarantined_values} quarantined task(s))"
                )
                continue
            if not arguments.quiet:
                print()
                print(
                    render_sweep(
                        outcome.sweep,
                        title=f"{outcome.scenario.describe()} "
                        f"({'cached' if outcome.cache_hit else 'computed'})",
                    )
                )
            if arguments.output_dir:
                safe_name = outcome.scenario.scenario_id.replace("/", "_")
                path = save_sweep(
                    outcome.sweep,
                    Path(arguments.output_dir) / f"{safe_name}.json",
                    metadata={
                        "campaign": spec.name,
                        "scenario": outcome.scenario.scenario_id,
                    },
                )
                print(f"Saved {outcome.scenario.scenario_id} to {path}")
        return 1 if quarantined else 0

    if arguments.campaign_command == "status":
        statuses = runner.status()
        complete = sum(1 for status in statuses if status.complete)
        print(
            f"Campaign {spec.name!r}: {complete}/{len(statuses)} scenario(s) "
            f"complete in store {store.root}"
        )
        activity = _latest_scenario_activity(store)
        for status in statuses:
            line = f"  {status.scenario.describe():48s} {status.state}"
            entry = activity.get(status.scenario.scenario_id)
            if entry is not None:
                wall = entry.get("wall_seconds")
                if isinstance(wall, (int, float)):
                    line += f"  [wall {wall:.2f}s"
                    moment = entry.get("last_activity")
                    if isinstance(moment, (int, float)):
                        stamp = time.strftime(
                            "%Y-%m-%d %H:%M:%S", time.localtime(moment)
                        )
                        line += f", last activity {stamp}"
                    line += "]"
            print(line)
        return 0

    if arguments.campaign_command == "clean":
        removed = runner.clean()
        print(
            f"Campaign {spec.name!r}: evicted {removed} store entr"
            f"{'y' if removed == 1 else 'ies'} from {store.root}"
        )
        return 0

    raise AssertionError(f"unknown campaign command {arguments.campaign_command!r}")


def _query_main(arguments: argparse.Namespace) -> int:
    """Dispatch the ``query serve / ask`` subcommands."""
    if arguments.query_command == "serve":
        from repro.query.serving import serve_query_service

        spec = CampaignSpec.load(arguments.spec)
        store = ResultStore(arguments.store)
        print(
            f"Query service over campaign {spec.name!r} "
            f"(store {store.root})"
        )
        return serve_query_service(
            spec,
            store,
            host=arguments.host,
            port=arguments.port,
            fill_port=arguments.fill_port,
            cache_cells=arguments.cache_cells,
            confidence_floor=arguments.confidence_floor,
            lease_seconds=arguments.lease_seconds,
            max_retries=arguments.max_retries,
            retry_backoff=arguments.retry_backoff,
            telemetry_enabled=arguments.telemetry,
            url_file=(
                Path(arguments.url_file) if arguments.url_file else None
            ),
            fill_url_file=(
                Path(arguments.fill_url_file)
                if arguments.fill_url_file
                else None
            ),
        )

    if arguments.query_command == "ask":
        import urllib.error
        import urllib.request

        document = {"model": arguments.model}
        for name in ("side", "nodes", "probability", "range"):
            value = getattr(arguments, name)
            if value is not None:
                document[name] = value
        request = urllib.request.Request(
            f"{arguments.url.rstrip('/')}/ask",
            data=json.dumps(document).encode("utf-8"),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        opener = urllib.request.build_opener(urllib.request.ProxyHandler({}))
        try:
            with opener.open(request, timeout=arguments.timeout) as response:
                answer = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body
            print(f"Query rejected ({error.code}): {message}", file=sys.stderr)
            return 1
        except urllib.error.URLError as error:
            print(
                f"Query service {arguments.url} unreachable: {error.reason}",
                file=sys.stderr,
            )
            return 1
        if arguments.json:
            print(json.dumps(answer, indent=2, sort_keys=True))
            return 0
        unit = answer.get("unit")
        value = answer.get("value")
        rendered = "no answer (nothing stored yet)" if value is None else (
            f"critical range = {value:.6g}"
            if unit == "range"
            else f"connectivity probability = {value:.6g}"
        )
        print(
            f"{rendered}  [model {answer.get('model')}, side "
            f"{answer.get('side'):g}, n {answer.get('nodes')}, "
            f"source {answer.get('source')}, "
            f"{'hot' if answer.get('hot') else 'cold'}]"
        )
        if answer.get("refine"):
            task = answer.get("refine_task")
            suffix = f" (work item {task})" if task else ""
            print(
                f"refine=true: answer is best-effort; a refinement "
                f"simulation is queued{suffix} — attach 'campaign work' "
                f"to the fill server to compute it."
            )
        return 0

    raise AssertionError(f"unknown query command {arguments.query_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)

    if arguments.command == "list":
        for experiment in list_experiments():
            print(f"{experiment.identifier:28s} {experiment.title}")
            print(f"{'':28s} ({experiment.paper_reference})")
        return 0

    if arguments.command == "run":
        experiment = get_experiment(arguments.experiment)
        print(f"Running {experiment.identifier}: {experiment.title}")
        print(experiment.description)
        scale = scale_by_name(arguments.scale)
        if arguments.total_workers is not None:
            # Split for this experiment's actual sweep width (system sides
            # for fig2-6, parameter points for fig7-9).
            scale = experiment.with_worker_budget(scale, arguments.total_workers)
        else:
            if arguments.workers is not None:
                scale = scale.with_workers(arguments.workers)
            if arguments.sweep_workers is not None:
                scale = scale.with_sweep_workers(arguments.sweep_workers)
        if arguments.shard_steps is not None:
            scale = scale.with_shard_steps(arguments.shard_steps)
        if arguments.transport is not None:
            scale = scale.with_transport(arguments.transport)
        if arguments.backend is not None:
            scale = scale.with_backend(arguments.backend)
        sweep = experiment.run(scale)
        print()
        print(render_sweep(sweep, title=f"{experiment.identifier} ({arguments.scale} scale)"))
        if arguments.output:
            path = save_sweep(
                sweep,
                arguments.output,
                metadata={
                    "experiment": experiment.identifier,
                    "scale": arguments.scale,
                },
            )
            print(f"\nSaved results to {path}")
        return 0

    if arguments.command == "campaign":
        return _campaign_main(arguments)

    if arguments.command == "query":
        return _query_main(arguments)

    if arguments.command == "stationary":
        value = stationary_critical_range(
            node_count=arguments.nodes,
            side=arguments.side,
            dimension=arguments.dimension,
            iterations=arguments.iterations,
            seed=arguments.seed,
            confidence=arguments.confidence,
            workers=arguments.workers,
            backend=arguments.backend,
        )
        print(
            f"rstationary(n={arguments.nodes}, l={arguments.side}, "
            f"d={arguments.dimension}, confidence={arguments.confidence}) = {value:.4f}"
        )
        return 0

    parser.error(f"unknown command {arguments.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
