"""The pull-based work queue behind ``campaign serve``.

Holds the campaign scheduler's already-picklable task payloads and hands
them out one lease at a time.  All state transitions happen
*synchronously under one lock* — a lease expiry, a published error and a
published result each charge or complete the task before the call
returns, so ``done()`` can never report completion while a charge is
still in flight.

Failure semantics are the campaign's existing ones, not new ones: a
failed attempt (published error or expired lease) is charged against the
task exactly like :func:`repro.supervision.run_supervised` charges a
crashed pool task — re-enqueued with ``policy.delay_for(attempts)``
capped exponential backoff while attempts remain, given up once
``max_retries`` is exhausted.  Dispositions leave the queue as events
(``retried`` / ``giveup`` / ``result``) drained by the driving
:class:`~repro.distributed.campaign.DistributedCampaign`, which applies
the scheduler's own row saving, poison recording and progress reporting.

A result published *after* the lease expired is still harvested (once):
finished work is never thrown away just because the worker looked dead —
the same survivor-harvesting rule the supervised pool gather follows.
Content addressing makes a racing duplicate write of the same key a
no-op, and the first published result wins the event; later publishes of
a done task are acknowledged and dropped.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from queue import Queue
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.supervision import RetryPolicy

__all__ = ["QueueEvent", "WorkQueue"]

#: One disposition leaving the queue for the campaign driver:
#: ``("result", task_id, payload_bytes)``,
#: ``("retried", task_id, error, attempt, delay)`` or
#: ``("giveup", task_id, error, attempts)``.
QueueEvent = Tuple[Any, ...]


@dataclass
class _Task:
    task_id: str
    payload: bytes
    state: str = "pending"  # pending | leased | done | poisoned
    attempts: int = 0
    not_before: float = 0.0
    worker: Optional[str] = None
    deadline: float = 0.0
    granted_at: float = 0.0
    enqueued_at: int = 0  # insertion order; leases preserve it


class WorkQueue:
    """Thread-safe lease/heartbeat/publish state machine.

    Args:
        policy: the campaign's retry policy; expiries and published
            errors charge attempts against it, verbatim.
        lease_seconds: how long a granted lease lives without a
            heartbeat before the task is presumed lost.
        events: sink for :data:`QueueEvent` dispositions (the campaign
            driver's inbox).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        lease_seconds: float = 30.0,
        events: Optional[Queue] = None,
    ) -> None:
        from repro.exceptions import ConfigurationError

        if lease_seconds <= 0:
            raise ConfigurationError(
                f"lease_seconds must be positive, got {lease_seconds}"
            )
        self.policy = policy
        self.lease_seconds = float(lease_seconds)
        self.events: Queue = Queue() if events is None else events
        self._lock = threading.Lock()
        self._tasks: Dict[str, _Task] = {}
        self._order = 0
        self._sealed = False

    # ------------------------------------------------------------------ #
    def add(self, task_id: str, payload: bytes) -> None:
        """Enqueue one task (driver side, before sealing)."""
        with self._lock:
            self._order += 1
            self._tasks[task_id] = _Task(
                task_id=task_id, payload=payload, enqueued_at=self._order
            )

    def seal(self) -> None:
        """Mark the task set complete.

        Until sealed, ``lease`` answers ``wait`` instead of ``done`` to
        an empty queue — a worker that connects while the driver is still
        probing caches and enqueueing must poll, not exit.
        """
        with self._lock:
            self._sealed = True

    # ------------------------------------------------------------------ #
    def lease(self, worker: str, now: Optional[float] = None) -> Dict[str, Any]:
        """Grant the next ready task to ``worker``.

        Returns ``{"status": "ok", "task": id, "payload": bytes,
        "lease_seconds": s}`` on a grant, ``{"status": "wait",
        "retry_after": s}`` while nothing is ready, and
        ``{"status": "done"}`` once every task reached a terminal state.
        """
        moment = time.time() if now is None else now
        with self._lock:
            self._expire_locked(moment)
            ready: List[_Task] = [
                task
                for task in self._tasks.values()
                if task.state == "pending" and task.not_before <= moment
            ]
            if ready:
                task = min(ready, key=lambda item: item.enqueued_at)
                task.state = "leased"
                task.worker = worker
                task.granted_at = moment
                task.deadline = moment + self.lease_seconds
                telemetry.metrics.counter("queue.leases").add(1)
                return {
                    "status": "ok",
                    "task": task.task_id,
                    "payload": task.payload,
                    "lease_seconds": self.lease_seconds,
                }
            if self._done_locked():
                return {"status": "done"}
            backoffs = [
                task.not_before - moment
                for task in self._tasks.values()
                if task.state == "pending"
            ]
            # With nothing pending (everything leased elsewhere, or the
            # driver still enqueueing) the next change is a publish, an
            # expiry or a new task — any moment now — so keep the worker
            # polling briskly rather than parking it a whole lease.
            retry_after = (
                min(backoffs) if backoffs else min(self.lease_seconds, 0.5)
            )
            return {
                "status": "wait",
                "retry_after": max(0.05, min(retry_after, self.lease_seconds)),
            }

    def heartbeat(
        self, task_id: str, worker: str, now: Optional[float] = None
    ) -> bool:
        """Extend a live lease; ``False`` if the lease is no longer held."""
        moment = time.time() if now is None else now
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.state != "leased" or task.worker != worker:
                return False
            task.deadline = moment + self.lease_seconds
            return True

    def publish_result(
        self,
        task_id: str,
        worker: str,
        payload: bytes,
        now: Optional[float] = None,
    ) -> bool:
        """Accept a finished task's pickled result.

        Accepted from any worker whose task is not yet terminal — an
        expired-and-re-enqueued task's late survivor is harvested rather
        than recomputed.  Returns ``False`` (and drops the payload) only
        when the task is unknown or already done/poisoned.
        """
        moment = time.time() if now is None else now
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.state in ("done", "poisoned"):
                return False
            if task.granted_at:
                telemetry.metrics.histogram("queue.publish_seconds").observe(
                    max(0.0, moment - task.granted_at)
                )
            task.state = "done"
            task.worker = worker
            self.events.put(("result", task_id, payload))
            return True

    def publish_error(
        self,
        task_id: str,
        worker: str,
        error: str,
        now: Optional[float] = None,
    ) -> bool:
        """Charge a failed attempt reported by its own worker."""
        moment = time.time() if now is None else now
        with self._lock:
            task = self._tasks.get(task_id)
            if task is None or task.state in ("done", "poisoned"):
                return False
            self._charge_locked(task, error, moment)
            return True

    def expire(self, now: Optional[float] = None) -> int:
        """Charge every lease whose deadline passed; returns the count.

        The driver ticks this; a worker that died holding a lease (or
        went silent past its heartbeats) is indistinguishable from a
        crashed pool worker and is charged the same way.
        """
        moment = time.time() if now is None else now
        with self._lock:
            return self._expire_locked(moment)

    # ------------------------------------------------------------------ #
    def _expire_locked(self, moment: float) -> int:
        expired = 0
        for task in self._tasks.values():
            if task.state == "leased" and task.deadline <= moment:
                expired += 1
                telemetry.metrics.counter("queue.lease_expiries").add(1)
                self._charge_locked(
                    task,
                    f"lease expired after {self.lease_seconds:g}s "
                    f"(worker {task.worker!r} silent)",
                    moment,
                )
        return expired

    def _charge_locked(self, task: _Task, error: str, moment: float) -> None:
        task.attempts += 1
        task.worker = None
        if task.attempts <= self.policy.max_retries:
            delay = self.policy.delay_for(task.attempts)
            task.state = "pending"
            task.not_before = moment + delay
            self.events.put(
                ("retried", task.task_id, error, task.attempts, delay)
            )
        else:
            task.state = "poisoned"
            self.events.put(("giveup", task.task_id, error, task.attempts))

    def _done_locked(self) -> bool:
        return self._sealed and all(
            task.state in ("done", "poisoned")
            for task in self._tasks.values()
        )

    # ------------------------------------------------------------------ #
    def done(self) -> bool:
        """``True`` once sealed and every task is done or poisoned."""
        with self._lock:
            return self._done_locked()

    def stats(self) -> Dict[str, int]:
        """State counts for ``GET /queue/stats`` and the tests."""
        with self._lock:
            counts = {"pending": 0, "leased": 0, "done": 0, "poisoned": 0}
            for task in self._tasks.values():
                counts[task.state] += 1
            counts["total"] = len(self._tasks)
            counts["sealed"] = int(self._sealed)
            return counts
