"""Worker-side content-addressed object cache for the remote store.

A ``campaign work`` worker resuming a half-finished value re-reads the
same iteration checkpoints every attempt, and a query-service fill
worker re-reads its neighbors' rows — all over HTTP.  Store keys are
content addresses and every payload crosses the wire with a sha256
digest, so a *verified* local copy is exactly as trustworthy as a fresh
download: this cache keeps the encoded payload bytes keyed by store
key, verifies the recorded digest on every read (a corrupt or tampered
file is evicted and reported as a miss, never served), and evicts by
LRU file mtime under a byte budget — the same last-use ordering
:meth:`repro.store.result_store.ResultStore.gc` applies.

Layout (one directory, safe for concurrent workers)::

    <root>/<key[:2]>/<key>.payload   # encoded codec bytes, verbatim
    <root>/<key[:2]>/<key>.meta      # {"kind": ..., "sha256": ...}

Writes stage to a pid-unique temp name and ``os.replace`` into place,
so two workers racing on one key leave one winner and no torn files.

:class:`~repro.distributed.remote_store.RemoteResultStore` engages the
cache explicitly (``object_cache=``) or through the environment
(``REPRO_OBJECT_CACHE`` naming the directory, optional
``REPRO_OBJECT_CACHE_BYTES`` bounding it), which is how ``campaign work
--object-cache`` reaches the store clients unpickled inside task
closures.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.telemetry import metrics

__all__ = [
    "CACHE_BYTES_ENV",
    "CACHE_DIR_ENV",
    "DEFAULT_MAX_BYTES",
    "LocalObjectCache",
    "cache_from_environment",
]

CACHE_DIR_ENV = "REPRO_OBJECT_CACHE"
CACHE_BYTES_ENV = "REPRO_OBJECT_CACHE_BYTES"

#: Default byte budget: enough for thousands of row payloads while
#: staying irrelevant next to the store it mirrors.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


class LocalObjectCache:
    """Content-addressed payload cache under one local directory."""

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes

    # ------------------------------------------------------------------ #
    def _paths(self, key: str) -> Tuple[Path, Path]:
        shard = self.root / key[:2]
        return shard / f"{key}.payload", shard / f"{key}.meta"

    def get(self, key: str) -> Optional[Tuple[str, bytes]]:
        """The verified ``(kind, payload)`` for ``key``, or ``None``.

        A hit refreshes the payload file's mtime (that is what makes
        eviction LRU rather than FIFO); a digest mismatch evicts the
        entry and reports a miss — the caller re-downloads.
        """
        payload_path, meta_path = self._paths(key)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            payload = payload_path.read_bytes()
        except (OSError, ValueError):
            return None
        kind = meta.get("kind")
        declared = meta.get("sha256")
        if not isinstance(kind, str) or not isinstance(declared, str):
            self.evict(key)
            return None
        if hashlib.sha256(payload).hexdigest() != declared:
            self.evict(key)
            metrics.counter("object_cache.corrupt").add()
            return None
        try:
            now = time.time()
            os.utime(payload_path, (now, now))
        except OSError:
            pass  # a raced eviction only costs the LRU refresh
        metrics.counter("object_cache.hits").add()
        return kind, payload

    def put(self, key: str, kind: str, payload: bytes) -> None:
        """Record ``payload`` for ``key``; best-effort, never raises.

        The cache is an accelerator: a full disk or permission failure
        degrades to "no cache", not to a failed task.
        """
        payload_path, meta_path = self._paths(key)
        try:
            payload_path.parent.mkdir(parents=True, exist_ok=True)
            stamp = f".{os.getpid()}.tmp"
            staged_payload = payload_path.with_name(payload_path.name + stamp)
            staged_meta = meta_path.with_name(meta_path.name + stamp)
            staged_payload.write_bytes(payload)
            staged_meta.write_text(
                json.dumps(
                    {
                        "kind": kind,
                        "sha256": hashlib.sha256(payload).hexdigest(),
                    },
                    sort_keys=True,
                ),
                encoding="utf-8",
            )
            # Meta first: a crash between the renames leaves meta without
            # payload, which reads as a miss — never a torn hit.
            os.replace(staged_meta, meta_path)
            os.replace(staged_payload, payload_path)
        except OSError:
            metrics.counter("object_cache.write_failures").add()
            return
        metrics.counter("object_cache.writes").add()
        self._evict_over_budget()

    def evict(self, key: str) -> bool:
        """Drop one entry; ``True`` if a payload existed."""
        payload_path, meta_path = self._paths(key)
        removed = False
        for path in (payload_path, meta_path):
            try:
                path.unlink()
                removed = removed or path.suffix == ".payload"
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        total = 0
        for path in self.root.glob("*/*.payload"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _evict_over_budget(self) -> None:
        """LRU-evict payloads until the cache fits ``max_bytes``."""
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self.root.glob("*/*.payload"):
            try:
                status = path.stat()
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
            total += status.st_size
        if total <= self.max_bytes:
            return
        for _, size, path in sorted(entries):
            key = path.name[: -len(".payload")]
            if self.evict(key):
                metrics.counter("object_cache.evictions").add()
                total -= size
            if total <= self.max_bytes:
                return


def cache_from_environment() -> Optional[LocalObjectCache]:
    """The cache named by ``REPRO_OBJECT_CACHE``, or ``None``.

    Resolved lazily at first store read, so a client unpickled inside a
    worker task adopts the worker process's environment.
    """
    root = os.environ.get(CACHE_DIR_ENV)
    if not root:
        return None
    max_bytes: Optional[int] = DEFAULT_MAX_BYTES
    raw = os.environ.get(CACHE_BYTES_ENV)
    if raw:
        try:
            max_bytes = int(raw)
        except ValueError:
            max_bytes = DEFAULT_MAX_BYTES
        if max_bytes <= 0:
            max_bytes = None  # 0 or negative: unbounded
    return LocalObjectCache(root, max_bytes=max_bytes)
