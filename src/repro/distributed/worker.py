"""The pull-based campaign worker (``campaign work --server URL``).

A worker is a loop: lease one task, heartbeat while computing it,
publish the result (or the error), repeat until the server says the
queue is drained — or stops answering, which after a first successful
contact means the campaign finished and the server left.

Tasks arrive as pickled ``(function, args, kwargs)`` closures — exactly
the callables the in-process campaign scheduler would submit to its
pool, so executing them here reproduces the scheduler's results
bit-identically.  Checkpoints bound into those closures write through
the :class:`~repro.distributed.remote_store.RemoteResultStore`, so
iteration sub-entries land in the server-side store as the task runs.

Two fault-injection sites bracket each task for chaos tests
(:mod:`repro.faults`): ``queue.lease`` fires the moment a lease is
granted — a ``kill`` there dies *holding a fresh lease*, the worst
silent-host case — and ``queue.publish`` fires after the task computed
but before its result is published, the window where finished work
hangs on lease expiry for recovery.
"""

from __future__ import annotations

import base64
import os
import pickle
import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro import faults
from repro.distributed.remote_store import RemoteResultStore, RemoteStoreError

__all__ = ["QueueClient", "run_worker"]

#: Seconds a worker keeps retrying its *first* contact before giving up
#: (the server of a freshly launched campaign may still be binding).
CONNECT_GRACE_SECONDS = 30.0


class QueueClient:
    """Queue-verb client; shares the store client's HTTP plumbing."""

    def __init__(self, url: str, timeout: Optional[float] = None) -> None:
        self._store = (
            RemoteResultStore(url)
            if timeout is None
            else RemoteResultStore(url, timeout=timeout)
        )
        self.url = self._store.url

    def lease(self, worker: str) -> Dict[str, Any]:
        return self._store._json("POST", "/queue/lease", {"worker": worker})

    def heartbeat(self, task_id: str, worker: str) -> bool:
        return bool(
            self._store._json(
                "POST",
                "/queue/heartbeat",
                {"task": task_id, "worker": worker},
            ).get("ok")
        )

    def publish_result(self, task_id: str, worker: str, payload: bytes) -> bool:
        return bool(
            self._store._json(
                "POST",
                "/queue/publish",
                {
                    "task": task_id,
                    "worker": worker,
                    "result": base64.b64encode(payload).decode("ascii"),
                },
            ).get("ok")
        )

    def publish_error(self, task_id: str, worker: str, error: str) -> bool:
        return bool(
            self._store._json(
                "POST",
                "/queue/publish",
                {"task": task_id, "worker": worker, "error": error},
            ).get("ok")
        )

    def stats(self) -> Dict[str, Any]:
        return self._store._json("GET", "/queue/stats")


class _Heartbeat:
    """Background lease renewal at a third of the lease period."""

    def __init__(
        self, client: QueueClient, task_id: str, worker: str, lease_seconds: float
    ) -> None:
        self._client = client
        self._task_id = task_id
        self._worker = worker
        self._interval = max(0.1, lease_seconds / 3.0)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{task_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._client.heartbeat(self._task_id, self._worker):
                    return  # lease already lost; nothing left to renew
            except Exception:
                return  # server gone; the expiry machinery takes over

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _decode_task(grant: Dict[str, Any]) -> Tuple[str, float, Any, tuple, dict]:
    task_id = str(grant["task"])
    lease_seconds = float(grant.get("lease_seconds", 30.0))
    payload = base64.b64decode(str(grant["payload"]))
    function, args, kwargs = pickle.loads(payload)
    return task_id, lease_seconds, function, tuple(args), dict(kwargs)


def run_worker(
    server: str,
    poll_interval: float = 0.5,
    worker_id: Optional[str] = None,
    new_process_group: bool = False,
    say: Optional[Any] = None,
    timeout: Optional[float] = None,
) -> int:
    """Drain tasks from ``server`` until the queue reports done.

    Args:
        server: the ``campaign serve`` base URL.
        poll_interval: sleep between polls while no task is ready.
        worker_id: lease owner name (default ``host:pid``).
        new_process_group: start a fresh process group first — lets a
            supervisor (or the chaos tests) SIGKILL this worker *and*
            its nested iteration pools with one ``killpg``, modelling a
            whole silent host.
        say: optional ``print``-like progress sink.
        timeout: per-request HTTP timeout (default: the store client's);
            bounds how long a poll can hang on a half-dead server.

    Returns the number of tasks this worker completed.  A server that
    stops answering after the first successful contact is treated as a
    finished campaign (the serve process exits once the grid is done),
    not an error.
    """
    if new_process_group:
        os.setpgrp()
    name = worker_id or f"{socket.gethostname()}:{os.getpid()}"
    tell = say if say is not None else (lambda message: None)
    client = QueueClient(server, timeout=timeout)
    completed = 0
    contacted = False
    first_try = time.monotonic()
    while True:
        try:
            grant = client.lease(name)
        except RemoteStoreError:
            if contacted:
                tell(f"worker {name}: server left; campaign finished")
                return completed
            if time.monotonic() - first_try > CONNECT_GRACE_SECONDS:
                raise
            time.sleep(poll_interval)
            continue
        contacted = True
        status = grant.get("status")
        if status == "done":
            tell(f"worker {name}: queue drained")
            return completed
        if status == "wait":
            time.sleep(float(grant.get("retry_after", poll_interval)))
            continue
        if status != "ok":
            raise RemoteStoreError(
                f"result server {client.url} answered unknown lease "
                f"status {status!r}"
            )
        task_id, lease_seconds, function, args, kwargs = _decode_task(grant)
        # A kill here dies holding a fresh, unworked lease — the silent
        # host the expiry machinery exists for.
        faults.fire("queue.lease", context=task_id)
        tell(f"worker {name}: leased {task_id}")
        try:
            with _Heartbeat(client, task_id, name, lease_seconds):
                result = function(*args, **kwargs)
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:
            try:
                client.publish_error(task_id, name, f"{type(error).__name__}: {error}")
            except RemoteStoreError:
                pass  # the lease expiry charges it instead
            continue
        # A kill here dies with the work *finished* but unpublished; the
        # re-enqueued task recomputes to an identical result.
        faults.fire("queue.publish", context=task_id)
        payload = pickle.dumps(result)
        try:
            if client.publish_result(task_id, name, payload):
                completed += 1
                tell(f"worker {name}: published {task_id}")
        except RemoteStoreError:
            # Server gone mid-publish: the campaign is over (or the
            # expiry machinery will recover the task on a re-serve).
            return completed
