"""The HTTP result server: a :class:`ResultStore` and a work queue on a URL.

Stdlib only (:class:`http.server.ThreadingHTTPServer`); every store
verb a campaign needs crosses the wire as one request:

====================================  =================================
``HEAD/GET/PUT/DELETE /objects/<k>``  contains / get / put / evict.  GET
                                      and PUT carry the *encoded codec
                                      payload* bytes plus ``X-Repro-Kind``
                                      and ``X-Repro-Sha256`` headers; the
                                      server recomputes the digest of
                                      every PUT body before accepting it
                                      (422 on mismatch), then decodes and
                                      re-stores through the local
                                      :class:`ResultStore`, which verifies
                                      again on its own read path.
``GET /entry/<k>``                    the entry header (kind, digest,
                                      metadata).
``GET /keys``, ``GET /size``          key listing / entry count + bytes.
``POST /gc``                          a GC pass; JSON args, GcReport out.
``/poison[/<k>]``                     poison records (GET/PUT/DELETE).
``/quarantine[/<k>]``                 quarantined entry copies
                                      (GET/POST/DELETE) +
                                      ``POST /quarantine-clear``.
``POST /staging/clear|sweep``         staging hygiene.
``POST /queue/lease|heartbeat|publish``  the pull-based work queue
                                      (absent → 404 when the server
                                      fronts a store only).
``GET /queue/stats``, ``GET /health``  observability.
====================================  =================================

Error mapping: unknown key → 404, integrity failure → 422, malformed
key/arguments → 400.  The :class:`~repro.distributed.remote_store.
RemoteResultStore` client translates these back into ``KeyError`` /
``StoreIntegrityError`` / ``ConfigurationError`` so store callers cannot
tell the transports apart.
"""

from __future__ import annotations

import base64
import gzip
import hashlib
import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.store.codecs import decode_payload, encode_payload
from repro.store.result_store import ResultStore, StoreIntegrityError

from repro.distributed.queue import WorkQueue

__all__ = ["ResultServer"]

KIND_HEADER = "X-Repro-Kind"
SHA_HEADER = "X-Repro-Sha256"
LABEL_HEADER = "X-Repro-Label"
METADATA_HEADER = "X-Repro-Metadata"

#: Payloads below this size are never compressed — the gzip frame and the
#: compressor round trip cost more than the bytes they save.  Large npz
#: payloads (the columnar iteration checkpoints) are the target.
GZIP_MIN_BYTES = 1024

#: Fast compression: the wire path trades ratio for latency.
GZIP_LEVEL = 1


class _HttpFailure(Exception):
    """Internal: abort the current request with (status, message)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    server: "_Server"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:
        pass  # campaign progress is the user-facing channel, not access logs

    def _body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _json_body(self) -> Dict[str, Any]:
        raw = self._body()
        if not raw:
            return {}
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpFailure(400, f"malformed JSON body: {error}")
        if not isinstance(document, dict):
            raise _HttpFailure(400, "JSON body must be an object")
        return document

    def _reply(
        self,
        status: int,
        payload: bytes,
        content_type: str = "application/json",
        headers: Optional[Dict[str, str]] = None,
        head_only: bool = False,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        if not head_only:
            self.wfile.write(payload)

    def _reply_json(self, document: Any, status: int = 200) -> None:
        self._reply(
            status, json.dumps(document, sort_keys=True).encode("utf-8")
        )

    def _fail(self, status: int, message: str, head_only: bool = False) -> None:
        self._reply(
            status,
            json.dumps({"error": message}).encode("utf-8"),
            head_only=head_only,
        )

    # ------------------------------------------------------------------ #
    def _route(self, method: str) -> None:
        try:
            handled = self._dispatch(method)
        except _HttpFailure as failure:
            self._fail(failure.status, str(failure), head_only=method == "HEAD")
            return
        except ConfigurationError as error:
            self._fail(400, str(error), head_only=method == "HEAD")
            return
        except KeyError as error:
            self._fail(404, f"no entry for {error}", head_only=method == "HEAD")
            return
        except StoreIntegrityError as error:
            self._fail(422, str(error), head_only=method == "HEAD")
            return
        except BrokenPipeError:  # client went away mid-reply
            return
        except Exception as error:  # never kill the serving thread
            self._fail(500, f"{type(error).__name__}: {error}")
            return
        if not handled:
            self._fail(404, f"no route for {method} {self.path}")

    def do_GET(self) -> None:
        self._route("GET")

    def do_HEAD(self) -> None:
        self._route("HEAD")

    def do_PUT(self) -> None:
        self._route("PUT")

    def do_POST(self) -> None:
        self._route("POST")

    def do_DELETE(self) -> None:
        self._route("DELETE")

    # ------------------------------------------------------------------ #
    def _dispatch(self, method: str) -> bool:
        store = self.server.store
        path = self.path.split("?", 1)[0]
        parts = [part for part in path.split("/") if part]

        if parts == ["health"]:
            self._reply_json({"status": "ok"})
            return True

        if parts and parts[0] == "objects" and len(parts) == 2:
            return self._dispatch_object(method, store, parts[1])
        if parts and parts[0] == "entry" and len(parts) == 2 and method == "GET":
            self._reply_json(store.entry(parts[1]))
            return True
        if parts == ["keys"] and method == "GET":
            self._reply_json({"keys": list(store.keys())})
            return True
        if parts == ["size"] and method == "GET":
            self._reply_json(
                {"size_bytes": store.size_bytes(), "entries": len(store)}
            )
            return True
        if parts == ["gc"] and method == "POST":
            arguments = self._json_body()
            report = store.gc(
                max_bytes=arguments.get("max_bytes"),
                max_age=arguments.get("max_age"),
                now=arguments.get("now"),
                dry_run=bool(arguments.get("dry_run", False)),
                campaign=arguments.get("campaign"),
            )
            self._reply_json(asdict(report))
            return True
        if parts and parts[0] == "poison":
            return self._dispatch_poison(method, store, parts)
        if parts and parts[0] == "quarantine":
            return self._dispatch_quarantine(method, store, parts)
        if parts == ["quarantine-clear"] and method == "POST":
            self._reply_json({"removed": store.clear_quarantine()})
            return True
        if parts == ["staging", "clear"] and method == "POST":
            arguments = self._json_body()
            self._reply_json(
                {"removed": store.clear_staging(arguments.get("older_than"))}
            )
            return True
        if parts == ["staging", "sweep"] and method == "POST":
            self._reply_json({"removed": store.sweep_dead_staging()})
            return True
        if parts and parts[0] == "queue":
            return self._dispatch_queue(method, parts)
        return False

    def _dispatch_object(
        self, method: str, store: ResultStore, key: str
    ) -> bool:
        if method == "HEAD":
            if store.contains(key):
                self._reply(200, b"", head_only=True)
            else:
                self._fail(404, f"no entry for {key!r}", head_only=True)
            return True
        if method == "GET":
            value = store.get(key)  # verifies the on-disk digest
            kind, _, payload = encode_payload(value)
            # The digest always covers the identity bytes; compression
            # is a transparent transfer detail layered under it.
            headers = {
                KIND_HEADER: kind,
                SHA_HEADER: hashlib.sha256(payload).hexdigest(),
            }
            accepts = self.headers.get("Accept-Encoding") or ""
            if (
                "gzip" in accepts.lower()
                and len(payload) >= GZIP_MIN_BYTES
            ):
                compressed = gzip.compress(payload, GZIP_LEVEL)
                if len(compressed) < len(payload):
                    payload = compressed
                    headers["Content-Encoding"] = "gzip"
            self._reply(
                200,
                payload,
                content_type="application/octet-stream",
                headers=headers,
            )
            return True
        if method == "PUT":
            payload = self._body()
            encoding = (self.headers.get("Content-Encoding") or "").lower()
            if encoding == "gzip":
                try:
                    payload = gzip.decompress(payload)
                except OSError as error:
                    raise _HttpFailure(
                        400, f"undecompressable gzip body: {error}"
                    )
            elif encoding and encoding != "identity":
                raise _HttpFailure(
                    400, f"unsupported Content-Encoding {encoding!r}"
                )
            kind = self.headers.get(KIND_HEADER)
            if not kind:
                raise _HttpFailure(400, f"PUT needs a {KIND_HEADER} header")
            declared = self.headers.get(SHA_HEADER)
            digest = hashlib.sha256(payload).hexdigest()
            if declared and declared != digest:
                raise _HttpFailure(
                    422,
                    f"payload sha256 {digest} != declared {declared} "
                    f"(corrupted in transit)",
                )
            metadata_header = self.headers.get(METADATA_HEADER)
            metadata = None
            if metadata_header:
                try:
                    metadata = json.loads(metadata_header)
                except json.JSONDecodeError as error:
                    raise _HttpFailure(
                        400, f"malformed {METADATA_HEADER}: {error}"
                    )
            try:
                value = decode_payload(kind, payload)
            except ConfigurationError:
                raise
            except Exception as error:
                raise _HttpFailure(422, f"undecodable payload: {error}")
            store.put(
                key,
                value,
                metadata=metadata,
                kind=self.headers.get(LABEL_HEADER) or None,
            )
            self._reply_json({"key": key})
            return True
        if method == "DELETE":
            self._reply_json({"removed": store.evict(key)})
            return True
        return False

    def _dispatch_poison(
        self, method: str, store: ResultStore, parts: list
    ) -> bool:
        if len(parts) == 1 and method == "GET":
            self._reply_json({"keys": store.poison_keys()})
            return True
        if len(parts) != 2:
            return False
        key = parts[1]
        if method == "GET":
            record = store.poison(key)
            if record is None:
                raise _HttpFailure(404, f"no poison record for {key!r}")
            self._reply_json(record)
            return True
        if method == "PUT":
            store.record_poison(key, self._json_body())
            self._reply_json({"key": key})
            return True
        if method == "DELETE":
            self._reply_json({"removed": store.clear_poison(key)})
            return True
        return False

    def _dispatch_quarantine(
        self, method: str, store: ResultStore, parts: list
    ) -> bool:
        if len(parts) == 1 and method == "GET":
            self._reply_json({"keys": store.quarantined_entries()})
            return True
        if len(parts) != 2:
            return False
        key = parts[1]
        if method == "GET":
            provenance = store.entry_provenance(key)
            if provenance is None:
                raise _HttpFailure(404, f"no quarantined entry for {key!r}")
            self._reply_json(provenance)
            return True
        if method == "POST":
            reason = str(self._json_body().get("reason", ""))
            self._reply_json(
                {"quarantined": store.quarantine_entry(key, reason=reason)}
            )
            return True
        if method == "DELETE":
            self._reply_json({"removed": store.drop_quarantined_entry(key)})
            return True
        return False

    def _dispatch_queue(self, method: str, parts: list) -> bool:
        queue = self.server.queue
        if queue is None:
            raise _HttpFailure(404, "this server fronts a store only")
        if parts == ["queue", "stats"] and method == "GET":
            self._reply_json(queue.stats())
            return True
        if method != "POST" or len(parts) != 2:
            return False
        arguments = self._json_body()
        worker = str(arguments.get("worker", ""))
        if parts[1] == "lease":
            grant = queue.lease(worker)
            if grant["status"] == "ok":
                grant = dict(grant)
                grant["payload"] = base64.b64encode(grant["payload"]).decode(
                    "ascii"
                )
            self._reply_json(grant)
            return True
        task_id = str(arguments.get("task", ""))
        if parts[1] == "heartbeat":
            self._reply_json({"ok": queue.heartbeat(task_id, worker)})
            return True
        if parts[1] == "publish":
            if "error" in arguments:
                accepted = queue.publish_error(
                    task_id, worker, str(arguments["error"])
                )
            else:
                try:
                    payload = base64.b64decode(
                        str(arguments.get("result", "")), validate=True
                    )
                except (ValueError, TypeError) as error:
                    raise _HttpFailure(400, f"malformed result payload: {error}")
                accepted = queue.publish_result(task_id, worker, payload)
            self._reply_json({"ok": accepted})
            return True
        return False


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: ResultStore,
        queue: Optional[WorkQueue],
    ) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.queue = queue


class ResultServer:
    """Owns the HTTP server thread fronting a store (and optional queue).

    ``port=0`` binds an ephemeral port; read the resolved address from
    :attr:`url` after :meth:`start` (the CI smoke writes it to a file the
    workers poll for).
    """

    def __init__(
        self,
        store: ResultStore,
        queue: Optional[WorkQueue] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _Server((host, port), store, queue)
        self._thread: Optional[threading.Thread] = None

    @property
    def store(self) -> ResultStore:
        return self._server.store

    @property
    def queue(self) -> Optional[WorkQueue]:
        return self._server.queue

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ResultServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-result-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ResultServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
