"""A :class:`ResultStore`-shaped client for the HTTP result server.

Satisfies the full store surface (``get`` / ``put`` / ``contains`` /
poison records / quarantine / gc / staging hygiene) over
:mod:`urllib`, so campaign runners, :class:`~repro.store.checkpoints.
StoreSweepCheckpoint` writers and the codecs work unchanged against a
URL.  Payloads cross the wire in their codec encoding with a sha256
sideband, verified on *both* ends: the server recomputes the digest of
every PUT before accepting it, and :meth:`get` recomputes the digest of
every downloaded payload before decoding — a corrupted transfer
surfaces as the same :class:`StoreIntegrityError` a corrupted disk
entry would, and callers evict-and-recompute identically.

Transport failures (refused connection, reset, timeout) raise
:class:`RemoteStoreError`; they are *not* degradable store errors — a
worker whose server vanished should fail its task (and be charged by
the lease machinery), not silently degrade to in-memory results.

``root`` is ``None``: a remote store has no local directory, and the
one caller that probes it (:meth:`CampaignRunner._start_telemetry`)
treats the resulting failure as "telemetry unavailable", which is
correct — traces belong to the serving process.
"""

from __future__ import annotations

import gzip
import hashlib
import http.client
import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError, ReproError
from repro.store.codecs import decode_payload, encode_payload
from repro.store.result_store import GcReport, StoreIntegrityError

from repro.distributed.object_cache import (
    LocalObjectCache,
    cache_from_environment,
)
from repro.distributed.server import (
    GZIP_LEVEL,
    GZIP_MIN_BYTES,
    KIND_HEADER,
    LABEL_HEADER,
    METADATA_HEADER,
    SHA_HEADER,
)

__all__ = ["RemoteResultStore", "RemoteStoreError"]

#: Seconds one store request may take before the client gives up on it.
REQUEST_TIMEOUT = 60.0


class RemoteStoreError(ReproError):
    """The result server could not be reached or answered nonsense."""


class RemoteResultStore:
    """Store client bound to a ``http://host:port`` result server."""

    def __init__(
        self,
        url: str,
        timeout: float = REQUEST_TIMEOUT,
        object_cache: Optional[LocalObjectCache] = None,
    ) -> None:
        if not url.startswith(("http://", "https://")):
            raise ConfigurationError(
                f"result-server URL must be http(s), got {url!r}"
            )
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.root = None  # no local directory behind a remote store
        self.object_cache = object_cache
        self._opener: Optional[urllib.request.OpenerDirector] = None

    # The opener is a per-process convenience cache; checkpoints bound to
    # this store are pickled into worker tasks, so drop it from state and
    # rebuild lazily on first use in the adopting process.
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_opener"] = None
        return state

    def _cache(self) -> Optional[LocalObjectCache]:
        """The engaged object cache: explicit instance, else environment.

        Environment resolution is per call (cheap — one ``os.environ``
        probe) rather than memoized, so a client unpickled inside a
        worker task adopts the *worker's* ``REPRO_OBJECT_CACHE``, not a
        stale decision pickled on the serving side.
        """
        if self.object_cache is not None:
            return self.object_cache
        return cache_from_environment()

    def _open(self) -> urllib.request.OpenerDirector:
        if self._opener is None:
            # An explicit empty ProxyHandler: loopback campaign traffic
            # must never detour through an environment's http_proxy.
            self._opener = urllib.request.build_opener(
                urllib.request.ProxyHandler({})
            )
        return self._opener

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=body,
            method=method,
            headers=headers or {},
        )
        try:
            with self._open().open(request, timeout=self.timeout) as response:
                return (
                    response.status,
                    {k: v for k, v in response.headers.items()},
                    response.read(),
                )
        except urllib.error.HTTPError as error:
            payload = error.read()
            return error.code, {k: v for k, v in error.headers.items()}, payload
        except urllib.error.URLError as error:
            raise RemoteStoreError(
                f"result server {self.url} unreachable: {error.reason}"
            ) from error
        except (OSError, http.client.HTTPException) as error:
            # urllib only wraps connection-establishment failures in
            # URLError; a reset or truncated response mid-read (e.g. the
            # server shutting down while answering) propagates raw.
            raise RemoteStoreError(
                f"result server {self.url} connection failed: {error!r}"
            ) from error

    @staticmethod
    def _error_message(payload: bytes) -> str:
        try:
            return str(json.loads(payload.decode("utf-8")).get("error"))
        except Exception:
            return payload.decode("utf-8", "replace")

    def _raise_for(self, status: int, payload: bytes, key: str) -> None:
        message = self._error_message(payload)
        if status == 404:
            raise KeyError(key)
        if status == 422:
            raise StoreIntegrityError(message)
        if status == 400:
            raise ConfigurationError(message)
        raise RemoteStoreError(
            f"result server {self.url} answered {status}: {message}"
        )

    def _json(
        self,
        method: str,
        path: str,
        document: Optional[Dict[str, Any]] = None,
        key: str = "",
    ) -> Dict[str, Any]:
        body = (
            None
            if document is None
            else json.dumps(document, sort_keys=True).encode("utf-8")
        )
        status, _, payload = self._request(method, path, body=body)
        if status != 200:
            self._raise_for(status, payload, key)
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RemoteStoreError(
                f"result server {self.url} answered undecodable JSON: {error}"
            ) from error
        if not isinstance(parsed, dict):
            raise RemoteStoreError(
                f"result server {self.url} answered a non-object document"
            )
        return parsed

    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        status, _, payload = self._request("HEAD", f"/objects/{key}")
        if status == 200:
            return True
        if status == 404:
            return False
        self._raise_for(status, payload, key)
        raise AssertionError("unreachable")

    def put(
        self,
        key: str,
        value: Any,
        metadata: Optional[Dict[str, Any]] = None,
        kind: Optional[str] = None,
    ) -> str:
        payload_kind, _, payload = encode_payload(value)
        # The digest sideband always covers the identity bytes; gzip on
        # the wire is a transfer detail the server strips before
        # verifying, so integrity checks are unchanged by compression.
        headers = {
            "Content-Type": "application/octet-stream",
            KIND_HEADER: payload_kind,
            SHA_HEADER: hashlib.sha256(payload).hexdigest(),
        }
        if metadata:
            headers[METADATA_HEADER] = json.dumps(metadata, sort_keys=True)
        if kind:
            headers[LABEL_HEADER] = kind
        body = payload
        if len(payload) >= GZIP_MIN_BYTES:
            compressed = gzip.compress(payload, GZIP_LEVEL)
            if len(compressed) < len(payload):
                body = compressed
                headers["Content-Encoding"] = "gzip"
        status, _, answer = self._request(
            "PUT", f"/objects/{key}", body=body, headers=headers
        )
        if status != 200:
            self._raise_for(status, answer, key)
        cache = self._cache()
        if cache is not None:
            cache.put(key, payload_kind, payload)
        return key

    def get(self, key: str) -> Any:
        cache = self._cache()
        if cache is not None:
            cached = cache.get(key)  # sha256-verified, or a miss
            if cached is not None:
                kind, payload = cached
                try:
                    return decode_payload(kind, payload)
                except Exception:
                    cache.evict(key)  # undecodable copy: fall through
        status, headers, payload = self._request(
            "GET",
            f"/objects/{key}",
            headers={"Accept-Encoding": "gzip"},
        )
        if status != 200:
            self._raise_for(status, payload, key)
        if (headers.get("Content-Encoding") or "").lower() == "gzip":
            try:
                payload = gzip.decompress(payload)
            except OSError as error:
                raise StoreIntegrityError(
                    f"store entry {key} failed transfer verification: "
                    f"undecompressable gzip body ({error})"
                ) from error
        declared = headers.get(SHA_HEADER)
        digest = hashlib.sha256(payload).hexdigest()
        if declared and digest != declared:
            raise StoreIntegrityError(
                f"store entry {key} failed transfer verification: payload "
                f"sha256 {digest} != declared {declared}"
            )
        kind = headers.get(KIND_HEADER)
        if not kind:
            raise RemoteStoreError(
                f"result server {self.url} sent no {KIND_HEADER} for {key}"
            )
        try:
            value = decode_payload(kind, payload)
        except ConfigurationError:
            raise
        except Exception as error:
            raise StoreIntegrityError(
                f"store entry {key} could not be decoded: {error}"
            ) from error
        if cache is not None:
            cache.put(key, kind, payload)
        return value

    def entry(self, key: str) -> Dict[str, Any]:
        return self._json("GET", f"/entry/{key}", key=key)

    def evict(self, key: str) -> bool:
        cache = self._cache()
        if cache is not None:
            cache.evict(key)  # a server-side eviction orphans local copies
        return bool(
            self._json("DELETE", f"/objects/{key}", key=key).get("removed")
        )

    # ------------------------------------------------------------------ #
    def quarantine_entry(self, key: str, reason: str) -> bool:
        return bool(
            self._json(
                "POST", f"/quarantine/{key}", {"reason": reason}, key=key
            ).get("quarantined")
        )

    def quarantined_entries(self) -> List[str]:
        return list(self._json("GET", "/quarantine").get("keys", []))

    def entry_provenance(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            return self._json("GET", f"/quarantine/{key}", key=key)
        except KeyError:
            return None

    def drop_quarantined_entry(self, key: str) -> bool:
        return bool(
            self._json("DELETE", f"/quarantine/{key}", key=key).get("removed")
        )

    def record_poison(self, key: str, info: Dict[str, Any]) -> None:
        self._json("PUT", f"/poison/{key}", dict(info), key=key)

    def poison(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            return self._json("GET", f"/poison/{key}", key=key)
        except KeyError:
            return None

    def poison_keys(self) -> List[str]:
        return list(self._json("GET", "/poison").get("keys", []))

    def clear_poison(self, key: str) -> bool:
        return bool(
            self._json("DELETE", f"/poison/{key}", key=key).get("removed")
        )

    def clear_quarantine(self) -> int:
        return int(self._json("POST", "/quarantine-clear").get("removed", 0))

    # ------------------------------------------------------------------ #
    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
        campaign: Optional[str] = None,
    ) -> GcReport:
        report = self._json(
            "POST",
            "/gc",
            {
                "max_bytes": max_bytes,
                "max_age": max_age,
                "now": now,
                "dry_run": dry_run,
                "campaign": campaign,
            },
        )
        return GcReport(
            scanned=int(report.get("scanned", 0)),
            evicted=int(report.get("evicted", 0)),
            freed_bytes=int(report.get("freed_bytes", 0)),
            remaining_bytes=int(report.get("remaining_bytes", 0)),
        )

    def keys(self) -> Iterator[str]:
        yield from self._json("GET", "/keys").get("keys", [])

    def __len__(self) -> int:
        return int(self._json("GET", "/size").get("entries", 0))

    def size_bytes(self) -> int:
        return int(self._json("GET", "/size").get("size_bytes", 0))

    def clear_staging(self, older_than: Optional[float] = None) -> int:
        return int(
            self._json(
                "POST", "/staging/clear", {"older_than": older_than}
            ).get("removed", 0)
        )

    def sweep_dead_staging(self) -> int:
        return int(self._json("POST", "/staging/sweep").get("removed", 0))

    def health(self) -> bool:
        """``True`` when the server answers ``GET /health``."""
        try:
            return self._json("GET", "/health").get("status") == "ok"
        except (RemoteStoreError, ReproError):
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RemoteResultStore(url={self.url!r})"
