"""Campaign fan-out over the work queue (``campaign serve``).

:class:`DistributedCampaign` is the :class:`~repro.campaigns.scheduler.
CampaignScheduler` with its local process pool swapped for the HTTP
work queue: the same grid decomposition, the same per-value task
closures, and — through the scheduler's extracted disposition handlers —
the same row saving, retry/quarantine reporting and poison records.
Only the transport differs, which is what makes an N-worker loopback
run bit-identical to the single-host scheduler.

Determinism and fault tolerance follow from three rules:

* a task's payload is the pickled ``(function, args, kwargs)`` closure
  the scheduler's ``_submit`` would give its pool (allotment 1 — remote
  workers size their own nested pools), with measure checkpoints
  rebound to the :class:`~repro.distributed.remote_store.
  RemoteResultStore` so worker-side iteration sub-entries land in the
  server's store;
* results are applied in the serving process by the scheduler's own
  ``_handle_result`` — rows are saved through the *local* checkpoint,
  so the store keys and row bytes are exactly the scheduler's;
* failures (published errors and expired leases of silent workers) are
  charged by the queue under the campaign's ``RetryPolicy`` and land
  here as ``retried``/``giveup`` events, feeding the scheduler's own
  ``_handle_retry`` / ``_handle_giveup`` — including the verbatim
  store poison records.  With an unsupervised policy (no retries), the
  first give-up aborts the campaign, like the fail-fast local loop.
"""

from __future__ import annotations

import pickle
import queue as queue_module
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro import telemetry
from repro.campaigns.progress import ProgressEvent
from repro.campaigns.runner import CampaignResult, CampaignRunner
from repro.campaigns.scheduler import (
    CampaignScheduler,
    _run_experiment_task,
    _SweepJob,
)
from repro.campaigns.spec import CampaignSpec
from repro.exceptions import ReproError
from repro.simulation.sweep import measure_row
from repro.store.result_store import ResultStore

from repro.distributed.queue import WorkQueue
from repro.distributed.remote_store import RemoteResultStore
from repro.distributed.server import ResultServer

__all__ = ["DistributedCampaign", "RemoteTaskError", "serve_campaign"]

#: Seconds the event loop blocks per wait before ticking lease expiry.
_TICK_SECONDS = 0.2


class RemoteTaskError(ReproError):
    """A distributed task failed under a fail-fast (no-retry) policy."""


class DistributedCampaign(CampaignScheduler):
    """Scheduler variant executing through a :class:`WorkQueue`.

    Args:
        runner: the campaign runner (spec, store, retry knobs).
        work_queue: the queue the result server exposes; its policy
            should be ``runner.retry_policy`` (``serve_campaign`` wires
            this up).
        remote_store: the server's own URL as a store client; worker
            task closures carry checkpoints bound to it.
    """

    def __init__(
        self,
        runner: CampaignRunner,
        work_queue: WorkQueue,
        remote_store: RemoteResultStore,
    ) -> None:
        # total_workers=1: the budget knob sizes local pool allotments,
        # which don't exist here — remote workers each count for one.
        super().__init__(runner, total_workers=1)
        self.work_queue = work_queue
        self.remote_store = remote_store

    # ------------------------------------------------------------------ #
    def _task_payload(self, job: _SweepJob, index: int) -> bytes:
        """Pickle the closure a worker must run for ``(job, index)``.

        Mirrors the scheduler's ``_submit`` with allotment 1, except
        that checkpoints crossing the wire are rebound to the remote
        store: a worker has no path to the server's disk, but the HTTP
        store addresses the very same entries.
        """
        parent = self._spans.get(job.key)
        remote_checkpoint = self.runner._checkpoint_for(
            job.experiment, job.scenario, store=self.remote_store
        )
        if job.atomic:
            checkpoint = (
                remote_checkpoint
                if job.experiment.supports_checkpoint
                else None
            )
            closure = (
                telemetry.propagate(_run_experiment_task, parent=parent),
                (job.experiment, job.scenario.scale, checkpoint),
                {},
            )
        else:
            measure = job.experiment.sweep_measure(job.scenario.scale)
            rebind = getattr(measure, "with_value_checkpoint", None)
            if rebind is not None:
                measure = rebind(remote_checkpoint)
            closure = (
                telemetry.propagate(measure_row, parent=parent),
                (
                    job.experiment.parameter_name,
                    measure,
                    job.values[index],
                ),
                {},
            )
        return pickle.dumps(closure)

    def _execute(
        self, jobs: list, say: Callable[[ProgressEvent], None]
    ) -> None:
        """Enqueue every runnable task, then drain queue dispositions."""
        tasks = self._queue(jobs)
        inflight: Dict[str, Tuple[_SweepJob, int]] = {}
        for ordinal, (job, index) in enumerate(tasks):
            task_id = f"{job.key[:12]}.{index}.{ordinal}"
            self.work_queue.add(task_id, self._task_payload(job, index))
            inflight[task_id] = (job, index)
        self.work_queue.seal()
        if not tasks:
            return
        while not self.work_queue.done():
            self.work_queue.expire()
            try:
                event = self.work_queue.events.get(timeout=_TICK_SECONDS)
            except queue_module.Empty:
                continue
            self._apply(event, inflight, say)
        # done() flips when the last publish lands, which may leave its
        # (already enqueued) disposition unread — drain the stragglers.
        while True:
            try:
                event = self.work_queue.events.get_nowait()
            except queue_module.Empty:
                return
            self._apply(event, inflight, say)

    def _apply(
        self,
        event: Tuple[Any, ...],
        inflight: Dict[str, Tuple[_SweepJob, int]],
        say: Callable[[ProgressEvent], None],
    ) -> None:
        kind, task_id = event[0], event[1]
        task = inflight.get(task_id)
        if task is None:
            return  # a queue this driver did not populate
        if kind == "result":
            result = pickle.loads(event[2])
            self._handle_result(task, result, 1, say)
        elif kind == "retried":
            _, _, error, attempt, delay = event
            self._handle_retry(task, error, attempt, delay, say)
        elif kind == "giveup":
            _, _, error, attempts = event
            if not self.runner.retry_policy.supervised:
                raise RemoteTaskError(str(error))
            self._handle_giveup(task, error, attempts, say)


def serve_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_seconds: float = 30.0,
    max_retries: Optional[int] = None,
    retry_backoff: Optional[float] = None,
    telemetry_enabled: Optional[bool] = None,
    resume: bool = True,
    progress: Optional[Callable[[ProgressEvent], None]] = None,
    url_file: Optional[Path] = None,
    on_ready: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Run a campaign as the serving side of a distributed fan-out.

    Starts the result server (store + work queue) on ``host:port``,
    announces the resolved URL (``url_file`` and/or ``on_ready`` — with
    ``port=0`` the OS picks it), then drives the campaign through
    :class:`DistributedCampaign` until every scenario completes, was
    served from cache, or quarantined.  The server stops when the
    campaign does; lingering workers observe the vanished server as a
    finished queue.  Returns the same :class:`CampaignResult` the local
    runner would.
    """
    runner = CampaignRunner(
        spec,
        store,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        telemetry=telemetry_enabled,
    )
    work_queue = WorkQueue(
        policy=runner.retry_policy, lease_seconds=lease_seconds
    )
    server = ResultServer(store, work_queue, host=host, port=port).start()
    try:
        if url_file is not None:
            Path(url_file).write_text(server.url + "\n", encoding="utf-8")
        if on_ready is not None:
            on_ready(server.url)
        say = progress if progress is not None else (lambda event: None)
        run_handle = runner._start_telemetry()
        if run_handle is not None:
            say = telemetry.annotated(say)
        result: Optional[CampaignResult] = None
        try:
            with telemetry.span(
                "campaign",
                campaign=spec.name,
                scenarios=spec.scenario_count(),
                distributed=True,
            ):
                result = DistributedCampaign(
                    runner,
                    work_queue,
                    RemoteResultStore(server.url),
                ).run(resume=resume, progress=say)
            return result
        finally:
            if run_handle is not None:
                run_handle.finish(result)
    finally:
        server.stop()
