"""Distributed campaign execution over HTTP (stdlib only).

One machine runs ``campaign serve``: an HTTP *result server* fronting the
campaign's :class:`~repro.store.result_store.ResultStore` plus a
pull-based *work queue* holding the campaign scheduler's picklable value
and atomic tasks.  Any number of machines run ``campaign work --server
URL``: each worker leases one task at a time, heartbeats while it
computes, writes its iteration sub-checkpoints through the
:class:`~repro.distributed.remote_store.RemoteResultStore` client, and
publishes the result back.  A lease whose worker falls silent (SIGKILL,
power loss, network partition) expires and the task is re-enqueued under
the campaign's existing :class:`~repro.supervision.RetryPolicy` charging
and backoff; exhausted tasks become the store's ordinary poison records.

Because workers execute exactly the task closures the in-process
scheduler would submit to its pool — same measure, same value, same
checkpoint keys — an N-worker loopback run is bit-identical to the
single-host scheduler: same store keys, same row bytes, and a warm
re-run computes nothing.
"""

from repro.distributed.campaign import DistributedCampaign, serve_campaign
from repro.distributed.object_cache import LocalObjectCache
from repro.distributed.queue import WorkQueue
from repro.distributed.remote_store import RemoteResultStore, RemoteStoreError
from repro.distributed.server import ResultServer
from repro.distributed.worker import QueueClient, run_worker

__all__ = [
    "DistributedCampaign",
    "LocalObjectCache",
    "QueueClient",
    "RemoteResultStore",
    "RemoteStoreError",
    "ResultServer",
    "WorkQueue",
    "run_worker",
    "serve_campaign",
]
