"""Availability estimation.

Section 1 of the paper frames connectivity over time as a simple form of
availability: the network is "up" when all nodes are connected (or, in the
weaker reading, when a sufficiently large fraction is connected), and the
percentage of time it is up estimates its availability.  This package turns
connectivity time series and frame statistics into those estimates.
"""

from repro.availability.estimator import (
    AvailabilityReport,
    availability_from_connectivity_series,
    availability_from_frames,
    partial_availability_from_frames,
)

__all__ = [
    "AvailabilityReport",
    "availability_from_connectivity_series",
    "availability_from_frames",
    "partial_availability_from_frames",
]
