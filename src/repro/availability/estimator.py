"""Availability estimators.

Two notions are implemented, matching the two readings in Section 1:

* **full availability** — fraction of time at which the communication graph
  is connected ("the network is up if all nodes are connected");
* **partial availability** — fraction of time at which at least a given
  fraction of the nodes belongs to the largest connected component ("the
  network might be functional if at least a given fraction of nodes are
  connected").

Besides the headline fraction, the report includes the mean lengths of the
up and down periods, which tell a designer whether the downtime comes as
many short glitches or a few long outages — a distinction that matters for
the periodic-data-exchange scenario the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.simulation.engine import FrameStatistics
from repro.stats.series import fraction_true, longest_run, runs_of


@dataclass(frozen=True)
class AvailabilityReport:
    """Availability summary of one connectivity time series."""

    availability: float
    step_count: int
    up_periods: int
    down_periods: int
    mean_up_length: float
    mean_down_length: float
    longest_down_length: int

    @property
    def unavailability(self) -> float:
        """``1 - availability``."""
        return 1.0 - self.availability


def _report_from_series(up_series: Sequence[bool]) -> AvailabilityReport:
    series = [bool(value) for value in up_series]
    up_runs = runs_of(series, True)
    down_runs = runs_of(series, False)
    mean_up = (
        sum(length for _, length in up_runs) / len(up_runs) if up_runs else 0.0
    )
    mean_down = (
        sum(length for _, length in down_runs) / len(down_runs) if down_runs else 0.0
    )
    return AvailabilityReport(
        availability=fraction_true(series),
        step_count=len(series),
        up_periods=len(up_runs),
        down_periods=len(down_runs),
        mean_up_length=mean_up,
        mean_down_length=mean_down,
        longest_down_length=longest_run(series, False),
    )


def availability_from_connectivity_series(
    connected_series: Sequence[bool],
) -> AvailabilityReport:
    """Availability report from a per-step "was connected" series."""
    return _report_from_series(connected_series)


def availability_from_frames(
    frames: Sequence[FrameStatistics], transmitting_range: float
) -> AvailabilityReport:
    """Full availability of a trace at a given transmitting range."""
    series = [frame.is_connected_at(transmitting_range) for frame in frames]
    return _report_from_series(series)


def partial_availability_from_frames(
    frames: Sequence[FrameStatistics],
    transmitting_range: float,
    required_fraction: float,
) -> AvailabilityReport:
    """Partial availability: "up" means the largest component holds at least
    ``required_fraction`` of the nodes.

    Args:
        frames: per-step frame statistics of a mobility run.
        transmitting_range: the operating range.
        required_fraction: fraction of nodes that must be in the largest
            component for the step to count as up, in ``(0, 1]``.
    """
    if not 0.0 < required_fraction <= 1.0:
        raise ConfigurationError(
            f"required_fraction must be in (0, 1], got {required_fraction}"
        )
    series = []
    for frame in frames:
        if frame.node_count == 0:
            series.append(False)
            continue
        fraction = (
            frame.largest_component_size_at(transmitting_range) / frame.node_count
        )
        series.append(fraction >= required_fraction)
    return _report_from_series(series)
