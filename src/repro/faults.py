"""Deterministic fault injection for chaos testing.

Fault tolerance cannot be trusted until the failure modes it claims to
survive have actually been exercised — on demand, reproducibly, in CI.
This module provides that trigger: a *fault plan* is a declarative list
of :class:`FaultSpec` entries ("kill the worker on the 2nd measure
task", "fail every sweep-row write with ENOSPC", "corrupt the sweep
entry after it lands"), serialised to JSON and activated through the
``REPRO_FAULTS`` environment variable so every process of a campaign —
the parent, pool workers, nested iteration pools — sees the same plan
without any code change.

Instrumented sites call :func:`fire` with a site name and a context
string.  The call is a near-free no-op while no plan is active (one
``os.environ`` lookup), so the hooks stay in production code paths.

Determinism across processes
----------------------------
"The Nth matching hit" must mean the same thing whether the hits come
from one process or race in from eight pool workers.  Each spec owns a
counter file under the plan's ``state_dir``, incremented under an
``fcntl`` file lock, so exactly one process observes each ordinal — the
2nd hit fires exactly once, campaign-wide, no matter the worker layout.
A retried task re-enters the site with a *later* ordinal, which is what
lets a fault with ``count=1`` model a transient failure: the retry
sails through and the run completes bit-identically to a fault-free one.

Sites instrumented today:

====================  =====================================================
``measure``           entry of :func:`repro.simulation.sweep.measure_row`
                      (one sweep/scheduler task); context ``"name=value"``.
``iteration``         entry of one simulation iteration in a runner worker;
                      context ``"iteration=<index>"``.
``store.put``         one :class:`~repro.store.result_store.ResultStore`
                      write; context ``"<kind>:<key>"`` (``corrupt``
                      flips payload bytes *after* the entry lands).
``store.get``         one store read; context ``"<key>"``.
``telemetry.flush``   one telemetry trace-buffer flush; context is the
                      ``trace.jsonl`` path.  A firing fault degrades the
                      tracer (spans dropped, one warning) — it never
                      fails the campaign.
``queue.lease``       a distributed worker the moment a work-queue lease
                      is granted (:func:`repro.distributed.worker.
                      run_worker`); context is the task id.  ``kill``
                      models a host dying while holding a fresh lease —
                      the lease expires and the task is re-enqueued.
``queue.publish``     the same worker after computing a task but before
                      publishing its result; context is the task id.
                      A kill here loses only the publish — the
                      re-enqueued task recomputes bit-identically.
====================  =====================================================
"""

from __future__ import annotations

import errno as errno_module
import json
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "active",
    "current_plan",
    "fire",
    "write_plan",
]

#: Environment variable naming the active fault-plan JSON file.  Pool
#: workers inherit the parent's environment (fork and spawn alike), so
#: setting it once in the driving process arms every process of the run.
ENV_VAR = "REPRO_FAULTS"

_ACTIONS = frozenset({"kill", "raise", "hang", "io-error", "corrupt"})
#: Actions :func:`fire` performs itself; the remaining ones (``corrupt``)
#: are returned to the instrumented site, which knows how to apply them.
_INTRINSIC_ACTIONS = frozenset({"kill", "raise", "hang", "io-error"})


class InjectedFault(ReproError):
    """The deliberate failure raised by a ``raise`` fault action."""


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, what, and on which matching hits.

    Attributes:
        site: instrumented site name the fault arms (``"measure"``,
            ``"iteration"``, ``"store.put"``, ``"store.get"``).
        action: ``"kill"`` (SIGKILL the current process), ``"raise"``
            (raise :class:`InjectedFault`), ``"hang"`` (sleep
            ``seconds``, modelling a wedged task), ``"io-error"`` (raise
            ``OSError(errno)``), or ``"corrupt"`` (returned to the site;
            the store flips payload bytes after the write).
        at: 1-based ordinal of the first matching hit that fires.
        count: how many consecutive hits fire from ``at`` on; ``0``
            means every hit from ``at`` onwards (a persistent fault).
            The default ``1`` models a transient fault a retry survives.
        match: substring the hit's context must contain (empty matches
            everything) — e.g. ``"l=80"`` pins a fault to one parameter
            value, ``"sweep-row:"`` to row-checkpoint writes.
        error: symbolic errno name for ``io-error`` (``"ENOSPC"``,
            ``"EIO"``, ...).
        seconds: sleep duration of ``hang``.
    """

    site: str
    action: str
    at: int = 1
    count: int = 1
    match: str = ""
    error: str = "ENOSPC"
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {sorted(_ACTIONS)}"
            )
        if self.at < 1:
            raise ConfigurationError(f"fault 'at' must be >= 1, got {self.at}")
        if self.count < 0:
            raise ConfigurationError(
                f"fault 'count' must be >= 0, got {self.count}"
            )
        if self.action == "io-error" and not hasattr(errno_module, self.error):
            raise ConfigurationError(f"unknown errno name {self.error!r}")
        if self.seconds < 0:
            raise ConfigurationError(
                f"fault 'seconds' must be >= 0, got {self.seconds}"
            )

    def covers(self, ordinal: int) -> bool:
        """``True`` when the ``ordinal``-th matching hit should fire."""
        if ordinal < self.at:
            return False
        return self.count == 0 or ordinal < self.at + self.count


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs plus their counter directory."""

    faults: Tuple[FaultSpec, ...] = ()
    state_dir: str = ""

    @classmethod
    def from_document(
        cls, document: Dict, default_state_dir: str
    ) -> "FaultPlan":
        if not isinstance(document, dict):
            raise ConfigurationError("a fault plan must be a JSON object")
        raw_faults = document.get("faults", [])
        if not isinstance(raw_faults, list):
            raise ConfigurationError("fault plan 'faults' must be a list")
        faults = []
        for entry in raw_faults:
            if not isinstance(entry, dict):
                raise ConfigurationError(
                    f"fault plan entries must be objects, got {entry!r}"
                )
            unknown = set(entry) - {f for f in FaultSpec.__dataclass_fields__}
            if unknown:
                raise ConfigurationError(
                    f"unknown fault spec fields {sorted(unknown)}"
                )
            faults.append(FaultSpec(**entry))
        state_dir = document.get("state_dir") or default_state_dir
        return cls(faults=tuple(faults), state_dir=str(state_dir))

    def to_document(self) -> Dict:
        return {
            "faults": [asdict(spec) for spec in self.faults],
            "state_dir": self.state_dir,
        }


def write_plan(
    path: Union[str, Path],
    faults: List[FaultSpec],
    state_dir: Optional[Union[str, Path]] = None,
) -> Path:
    """Serialise a plan to ``path``; counters live next to it by default."""
    path = Path(path)
    document = {
        "faults": [asdict(spec) for spec in faults],
        "state_dir": str(state_dir) if state_dir is not None else "",
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


# --------------------------------------------------------------------- #
# Plan resolution (cached per plan path)
# --------------------------------------------------------------------- #
_cache: Dict[str, FaultPlan] = {}


def current_plan() -> Optional[FaultPlan]:
    """The active plan, or ``None`` — the single switch :func:`fire` checks."""
    plan_path = os.environ.get(ENV_VAR)
    if not plan_path:
        return None
    cached = _cache.get(plan_path)
    if cached is not None:
        return cached
    try:
        document = json.loads(Path(plan_path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ConfigurationError(
            f"cannot load fault plan {plan_path!r}: {error}"
        ) from error
    plan = FaultPlan.from_document(
        document, default_state_dir=str(Path(plan_path).parent)
    )
    _cache.clear()  # one active plan at a time; forget prior runs
    _cache[plan_path] = plan
    return plan


@contextmanager
def active(faults: List[FaultSpec], state_dir: Union[str, Path]) -> Iterator[Path]:
    """Arm ``faults`` for the duration of the block (test helper).

    Writes the plan into ``state_dir`` (which also receives the hit
    counters), points :data:`ENV_VAR` at it, and restores the previous
    environment on exit.  Worker processes forked inside the block
    inherit the armed environment.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    plan_path = write_plan(state_dir / "faultplan.json", faults)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(plan_path)
    _cache.clear()
    try:
        yield plan_path
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        _cache.clear()


# --------------------------------------------------------------------- #
# Cross-process hit counters
# --------------------------------------------------------------------- #
def _next_ordinal(state_dir: str, spec_index: int) -> int:
    """Atomically increment and return spec ``spec_index``'s hit counter.

    The counter file is shared by every process of the run; the ``fcntl``
    lock serialises read-modify-write so each ordinal is observed exactly
    once.  A process killed mid-critical-section releases the lock with
    its file descriptor, so a ``kill`` fault cannot wedge the counter.
    """
    import fcntl

    directory = Path(state_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"hits-{spec_index}"
    with open(path, "a+") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        handle.seek(0)
        raw = handle.read().strip()
        ordinal = (int(raw) if raw else 0) + 1
        handle.seek(0)
        handle.truncate()
        handle.write(str(ordinal))
        handle.flush()
    return ordinal


def _perform(spec: FaultSpec, site: str, context: str) -> None:
    """Execute one intrinsic fault action in the current process."""
    if spec.action == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif spec.action == "raise":
        raise InjectedFault(f"injected fault at {site} ({context})")
    elif spec.action == "hang":
        time.sleep(spec.seconds)
    elif spec.action == "io-error":
        code = getattr(errno_module, spec.error)
        raise OSError(
            code, f"injected {spec.error} at {site} ({context})"
        )


def fire(site: str, context: str = "") -> Optional[FaultSpec]:
    """Fault-injection hook: fire any armed fault matching this hit.

    No-op (and near-free) unless :data:`ENV_VAR` names a plan.  For each
    matching :class:`FaultSpec` the spec's cross-process hit counter is
    advanced *first*, then the action runs — so a task killed or failed
    by a transient (``count=1``) fault passes the site cleanly when it is
    retried.  Intrinsic actions (kill / raise / hang / io-error) happen
    here; site-handled actions (``corrupt``) are returned to the caller.
    """
    plan = current_plan()
    if plan is None:
        return None
    triggered: Optional[FaultSpec] = None
    for spec_index, spec in enumerate(plan.faults):
        if spec.site != site:
            continue
        if spec.match and spec.match not in context:
            continue
        ordinal = _next_ordinal(plan.state_dir, spec_index)
        if not spec.covers(ordinal):
            continue
        if spec.action in _INTRINSIC_ACTIONS:
            _perform(spec, site, context)
        triggered = spec
    return triggered
