"""Contact and inter-contact statistics of a mobility trace.

Delay-tolerant networking performance is governed by how often node pairs
come within range ("contacts") and how long they stay out of range between
contacts ("inter-contact times").  These helpers turn the raw contact
events of :func:`repro.dissemination.epidemic.contact_events` into the
summary statistics a designer would look at when deciding whether the
paper's "exchange data during temporary connection periods" scenario is
viable at a given transmitting range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dissemination.epidemic import contact_events
from repro.exceptions import ConfigurationError
from repro.types import Positions


@dataclass(frozen=True)
class ContactStatistics:
    """Aggregate contact behaviour of one trace at one transmitting range."""

    transmitting_range: float
    step_count: int
    pair_count: int
    pairs_with_contact: int
    total_contacts: int
    mean_contact_duration: float
    mean_intercontact_time: float

    @property
    def contact_pair_fraction(self) -> float:
        """Fraction of node pairs that met at least once during the trace."""
        if self.pair_count == 0:
            return 0.0
        return self.pairs_with_contact / self.pair_count


def _durations_and_gaps(steps: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Split a sorted list of contact steps into contact durations and
    inter-contact gaps.

    Consecutive steps belong to the same contact; a jump of more than one
    step ends the contact and the jump length (minus one) is an
    inter-contact time.
    """
    if not steps:
        return [], []
    durations: List[int] = []
    gaps: List[int] = []
    run_length = 1
    for previous, current in zip(steps, steps[1:]):
        if current == previous + 1:
            run_length += 1
        else:
            durations.append(run_length)
            gaps.append(current - previous - 1)
            run_length = 1
    durations.append(run_length)
    return durations, gaps


def contact_statistics(
    frames: Sequence[Positions], transmitting_range: float
) -> ContactStatistics:
    """Compute :class:`ContactStatistics` for a trace at a given range."""
    frame_list = list(frames)
    if not frame_list:
        raise ConfigurationError("at least one placement frame is required")
    node_count = frame_list[0].shape[0]
    pair_count = node_count * (node_count - 1) // 2
    events = contact_events(frame_list, transmitting_range)

    all_durations: List[int] = []
    all_gaps: List[int] = []
    total_contacts = 0
    for steps in events.values():
        durations, gaps = _durations_and_gaps(sorted(steps))
        all_durations.extend(durations)
        all_gaps.extend(gaps)
        total_contacts += len(durations)

    mean_duration = (
        sum(all_durations) / len(all_durations) if all_durations else 0.0
    )
    mean_gap = sum(all_gaps) / len(all_gaps) if all_gaps else 0.0
    return ContactStatistics(
        transmitting_range=transmitting_range,
        step_count=len(frame_list),
        pair_count=pair_count,
        pairs_with_contact=len(events),
        total_contacts=total_contacts,
        mean_contact_duration=mean_duration,
        mean_intercontact_time=mean_gap,
    )


def intercontact_times(
    frames: Sequence[Positions], transmitting_range: float
) -> Dict[Tuple[int, int], List[int]]:
    """Per-pair inter-contact times (gaps between successive contacts)."""
    events = contact_events(list(frames), transmitting_range)
    result: Dict[Tuple[int, int], List[int]] = {}
    for pair, steps in events.items():
        _, gaps = _durations_and_gaps(sorted(steps))
        result[pair] = gaps
    return result
