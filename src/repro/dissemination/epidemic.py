"""Epidemic (flooding) dissemination over a mobility trace.

The model is the simplest delay-tolerant dissemination scheme: at every
mobility step, the message spreads within each connected component that
contains at least one informed node (multi-hop flooding is assumed to
complete within one step, which matches the paper's per-step granularity
where a "temporary connection period" lasts at least one step).

The main entry point, :func:`simulate_epidemic_dissemination`, works on raw
position frames (e.g. a :class:`repro.mobility.trace.MobilityTrace`) and a
transmitting range, and returns per-step coverage together with the delays
at which given coverage fractions were reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.graph.builder import build_communication_graph
from repro.graph.components import connected_components
from repro.types import Positions


@dataclass(frozen=True)
class DisseminationResult:
    """Outcome of one epidemic dissemination run.

    Attributes:
        node_count: number of nodes in the network.
        transmitting_range: range used for every step.
        source: index of the node that initially holds the message.
        coverage_by_step: fraction of informed nodes after each step
            (step 0 is the initial state, so the first entry is ``1/n``
            or higher if the source's component is informed immediately).
        delivery_times: for each node, the first step at which it was
            informed (``None`` if never informed during the trace).
    """

    node_count: int
    transmitting_range: float
    source: int
    coverage_by_step: Tuple[float, ...]
    delivery_times: Tuple[Optional[int], ...]

    @property
    def final_coverage(self) -> float:
        """Fraction of nodes informed by the end of the trace."""
        if not self.coverage_by_step:
            return 0.0
        return self.coverage_by_step[-1]

    @property
    def fully_delivered(self) -> bool:
        """``True`` if every node received the message."""
        return self.final_coverage >= 1.0

    def steps_to_reach(self, fraction: float) -> Optional[int]:
        """First step at which coverage reached ``fraction`` (or ``None``)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        for step, coverage in enumerate(self.coverage_by_step):
            if coverage >= fraction:
                return step
        return None

    def mean_delivery_delay(self) -> Optional[float]:
        """Mean delivery step over the nodes that were reached.

        The source itself (delay 0) is included.  ``None`` if nothing was
        delivered, which cannot happen for a non-empty network.
        """
        delays = [delay for delay in self.delivery_times if delay is not None]
        if not delays:
            return None
        return sum(delays) / len(delays)


def simulate_epidemic_dissemination(
    frames: Iterable[Positions],
    transmitting_range: float,
    source: int = 0,
) -> DisseminationResult:
    """Flood a message from ``source`` over the placement frames.

    Args:
        frames: sequence of ``(n, d)`` placements, one per mobility step
            (e.g. ``MobilityTrace.frames`` or any iterable of positions).
        transmitting_range: common transmitting range at every step.
        source: node that holds the message at step 0.

    Returns:
        A :class:`DisseminationResult`; raises if the trace is empty or the
        source index is out of range.
    """
    if transmitting_range < 0.0:
        raise ConfigurationError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    frame_list: List[Positions] = [frame for frame in frames]
    if not frame_list:
        raise ConfigurationError("at least one placement frame is required")
    node_count = frame_list[0].shape[0]
    if node_count == 0:
        raise ConfigurationError("the network must contain at least one node")
    if not 0 <= source < node_count:
        raise ConfigurationError(
            f"source {source} out of range for {node_count} nodes"
        )

    informed = [False] * node_count
    informed[source] = True
    delivery: List[Optional[int]] = [None] * node_count
    delivery[source] = 0
    coverage: List[float] = []

    for step, positions in enumerate(frame_list):
        if positions.shape[0] != node_count:
            raise ConfigurationError(
                "every frame must contain the same number of nodes "
                f"(frame {step} has {positions.shape[0]}, expected {node_count})"
            )
        graph = build_communication_graph(positions, transmitting_range)
        for component in connected_components(graph):
            if any(informed[node] for node in component):
                for node in component:
                    if not informed[node]:
                        informed[node] = True
                        delivery[node] = step
        coverage.append(sum(informed) / node_count)

    return DisseminationResult(
        node_count=node_count,
        transmitting_range=transmitting_range,
        source=source,
        coverage_by_step=tuple(coverage),
        delivery_times=tuple(delivery),
    )


def contact_events(
    frames: Sequence[Positions], transmitting_range: float
) -> Dict[Tuple[int, int], List[int]]:
    """Steps at which each node pair was in contact (within range).

    A lightweight contact-trace view of the mobility trace, useful for
    analysing how often the "temporary connection periods" of the paper's
    third scenario actually occur at a given range.
    """
    if transmitting_range < 0.0:
        raise ConfigurationError(
            f"transmitting_range must be non-negative, got {transmitting_range}"
        )
    contacts: Dict[Tuple[int, int], List[int]] = {}
    for step, positions in enumerate(frames):
        graph = build_communication_graph(positions, transmitting_range)
        for edge in graph.edges():
            contacts.setdefault(edge, []).append(step)
    return contacts
