"""Epidemic data dissemination over intermittently connected networks (extension).

The paper's third dependability scenario (Section 4) is a sensor network
that "stays disconnected most of the time, but temporary connection periods
can be used to exchange data among nodes", so that "the data sent by a
sensor is eventually received by the other nodes".  This package quantifies
that claim: it replays a mobility trace, floods a message epidemically
(every contact between an informed and an uninformed node transfers the
message), and reports how long it takes for the message to reach a given
fraction of the network at a given transmitting range.

Combined with the thresholds of :mod:`repro.simulation.search`, this shows
concretely what operating at ``r10`` instead of ``r100`` costs in delivery
delay — the other side of the energy trade-off.
"""

from repro.dissemination.contacts import (
    ContactStatistics,
    contact_statistics,
    intercontact_times,
)
from repro.dissemination.epidemic import (
    DisseminationResult,
    contact_events,
    simulate_epidemic_dissemination,
)

__all__ = [
    "ContactStatistics",
    "DisseminationResult",
    "contact_events",
    "contact_statistics",
    "intercontact_times",
    "simulate_epidemic_dissemination",
]
