"""Summary statistics for Monte-Carlo estimates.

The simulator reports quantities such as "fraction of steps during which the
graph was connected" averaged over many independent iterations.  This module
provides the small amount of statistics needed to report those estimates
with confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

# Two-sided critical values of the standard normal distribution for the
# confidence levels used in the experiment reports.
_Z_VALUES = {
    0.80: 1.2815515655446004,
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
}


@dataclass(frozen=True)
class SummaryStatistics:
    """Summary of a sample of scalar observations."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float

    def standard_error(self) -> float:
        """Standard error of the mean (0 for samples of size < 2)."""
        if self.count < 2:
            return 0.0
        return self.std / math.sqrt(self.count)

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        z = _z_for_level(level)
        half_width = z * self.standard_error()
        return (self.mean - half_width, self.mean + half_width)


def _z_for_level(level: float) -> float:
    """Critical value for a two-sided interval at confidence ``level``."""
    if level in _Z_VALUES:
        return _Z_VALUES[level]
    if not 0.0 < level < 1.0:
        raise ValueError(f"confidence level must be in (0, 1), got {level}")
    # Fall back to a rational approximation of the normal quantile
    # (Beasley-Springer-Moro is overkill here; Acklam's simpler bound works
    # well for the levels used in reports).
    return _normal_quantile(0.5 + level / 2.0)


def _normal_quantile(p: float) -> float:
    """Approximate inverse CDF of the standard normal distribution.

    Uses Peter Acklam's rational approximation, accurate to ~1e-9 which is
    far more than needed for reporting confidence intervals.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low = 0.02425
    p_high = 1.0 - p_low
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


def summarize(samples: Sequence[float]) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` for ``samples``.

    Raises:
        ValueError: if ``samples`` is empty.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarise an empty sample")
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    return SummaryStatistics(
        count=int(values.size),
        mean=float(values.mean()),
        std=std,
        minimum=float(values.min()),
        maximum=float(values.max()),
        median=float(np.median(values)),
    )


def confidence_interval(
    samples: Sequence[float], level: float = 0.95
) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean of ``samples``."""
    return summarize(samples).confidence_interval(level)
