"""Statistics utilities shared by the simulation and analysis layers.

The sub-modules are intentionally small and dependency free:

* :mod:`repro.stats.rng` — deterministic seeding helpers built on
  :class:`numpy.random.Generator`.
* :mod:`repro.stats.summary` — summary statistics and confidence intervals
  for the Monte-Carlo estimates produced by the simulator.
* :mod:`repro.stats.distributions` — normal and Poisson distribution
  helpers used by the occupancy-theory limit laws (Theorem 2 of the paper).
* :mod:`repro.stats.series` — helpers for boolean/scalar time series such
  as "was the network connected at step t".
"""

from repro.stats.distributions import (
    normal_cdf,
    normal_pdf,
    poisson_cdf,
    poisson_pmf,
)
from repro.stats.rng import RandomSource, make_rng, spawn_rngs, value_rng
from repro.stats.series import (
    fraction_true,
    longest_run,
    runs_of,
    sliding_window_fraction,
)
from repro.stats.summary import (
    SummaryStatistics,
    confidence_interval,
    summarize,
)

__all__ = [
    "RandomSource",
    "SummaryStatistics",
    "confidence_interval",
    "fraction_true",
    "longest_run",
    "make_rng",
    "normal_cdf",
    "normal_pdf",
    "poisson_cdf",
    "poisson_pmf",
    "runs_of",
    "sliding_window_fraction",
    "spawn_rngs",
    "summarize",
    "value_rng",
]
