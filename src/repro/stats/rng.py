"""Random number generation helpers.

Every stochastic component of the library (placement, mobility, simulation
runner) accepts a ``seed`` argument that may be ``None``, an integer, or an
already-constructed :class:`numpy.random.Generator`.  The helpers here
normalise those inputs so the rest of the code never touches global random
state, which keeps every experiment reproducible from a single integer.

RNG/backend contract
--------------------
All random draws come from host NumPy :class:`~numpy.random.Generator`
streams, regardless of the array backend (:mod:`repro.backend`) the
kernels run under: kernels receive draw *blocks* produced here and
transfer them to the backend device once per batch.  Device-side
generators (cuRAND, ``torch.Generator``) use different algorithms and
stream layouts, so a non-NumPy backend is a *declared* different
execution environment — it is never silently stream-compatible with the
host path, which is why the backend name participates in result-store
cache keys while worker counts and transports do not.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Dict, List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def capture_rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """A frozen, picklable snapshot of a generator's exact stream position.

    The returned mapping is NumPy's own bit-generator state dictionary
    (deep-copied, so later draws from ``rng`` cannot mutate it).  Feeding
    it to :func:`restore_rng_state` yields a generator that continues the
    stream bit-for-bit from this point — the primitive that lets a
    trajectory be split across processes without perturbing a single draw
    (see :meth:`repro.mobility.base.MobilityModel.checkpoint_state`).
    """
    return copy.deepcopy(rng.bit_generator.state)


def restore_rng_state(state: Dict[str, Any]) -> np.random.Generator:
    """A fresh generator positioned exactly at a captured stream state.

    The bit-generator class is recovered from the snapshot itself, so any
    NumPy bit generator (PCG64, Philox, ...) round-trips.
    """
    bit_generator = getattr(np.random, state["bit_generator"])()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None`` — a generator seeded from the OS entropy pool.
    * ``int`` — a deterministic generator (``np.random.default_rng(seed)``).
    * ``Generator`` — returned unchanged so callers can share a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the derived streams
    are statistically independent; this is how the multi-iteration runner
    gives each iteration its own stream while remaining reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing fresh seeds from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=count)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def value_rng(
    seed: Optional[int], value: float, label: str = ""
) -> np.random.Generator:
    """A child generator keyed by a parameter *value* (order-invariant).

    Derives a deterministic stream from ``(seed, label, value)`` so that a
    per-value sweep measure draws exactly the same numbers whether its
    sweep runs serially, fans out over any process layout, or resumes at
    that single value after a kill — the independence property value-
    granular checkpointing and the campaign scheduler both require.

    The spawn key folds in a hash of ``label`` (distinct experiments
    sharing a seed must not share streams) and the IEEE-754 bit pattern of
    ``value`` (exact — two values that differ in any bit get independent
    streams, and no decimal rounding can alias them).

    ``seed=None`` draws fresh OS entropy on every call, mirroring the
    ``seed=None`` semantics of the simulation runners: the run is valid
    but not reproducible.
    """
    label_key = int.from_bytes(
        hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest(), "big"
    )
    value_key = int(np.float64(value).view(np.uint64))
    sequence = np.random.SeedSequence(
        entropy=seed, spawn_key=(label_key, value_key)
    )
    return np.random.default_rng(sequence)


class RandomSource:
    """A named, reproducible source of random number generators.

    ``RandomSource`` wraps a root seed and hands out child generators on
    demand.  Each child is identified by an integer index so that, for
    example, iteration ``i`` of a simulation always receives the same
    stream regardless of how many iterations ran before it (which makes
    parallel and sequential execution produce identical results).
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._sequence = np.random.SeedSequence(seed)
        self._seed = seed

    @property
    def seed(self) -> Optional[int]:
        """The root seed this source was created with (``None`` if entropy)."""
        return self._seed

    @property
    def entropy(self) -> int:
        """The resolved root entropy (always an integer).

        For an integer seed this is the seed itself; for ``seed=None`` it is
        the entropy NumPy drew from the OS pool.  Feeding it back through
        :meth:`from_entropy` reproduces exactly the same child streams,
        which is how the parallel simulation runner hands every worker
        process the same root even for entropy-seeded runs.
        """
        return self._sequence.entropy

    @classmethod
    def from_entropy(cls, entropy: int) -> "RandomSource":
        """A source whose children match those of the source ``entropy`` came from.

        ``RandomSource.from_entropy(source.entropy).child(i)`` produces the
        same stream as ``source.child(i)`` for every ``i``.
        """
        return cls(entropy)

    def child(self, index: int) -> np.random.Generator:
        """Return the generator for child ``index`` (deterministic)."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        child_sequence = np.random.SeedSequence(
            entropy=self._sequence.entropy, spawn_key=(index,)
        )
        return np.random.default_rng(child_sequence)

    def children(self, count: int) -> List[np.random.Generator]:
        """Return the first ``count`` child generators."""
        return [self.child(i) for i in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RandomSource(seed={self._seed!r})"
