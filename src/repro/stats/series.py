"""Helpers for boolean and scalar time series.

A mobile simulation produces one observation per mobility step — most
importantly the boolean "was the communication graph connected at this
step".  The availability estimators and the figure experiments all consume
these series through the small utilities defined here.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


def fraction_true(series: Sequence[bool]) -> float:
    """Fraction of entries of ``series`` that are truthy.

    Returns 0.0 for an empty series (a simulation with zero steps observed
    nothing, which the callers treat as "never connected").
    """
    values = list(series)
    if not values:
        return 0.0
    return sum(1 for value in values if value) / len(values)


def runs_of(series: Sequence[bool], value: bool = True) -> List[Tuple[int, int]]:
    """Return ``(start, length)`` pairs of maximal runs equal to ``value``.

    Useful for analysing how long the network stays connected or
    disconnected at a time, which is the basis of the availability
    discussion in Section 1 of the paper.
    """
    runs: List[Tuple[int, int]] = []
    start = None
    for index, entry in enumerate(series):
        if bool(entry) == value:
            if start is None:
                start = index
        else:
            if start is not None:
                runs.append((start, index - start))
                start = None
    if start is not None:
        runs.append((start, len(series) - start))
    return runs


def longest_run(series: Sequence[bool], value: bool = True) -> int:
    """Length of the longest maximal run of ``value`` in ``series``."""
    runs = runs_of(series, value)
    if not runs:
        return 0
    return max(length for _, length in runs)


def sliding_window_fraction(
    series: Sequence[bool], window: int
) -> List[float]:
    """Fraction of truthy entries inside each sliding window of ``window``.

    Raises:
        ValueError: if ``window`` is not a positive integer.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    values = np.asarray([1.0 if v else 0.0 for v in series], dtype=float)
    if values.size < window:
        return []
    cumulative = np.concatenate(([0.0], np.cumsum(values)))
    sums = cumulative[window:] - cumulative[:-window]
    return list(sums / window)


def moving_average(values: Iterable[float], window: int) -> List[float]:
    """Simple moving average of ``values`` with the given ``window``."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    data = np.asarray(list(values), dtype=float)
    if data.size < window:
        return []
    cumulative = np.concatenate(([0.0], np.cumsum(data)))
    sums = cumulative[window:] - cumulative[:-window]
    return list(sums / window)
