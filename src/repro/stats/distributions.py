"""Probability distribution helpers.

The occupancy-theory limit laws (Theorem 2 of the paper) state that the
number of empty cells converges either to a normal or to a Poisson
distribution depending on the growth domain of ``(n, C)``.  These helpers
provide the pmf/cdf routines needed to evaluate and test those limit laws
without depending on :mod:`scipy` in the core library.
"""

from __future__ import annotations

import math


def normal_pdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Density of the normal distribution ``N(mean, std**2)`` at ``x``."""
    if std <= 0.0:
        raise ValueError(f"std must be positive, got {std}")
    z = (x - mean) / std
    return math.exp(-0.5 * z * z) / (std * math.sqrt(2.0 * math.pi))


def normal_cdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Cumulative distribution of ``N(mean, std**2)`` at ``x``."""
    if std <= 0.0:
        raise ValueError(f"std must be positive, got {std}")
    z = (x - mean) / (std * math.sqrt(2.0))
    return 0.5 * (1.0 + math.erf(z))


def poisson_pmf(k: int, lam: float) -> float:
    """Probability that a Poisson(``lam``) variable equals ``k``.

    Computed in log space so that large rates do not overflow.
    """
    if lam < 0.0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    if k < 0:
        return 0.0
    if lam == 0.0:
        return 1.0 if k == 0 else 0.0
    log_p = -lam + k * math.log(lam) - math.lgamma(k + 1)
    return math.exp(log_p)


def poisson_cdf(k: int, lam: float) -> float:
    """Probability that a Poisson(``lam``) variable is at most ``k``."""
    if lam < 0.0:
        raise ValueError(f"lam must be non-negative, got {lam}")
    if k < 0:
        return 0.0
    total = 0.0
    for i in range(int(k) + 1):
        total += poisson_pmf(i, lam)
    return min(total, 1.0)
