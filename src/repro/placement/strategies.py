"""Concrete node placement strategies.

Every strategy is a function ``(count, region, rng) -> positions`` returning
an ``(n, d)`` array of points inside the region.  :class:`PlacementStrategy`
is a tiny protocol-style wrapper that lets the simulator accept any of them
interchangeably.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.stats.rng import make_rng
from repro.types import Positions, SeedLike

#: Type of a placement function.
PlacementStrategy = Callable[[int, Region, Optional[np.random.Generator]], Positions]


def uniform_placement(
    count: int, region: Region, rng: Optional[np.random.Generator] = None
) -> Positions:
    """Independent uniform placement — the model analysed by the paper."""
    return region.sample_uniform(count, make_rng(rng))


def grid_placement(
    count: int, region: Region, rng: Optional[np.random.Generator] = None
) -> Positions:
    """Evenly spaced placement (the paper's best case for 1-D).

    In one dimension the nodes are placed at the centres of ``count`` equal
    segments, so consecutive nodes are ``l / count`` apart.  In higher
    dimensions the nodes fill the cells of the smallest square/cubic lattice
    with at least ``count`` sites, and the first ``count`` sites are used.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if count == 0:
        return np.empty((0, region.dimension), dtype=float)
    per_axis = int(math.ceil(count ** (1.0 / region.dimension)))
    # Cell centres along one axis.
    centers = (np.arange(per_axis) + 0.5) * (region.side / per_axis)
    grids = np.meshgrid(*([centers] * region.dimension), indexing="ij")
    lattice = np.stack([g.ravel() for g in grids], axis=1)
    return lattice[:count]


def perturbed_grid_placement(
    count: int,
    region: Region,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 0.25,
) -> Positions:
    """Grid placement with uniform jitter of ``jitter`` cell widths.

    A common "realistic deterministic deployment" model: nodes are intended
    to sit on a lattice but land slightly off target.
    """
    if not 0.0 <= jitter <= 0.5:
        raise ConfigurationError(f"jitter must be in [0, 0.5], got {jitter}")
    generator = make_rng(rng)
    base = grid_placement(count, region, generator)
    if count == 0:
        return base
    per_axis = int(math.ceil(count ** (1.0 / region.dimension)))
    cell = region.side / per_axis
    noise = generator.uniform(-jitter * cell, jitter * cell, size=base.shape)
    return region.clamp(base + noise)


def clustered_placement(
    count: int,
    region: Region,
    rng: Optional[np.random.Generator] = None,
    clusters: int = 4,
    spread: float = 0.05,
) -> Positions:
    """Nodes concentrated around a few random cluster centres.

    Args:
        clusters: number of cluster centres, drawn uniformly in the region.
        spread: standard deviation of each cluster, as a fraction of ``l``.
    """
    if clusters <= 0:
        raise ConfigurationError(f"clusters must be positive, got {clusters}")
    if spread < 0:
        raise ConfigurationError(f"spread must be non-negative, got {spread}")
    generator = make_rng(rng)
    if count == 0:
        return np.empty((0, region.dimension), dtype=float)
    centers = region.sample_uniform(clusters, generator)
    assignment = generator.integers(0, clusters, size=count)
    offsets = generator.normal(0.0, spread * region.side, size=(count, region.dimension))
    return region.clamp(centers[assignment] + offsets)


def corner_clusters_placement(
    count: int,
    region: Region,
    rng: Optional[np.random.Generator] = None,
    spread: float = 0.01,
) -> Positions:
    """The paper's worst case: nodes split between two opposite corners.

    Half of the nodes (rounded up) are placed near the origin and the rest
    near the opposite corner ``(l, ..., l)``, each perturbed by uniform
    noise of width ``spread * l`` so nodes do not coincide exactly.  With
    this placement a transmitting range of order ``l`` is required for
    connectivity.
    """
    if spread < 0:
        raise ConfigurationError(f"spread must be non-negative, got {spread}")
    generator = make_rng(rng)
    if count == 0:
        return np.empty((0, region.dimension), dtype=float)
    first_half = (count + 1) // 2
    near_origin = generator.uniform(
        0.0, spread * region.side, size=(first_half, region.dimension)
    )
    near_far_corner = region.side - generator.uniform(
        0.0, spread * region.side, size=(count - first_half, region.dimension)
    )
    return np.vstack([near_origin, near_far_corner])


def placement_by_name(name: str) -> PlacementStrategy:
    """Look up a placement strategy by its short name.

    Recognised names: ``uniform``, ``grid``, ``perturbed-grid``,
    ``clustered``, ``corners``.
    """
    strategies = {
        "uniform": uniform_placement,
        "grid": grid_placement,
        "perturbed-grid": perturbed_grid_placement,
        "clustered": clustered_placement,
        "corners": corner_clusters_placement,
    }
    try:
        return strategies[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown placement strategy {name!r}; expected one of {sorted(strategies)}"
        ) from None
