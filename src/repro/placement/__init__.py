"""Node placement strategies.

The paper's probabilistic analysis assumes nodes are placed independently
and uniformly at random (Section 2).  Its discussion of Theorem 5 also
compares against the best case (equally spaced nodes) and the worst case
(nodes clustered at opposite corners), both of which are implemented here so
the theory benchmarks can reproduce that comparison.
"""

from repro.placement.strategies import (
    PlacementStrategy,
    clustered_placement,
    corner_clusters_placement,
    grid_placement,
    perturbed_grid_placement,
    uniform_placement,
)

__all__ = [
    "PlacementStrategy",
    "clustered_placement",
    "corner_clusters_placement",
    "grid_placement",
    "perturbed_grid_placement",
    "uniform_placement",
]
