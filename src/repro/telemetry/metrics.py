"""Process-local metric instruments drained into the trace sink.

The system already computes the numbers worth watching — cache hits,
retries, respawns, shm bytes, store latencies — and drops them on the
floor.  These instruments give them somewhere to land: ``counter``,
``gauge`` and ``histogram`` are module-level accessors onto one
per-process registry, cheap enough (a dict lookup and an add) to sit in
hot paths unconditionally.

Instruments accumulate *deltas*: :func:`drain` snapshots and resets the
registry, and the tracing layer appends the snapshot to the JSONL sink
at flush time.  Because every process reports deltas rather than
absolutes, the report builder can simply merge records — counters sum,
histograms combine, gauges take the latest value — without caring which
pool worker reported what.  A pid guard rebuilds the registry after a
fork so a child never re-reports its parent's accumulation.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "counter",
    "drain",
    "gauge",
    "histogram",
    "merge",
]


class Counter:
    """A monotonically increasing sum (reset on drain)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-write-wins level (e.g. a pool size)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Count/total/min/max of observed values (reset on drain)."""

    kind = "histogram"
    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "min": self.minimum,
            "max": self.maximum,
        }


class _Registry:
    __slots__ = ("pid", "instruments")

    def __init__(self) -> None:
        self.pid = os.getpid()
        self.instruments: Dict[str, Any] = {}

    def get(self, name: str, factory: type) -> Any:
        instrument = self.instruments.get(name)
        if instrument is None:
            instrument = factory()
            self.instruments[name] = instrument
        return instrument


_REGISTRY: Optional[_Registry] = None


def _registry() -> _Registry:
    global _REGISTRY
    registry = _REGISTRY
    if registry is None or registry.pid != os.getpid():
        _REGISTRY = registry = _Registry()
    return registry


def counter(name: str) -> Counter:
    return _registry().get(name, Counter)


def gauge(name: str) -> Gauge:
    return _registry().get(name, Gauge)


def histogram(name: str) -> Histogram:
    return _registry().get(name, Histogram)


def drain() -> Dict[str, Dict[str, Any]]:
    """Snapshot and reset this process's instruments.

    Instruments with nothing to report (zero counters, empty histograms,
    unset gauges) are omitted so idle flushes stay record-free.
    """
    registry = _registry()
    snapshot: Dict[str, Dict[str, Any]] = {}
    for name, instrument in registry.instruments.items():
        if isinstance(instrument, Counter) and instrument.value == 0:
            continue
        if isinstance(instrument, Histogram) and instrument.count == 0:
            continue
        if isinstance(instrument, Gauge) and instrument.value is None:
            continue
        snapshot[name] = instrument.snapshot()
    registry.instruments = {}
    return snapshot


def merge(snapshots: List[Dict[str, Dict[str, Any]]]) -> Dict[str, Dict[str, Any]]:
    """Fold drained snapshots (any process, any order) into totals.

    Counters sum; histograms combine count/total/min/max; gauges keep
    the last reported value.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for name, record in snapshot.items():
            kind = record.get("kind")
            existing = merged.get(name)
            if existing is None:
                merged[name] = dict(record)
                continue
            if kind == "counter":
                existing["value"] = existing.get("value", 0.0) + record.get(
                    "value", 0.0
                )
            elif kind == "histogram":
                existing["count"] = existing.get("count", 0) + record.get(
                    "count", 0
                )
                existing["total"] = existing.get("total", 0.0) + record.get(
                    "total", 0.0
                )
                for key, pick in (("min", min), ("max", max)):
                    left, right = existing.get(key), record.get(key)
                    if left is None:
                        existing[key] = right
                    elif right is not None:
                        existing[key] = pick(left, right)
            else:  # gauge: last write wins
                existing["value"] = record.get("value")
    return merged
