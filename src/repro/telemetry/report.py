"""Run reports: aggregate a JSONL trace into one queryable artifact.

A run directory (see :func:`repro.telemetry.tracing.start_run`) holds a
``run.json`` manifest and the append-only ``trace.jsonl`` every process
of the campaign flushed spans, events and metric deltas into.  This
module folds those lines into a single ``run_report.json``: span totals
by name, the slowest individual spans, merged metrics, event counts and
per-scenario wall-clock / last-activity — the answers ``campaign
report`` and ``campaign status`` print.

The reader is deliberately forgiving: a SIGKILLed worker may leave the
file's final line truncated, so each line parses independently and bad
lines are counted, not fatal.  The report can always be rebuilt from
the trace — ``run_report.json`` is a cache of this aggregation, written
at campaign end, rebuilt on demand when a run crashed before sealing.

A second exporter emits the Chrome ``trace_event`` JSON array format
(``ph: "X"`` complete events, microsecond timestamps), so any run opens
as a flame view in ``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.telemetry import metrics as _metrics
from repro.telemetry.tracing import RUN_MANIFEST, REPORT_FILE, TRACE_FILE

__all__ = [
    "build_report",
    "chrome_trace",
    "latest_run_dir",
    "list_runs",
    "load_or_build_report",
    "read_trace",
    "render_report",
    "write_report",
]

#: Slowest individual spans kept in the report.
_SLOWEST_LIMIT = 20


def read_trace(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Parse ``trace.jsonl`` line by line; never raises on bad lines.

    Returns ``{"spans": [...], "events": [...], "metrics": [...],
    "bad_lines": n}``.  A truncated tail (SIGKILLed writer) or a corrupt
    line only bumps ``bad_lines``.
    """
    spans: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    metric_records: List[Dict[str, Any]] = []
    bad_lines = 0
    path = Path(run_dir) / TRACE_FILE
    if path.is_file():
        with path.open("r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    bad_lines += 1
                    continue
                kind = record.get("type")
                if kind == "span":
                    spans.append(record)
                elif kind == "event":
                    events.append(record)
                elif kind == "metrics":
                    metric_records.append(record)
                else:
                    bad_lines += 1
    return {
        "spans": spans,
        "events": events,
        "metrics": metric_records,
        "bad_lines": bad_lines,
    }


def _span_scenario(record: Dict[str, Any]) -> Optional[str]:
    attrs = record.get("attrs") or {}
    scenario = attrs.get("scenario")
    return str(scenario) if scenario is not None else None


def _aggregate_scenarios(
    spans: List[Dict[str, Any]], events: List[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    scenarios: Dict[str, Dict[str, Any]] = {}

    def entry(scenario_id: str) -> Dict[str, Any]:
        return scenarios.setdefault(
            scenario_id, {"wall_seconds": 0.0, "last_activity": None}
        )

    def touch(scenario_id: str, moment: Optional[float]) -> None:
        if moment is None:
            return
        record = entry(scenario_id)
        if record["last_activity"] is None or moment > record["last_activity"]:
            record["last_activity"] = moment

    for record in spans:
        scenario_id = _span_scenario(record)
        if scenario_id is None:
            continue
        start = record.get("start")
        wall = record.get("wall")
        if record.get("name") == "scenario" and isinstance(wall, (int, float)):
            entry(scenario_id)["wall_seconds"] += float(wall)
        if isinstance(start, (int, float)) and isinstance(wall, (int, float)):
            touch(scenario_id, float(start) + float(wall))
    for record in events:
        data = record.get("data") or {}
        scenario_id = data.get("scenario_id")
        if scenario_id is None:
            continue
        moment = record.get("time")
        touch(
            str(scenario_id),
            float(moment) if isinstance(moment, (int, float)) else None,
        )
    return scenarios


def build_report(
    run_dir: Union[str, Path],
    result: Any = None,
    finished: Optional[float] = None,
) -> Dict[str, Any]:
    """Aggregate a run directory's trace into the report dictionary."""
    run_dir = Path(run_dir)
    try:
        manifest = json.loads(
            (run_dir / RUN_MANIFEST).read_text(encoding="utf-8")
        )
    except Exception:
        manifest = {}
    trace = read_trace(run_dir)
    spans = trace["spans"]
    events = trace["events"]

    by_name: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        name = str(record.get("name"))
        wall = float(record.get("wall") or 0.0)
        cpu = float(record.get("cpu") or 0.0)
        bucket = by_name.setdefault(
            name,
            {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0,
             "max_wall_seconds": 0.0},
        )
        bucket["count"] += 1
        bucket["wall_seconds"] += wall
        bucket["cpu_seconds"] += cpu
        bucket["max_wall_seconds"] = max(bucket["max_wall_seconds"], wall)

    slowest = sorted(
        spans, key=lambda record: float(record.get("wall") or 0.0), reverse=True
    )[:_SLOWEST_LIMIT]
    slowest_rows = [
        {
            "name": record.get("name"),
            "wall_seconds": record.get("wall"),
            "cpu_seconds": record.get("cpu"),
            "pid": record.get("pid"),
            "span": record.get("span"),
            "parent": record.get("parent"),
            "attrs": record.get("attrs") or {},
        }
        for record in slowest
    ]

    event_counts: Dict[str, int] = {}
    for record in events:
        name = str(record.get("name"))
        event_counts[name] = event_counts.get(name, 0) + 1

    merged_metrics = _metrics.merge(
        [record.get("metrics") or {} for record in trace["metrics"]]
    )

    scenarios = _aggregate_scenarios(spans, events)

    started = manifest.get("started")
    report: Dict[str, Any] = {
        "run_id": manifest.get("run_id", run_dir.name),
        "trace_id": manifest.get("trace_id"),
        "campaign": manifest.get("campaign"),
        "started": started,
        "finished": finished,
        "duration_seconds": (
            finished - started
            if isinstance(started, (int, float)) and finished is not None
            else None
        ),
        "spans": {
            "count": len(spans),
            "bad_lines": trace["bad_lines"],
            "by_name": by_name,
            "slowest": slowest_rows,
        },
        "events": event_counts,
        "metrics": merged_metrics,
        "scenarios": scenarios,
    }
    if result is not None:
        report["outcome"] = {
            "cache_hits": getattr(result, "cache_hits", None),
            "computed_values": getattr(result, "computed_values", None),
            "quarantined_tasks": getattr(result, "quarantined_tasks", None),
            "scenarios": sorted(getattr(result, "sweeps", {}) or {}),
        }
    return report


def write_report(
    run_dir: Union[str, Path],
    result: Any = None,
    finished: Optional[float] = None,
) -> Path:
    """Build and seal ``run_report.json`` inside ``run_dir``."""
    run_dir = Path(run_dir)
    report = build_report(run_dir, result=result, finished=finished)
    path = run_dir / REPORT_FILE
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True, default=str),
        encoding="utf-8",
    )
    return path


def load_or_build_report(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """The sealed report, or a fresh aggregation for an unsealed run."""
    path = Path(run_dir) / REPORT_FILE
    if path.is_file():
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            pass  # half-written seal: fall back to the trace
    return build_report(run_dir)


def list_runs(telemetry_root: Union[str, Path]) -> List[Path]:
    """Run directories under ``telemetry_root``, oldest first."""
    root = Path(telemetry_root)
    if not root.is_dir():
        return []
    runs = [
        child
        for child in root.iterdir()
        if child.is_dir() and (child / RUN_MANIFEST).is_file()
    ]
    return sorted(runs, key=lambda child: child.name)


def latest_run_dir(telemetry_root: Union[str, Path]) -> Optional[Path]:
    """The newest run directory, or ``None`` when no run exists.

    Run ids sort chronologically (UTC timestamp prefix), so the newest
    run is the lexicographically last directory name.
    """
    runs = list_runs(telemetry_root)
    return runs[-1] if runs else None


def _metric_value(metrics: Dict[str, Any], name: str) -> float:
    entry = metrics.get(name) or {}
    value = entry.get("value")
    return float(value) if isinstance(value, (int, float)) else 0.0


def render_report(report: Dict[str, Any], limit: int = 10) -> str:
    """The human-readable ``campaign report`` text for a report dict."""
    lines: List[str] = []
    run_id = report.get("run_id")
    campaign = report.get("campaign")
    header = f"Run {run_id}"
    if campaign:
        header += f" of campaign {campaign!r}"
    duration = report.get("duration_seconds")
    if isinstance(duration, (int, float)):
        header += f" ({duration:.2f}s)"
    lines.append(header)

    spans = report.get("spans") or {}
    lines.append(
        f"Spans: {spans.get('count', 0)} recorded, "
        f"{spans.get('bad_lines', 0)} bad line(s)"
    )
    by_name = spans.get("by_name") or {}
    if by_name:
        width = max(len(name) for name in by_name)
        for name in sorted(by_name):
            bucket = by_name[name]
            lines.append(
                f"  {name:<{width}}  count {bucket.get('count', 0):>5}  "
                f"wall {bucket.get('wall_seconds', 0.0):>9.3f}s  "
                f"cpu {bucket.get('cpu_seconds', 0.0):>9.3f}s  "
                f"max {bucket.get('max_wall_seconds', 0.0):>8.3f}s"
            )

    slowest = (spans.get("slowest") or [])[:limit]
    if slowest:
        lines.append(f"Slowest spans (top {len(slowest)}):")
        for row in slowest:
            attrs = row.get("attrs") or {}
            detail = " ".join(
                f"{key}={attrs[key]}" for key in sorted(attrs)
            )
            wall = row.get("wall_seconds")
            wall = float(wall) if isinstance(wall, (int, float)) else 0.0
            line = f"  {wall:>9.3f}s  {row.get('name')}"
            if detail:
                line += f"  {detail}"
            lines.append(line)

    metrics = report.get("metrics") or {}
    hits = _metric_value(metrics, "campaign.cache.hits")
    misses = _metric_value(metrics, "campaign.cache.misses")
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        lines.append(
            f"Cache: {hits:g} hit(s), {misses:g} miss(es) "
            f"({rate:.0f}% hit rate)"
        )
    retries = _metric_value(metrics, "supervision.retries")
    giveups = _metric_value(metrics, "supervision.giveups")
    respawns = _metric_value(metrics, "supervision.respawns")
    if retries or giveups or respawns:
        lines.append(
            f"Supervision: {retries:g} retry(ies), {respawns:g} pool "
            f"respawn(s), {giveups:g} quarantine(s)"
        )

    events = report.get("events") or {}
    if events:
        lines.append(
            "Events: "
            + ", ".join(f"{name}={events[name]}" for name in sorted(events))
        )
    if metrics:
        lines.append("Metrics:")
        width = max(len(name) for name in metrics)
        for name in sorted(metrics):
            entry = metrics[name]
            kind = entry.get("kind")
            if kind == "histogram":
                count = entry.get("count", 0) or 0
                total = float(entry.get("total", 0.0) or 0.0)
                mean = total / count if count else 0.0
                lines.append(
                    f"  {name:<{width}}  count {count}  mean {mean:.6g}  "
                    f"max {entry.get('max', 0)}"
                )
            else:
                lines.append(
                    f"  {name:<{width}}  {entry.get('value', 0):g}"
                )

    scenarios = report.get("scenarios") or {}
    if scenarios:
        lines.append("Scenarios:")
        width = max(len(name) for name in scenarios)
        for name in sorted(scenarios):
            entry = scenarios[name]
            wall = entry.get("wall_seconds")
            wall = float(wall) if isinstance(wall, (int, float)) else 0.0
            line = f"  {name:<{width}}  wall {wall:.3f}s"
            moment = entry.get("last_activity")
            if isinstance(moment, (int, float)):
                stamp = time.strftime(
                    "%Y-%m-%d %H:%M:%S", time.localtime(moment)
                )
                line += f"  last activity {stamp}"
            lines.append(line)
    return "\n".join(lines)


def chrome_trace(run_dir: Union[str, Path]) -> Dict[str, Any]:
    """Export the run as Chrome ``trace_event`` JSON (``ph: "X"``).

    Spans become complete events (microsecond ``ts``/``dur``), progress
    annotations become instant events, both loadable by
    ``chrome://tracing`` and Perfetto.
    """
    trace = read_trace(run_dir)
    trace_events: List[Dict[str, Any]] = []
    for record in trace["spans"]:
        trace_events.append(
            {
                "name": record.get("name"),
                "cat": "span",
                "ph": "X",
                "ts": float(record.get("start") or 0.0) * 1e6,
                "dur": float(record.get("wall") or 0.0) * 1e6,
                "pid": record.get("pid"),
                "tid": record.get("pid"),
                "args": {
                    "span": record.get("span"),
                    "parent": record.get("parent"),
                    **(record.get("attrs") or {}),
                },
            }
        )
    for record in trace["events"]:
        trace_events.append(
            {
                "name": record.get("name"),
                "cat": "event",
                "ph": "i",
                "s": "p",
                "ts": float(record.get("time") or 0.0) * 1e6,
                "pid": record.get("pid"),
                "tid": record.get("pid"),
                "args": record.get("data") or {},
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
