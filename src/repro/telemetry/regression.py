"""Perf-regression gate: diff fresh bench summaries against a baseline.

Every benchmark writes a ``BENCH_<name>.json`` summary (see
``benchmarks/_helpers.py``), but until now nothing compared them across
commits — "did we get slower" was a log-reading exercise.  This module
closes the loop: ``benchmarks/baseline.json`` checks in the expected
value of each *host-normalized* metric (speedups, overhead fractions —
dimensionless numbers comparable across machines, never raw seconds),
and :func:`compare` grades fresh summaries against it.

Baseline format::

    {
      "noise_band": 0.25,
      "benchmarks": {
        "campaign_scheduler": {
          "min_cores": 4,
          "metrics": {
            "speedup_budget_4": {"direction": "higher", "value": 2.0}
          }
        },
        "fault_overhead": {
          "metrics": {
            "overhead_fraction": {"direction": "lower", "value": 0.01,
                                   "mode": "absolute", "band": 0.03}
          }
        }
      }
    }

* ``direction`` — which way is good (``"higher"`` for speedups,
  ``"lower"`` for overheads).
* ``mode`` — ``"ratio"`` (default): regressed when the current value is
  worse than the baseline by more than ``band`` *relative* (a 0.25 band
  on a 2.0x speedup tolerates down to 1.5x).  ``"absolute"``: the band
  is an absolute delta — right for near-zero overhead fractions, where
  a ratio band is meaningless.
* ``band`` — per-metric noise band, defaulting to the file-level
  ``noise_band``.
* ``min_cores`` — core-count gate: hosts below it skip the benchmark's
  bars (the parallel speedups are not expected on a 1-core CI box).

``python -m repro.telemetry.regression --baseline ... --results ...``
exits 1 on any regression (or a baselined summary missing entirely),
which is how ``scripts/ci_check.sh`` turns the diff into a CI verdict.
Intentional perf changes re-baseline by editing ``baseline.json`` in
the same PR — the diff then documents the expected shift.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "DEFAULT_NOISE_BAND",
    "Verdict",
    "compare",
    "load_baseline",
    "main",
    "render_verdicts",
]

DEFAULT_NOISE_BAND = 0.25

#: Verdict statuses that fail the gate.
FAILING = frozenset({"regressed", "missing"})


@dataclass(frozen=True)
class Verdict:
    """One graded (benchmark, metric) pair."""

    benchmark: str
    metric: str
    status: str  # ok | improved | regressed | skipped-cores | missing
    baseline: Optional[float] = None
    current: Optional[float] = None
    note: str = ""

    def failed(self) -> bool:
        return self.status in FAILING


def load_baseline(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse and minimally validate a baseline document."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document.get("benchmarks"), dict):
        raise ValueError(f"baseline {path} has no 'benchmarks' mapping")
    return document


def _grade(
    benchmark: str,
    metric: str,
    spec: Dict[str, Any],
    current: Optional[float],
    default_band: float,
) -> Verdict:
    baseline_value = float(spec["value"])
    if current is None or not isinstance(current, (int, float)):
        return Verdict(
            benchmark,
            metric,
            "missing",
            baseline=baseline_value,
            note="metric absent from the current summary",
        )
    current = float(current)
    direction = spec.get("direction", "higher")
    mode = spec.get("mode", "ratio")
    band = float(spec.get("band", default_band))
    if mode == "absolute":
        worse_than = (
            baseline_value - band
            if direction == "higher"
            else baseline_value + band
        )
        better_than = (
            baseline_value + band
            if direction == "higher"
            else baseline_value - band
        )
    else:
        worse_than = (
            baseline_value * (1.0 - band)
            if direction == "higher"
            else baseline_value * (1.0 + band)
        )
        better_than = (
            baseline_value * (1.0 + band)
            if direction == "higher"
            else baseline_value * (1.0 - band)
        )
    if direction == "higher":
        regressed = current < worse_than
        improved = current > better_than
    else:
        regressed = current > worse_than
        improved = current < better_than
    note = (
        f"{current:.4g} vs baseline {baseline_value:.4g} "
        f"({direction} is better, {mode} band {band:g})"
    )
    status = "regressed" if regressed else ("improved" if improved else "ok")
    return Verdict(
        benchmark,
        metric,
        status,
        baseline=baseline_value,
        current=current,
        note=note,
    )


def compare(
    baseline: Dict[str, Any],
    results_dir: Union[str, Path],
    cpu_count: Optional[int] = None,
) -> List[Verdict]:
    """Grade every baselined metric against ``BENCH_*.json`` summaries.

    ``cpu_count`` overrides the per-summary host core count (testing
    hook); by default each summary's own recorded host is used, so a
    summary produced on a small box skips its core-gated bars.
    """
    results_dir = Path(results_dir)
    verdicts: List[Verdict] = []
    default_band = float(baseline.get("noise_band", DEFAULT_NOISE_BAND))
    for benchmark, spec in sorted(baseline["benchmarks"].items()):
        path = results_dir / f"BENCH_{benchmark}.json"
        if not path.is_file():
            verdicts.append(
                Verdict(
                    benchmark,
                    "*",
                    "missing",
                    note=f"no {path.name} in {results_dir}",
                )
            )
            continue
        try:
            summary = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as error:
            verdicts.append(
                Verdict(benchmark, "*", "missing", note=f"unreadable: {error}")
            )
            continue
        host_cores = cpu_count
        if host_cores is None:
            host_cores = int(
                (summary.get("host") or {}).get("cpu_count") or os.cpu_count() or 1
            )
        min_cores = int(spec.get("min_cores", 0))
        metrics = summary.get("metrics") or {}
        for metric, metric_spec in sorted(spec.get("metrics", {}).items()):
            if host_cores < min_cores:
                verdicts.append(
                    Verdict(
                        benchmark,
                        metric,
                        "skipped-cores",
                        baseline=float(metric_spec["value"]),
                        note=f"host has {host_cores} cores, gate needs "
                        f">= {min_cores}",
                    )
                )
                continue
            verdicts.append(
                _grade(
                    benchmark,
                    metric,
                    metric_spec,
                    metrics.get(metric),
                    default_band,
                )
            )
    return verdicts


def render_verdicts(verdicts: List[Verdict]) -> str:
    """One aligned line per verdict, worst first."""
    order = {"regressed": 0, "missing": 1, "improved": 2, "ok": 3,
             "skipped-cores": 4}
    lines = []
    for verdict in sorted(
        verdicts, key=lambda v: (order.get(v.status, 9), v.benchmark, v.metric)
    ):
        label = f"{verdict.benchmark}.{verdict.metric}"
        lines.append(f"  {verdict.status:13s} {label:44s} {verdict.note}")
    return "\n".join(lines)


def verdicts_payload(verdicts: List[Verdict]) -> List[Dict[str, Any]]:
    """JSON-ready form of the verdicts (for run-report artifacts)."""
    return [asdict(verdict) for verdict in verdicts]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.regression",
        description="Grade BENCH_*.json summaries against a perf baseline.",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        help="baseline document (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--results",
        required=True,
        help="directory holding fresh BENCH_*.json summaries",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        help="also write the verdicts as JSON to this path",
    )
    arguments = parser.parse_args(argv)
    baseline = load_baseline(arguments.baseline)
    verdicts = compare(baseline, arguments.results)
    print(f"perf regression gate ({len(verdicts)} verdict(s)):")
    print(render_verdicts(verdicts))
    if arguments.json_out:
        Path(arguments.json_out).write_text(
            json.dumps(verdicts_payload(verdicts), indent=2, sort_keys=True),
            encoding="utf-8",
        )
    failed = [verdict for verdict in verdicts if verdict.failed()]
    if failed:
        print(
            f"FAIL: {len(failed)} metric(s) regressed or missing "
            f"beyond the noise band",
            file=sys.stderr,
        )
        return 1
    print("perf regression gate: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI script
    raise SystemExit(main())
