"""Cross-process telemetry: tracing, metrics, run reports, perf gates.

The observability spine of the reproduction.  Four pieces:

* :mod:`repro.telemetry.tracing` — context-propagating spans over the
  campaign → scenario → task → iteration → shard hierarchy, flushed to
  a crash-tolerant per-run JSONL sink.
* :mod:`repro.telemetry.metrics` — counters/gauges/histograms for the
  signals the system already computes (cache hits, retries, shm bytes,
  store latency), drained into the same sink.
* :mod:`repro.telemetry.report` — folds a run's trace into
  ``run_report.json`` and exports Chrome ``trace_event`` flame views.
* :mod:`repro.telemetry.regression` — grades fresh ``BENCH_*.json``
  summaries against the checked-in ``benchmarks/baseline.json``.

Everything is stdlib-only and a near-free no-op while no run is armed.
"""

from repro.telemetry import metrics
from repro.telemetry.tracing import (
    ENV_VAR,
    Span,
    SpanContext,
    TelemetryDegradedWarning,
    TelemetryRun,
    annotate,
    annotated,
    attach,
    begin_span,
    current_context,
    enabled,
    flush,
    propagate,
    span,
    start_run,
)

__all__ = [
    "ENV_VAR",
    "Span",
    "SpanContext",
    "TelemetryDegradedWarning",
    "TelemetryRun",
    "annotate",
    "annotated",
    "attach",
    "begin_span",
    "current_context",
    "enabled",
    "flush",
    "metrics",
    "propagate",
    "span",
    "start_run",
]
