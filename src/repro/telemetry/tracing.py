"""Cross-process tracing: spans, context propagation, JSONL trace sinks.

A campaign is a tree of work — campaign → scenario → task → iteration →
shard — executed across a parent process, shared pool workers and nested
iteration pools.  This module records that tree as *spans*: each span
carries a ``trace_id`` (one per campaign run), its own ``span_id``, its
parent's ``span_id``, wall and CPU durations, and structured attributes.
Reassembling the parent/child links reconstructs the full execution
hierarchy no matter which process ran which piece.

Activation mirrors :mod:`repro.faults`: :func:`start_run` creates a
per-run directory (``run.json`` manifest + ``trace.jsonl`` sink) and
points the ``REPRO_TRACE`` environment variable at it.  Pool workers
inherit the environment under fork and spawn alike, so a single call in
the driving process arms every process of the run.  While the variable
is unset, every hook in this module is a near-free no-op (one
``os.environ`` lookup), which is what keeps the instrumentation in
production code paths.

Crossing process boundaries
---------------------------
Parent context travels *inside the task closures* the schedulers already
pickle: :func:`propagate` wraps a callable with the current (or an
explicit) span context and returns a picklable shim that re-attaches the
context in the worker before calling through.  Spans the worker then
opens parent correctly under the remote span.  When tracing is inactive
the callable is returned unchanged — zero pickling or call overhead.

Crash tolerance
---------------
Workers buffer span records locally and flush them as a single
``O_APPEND`` write of complete lines.  POSIX appends of one ``write()``
call do not interleave, so a SIGKILLed worker loses only its unflushed
tail — the ``trace.jsonl`` stays parseable line by line.  A *failing*
sink (disk full, permissions, an armed ``telemetry.flush`` fault) must
never fail the campaign: the first error degrades tracing to dropped
spans with a single :class:`TelemetryDegradedWarning` per process, and
every later hook is a cheap no-op.
"""

from __future__ import annotations

import json
import os
import time
import uuid
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, is_dataclass, asdict
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Union

from repro import faults
from repro.telemetry import metrics as _metrics

__all__ = [
    "ENV_VAR",
    "FLUSH_SITE",
    "RUN_MANIFEST",
    "REPORT_FILE",
    "Span",
    "SpanContext",
    "TRACE_FILE",
    "TelemetryDegradedWarning",
    "TelemetryRun",
    "annotate",
    "annotated",
    "attach",
    "begin_span",
    "current_context",
    "enabled",
    "flush",
    "propagate",
    "span",
    "start_run",
]

#: Environment variable naming the active run directory.  Pool workers
#: inherit the parent's environment (fork and spawn alike), so setting
#: it once in the driving process arms every process of the run.
ENV_VAR = "REPRO_TRACE"

#: Fault-injection site guarding every sink write (see :mod:`repro.faults`).
FLUSH_SITE = "telemetry.flush"

TRACE_FILE = "trace.jsonl"
RUN_MANIFEST = "run.json"
REPORT_FILE = "run_report.json"

#: Buffered records per process before an automatic flush.
_BUFFER_LIMIT = 128


class TelemetryDegradedWarning(UserWarning):
    """The trace sink failed; tracing degraded to dropped spans."""


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span: enough to parent children on."""

    trace_id: str
    span_id: str

    def to_payload(self) -> Dict[str, str]:
        return {"trace": self.trace_id, "span": self.span_id}

    @staticmethod
    def from_payload(payload: Dict[str, str]) -> "SpanContext":
        return SpanContext(trace_id=payload["trace"], span_id=payload["span"])


class _ProcessState:
    """Per-process tracing state, rebuilt on pid change.

    Forked pool workers inherit the parent's module globals — including
    any *buffered but unflushed* parent spans.  The pid guard makes a
    child start from an empty buffer and stack, so parent spans are
    flushed exactly once, by the parent.
    """

    __slots__ = (
        "directory",
        "trace_id",
        "pid",
        "buffer",
        "stack",
        "degraded",
        "warned",
    )

    def __init__(self, directory: str, trace_id: str) -> None:
        self.directory = directory
        self.trace_id = trace_id
        self.pid = os.getpid()
        self.buffer: List[Dict[str, Any]] = []
        self.stack: List[SpanContext] = []
        self.degraded = False
        self.warned = False


_STATE: Optional[_ProcessState] = None


def _read_trace_id(directory: str) -> str:
    try:
        manifest = json.loads(
            (Path(directory) / RUN_MANIFEST).read_text(encoding="utf-8")
        )
        return str(manifest["trace_id"])
    except Exception:
        return "trace"


def _state() -> Optional[_ProcessState]:
    directory = os.environ.get(ENV_VAR)
    if not directory:
        return None
    global _STATE
    state = _STATE
    if (
        state is not None
        and state.directory == directory
        and state.pid == os.getpid()
    ):
        return state
    _STATE = _ProcessState(directory, _read_trace_id(directory))
    return _STATE


def _reset_state() -> None:
    global _STATE
    _STATE = None


def enabled() -> bool:
    """``True`` while a run directory is armed for this process."""
    return _state() is not None


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def _degrade(state: _ProcessState, error: BaseException) -> None:
    state.degraded = True
    state.buffer = []
    if not state.warned:
        state.warned = True
        warnings.warn(
            f"telemetry sink degraded, dropping further spans: {error!r}",
            TelemetryDegradedWarning,
            stacklevel=3,
        )


def flush() -> None:
    """Write buffered records (and metric deltas) to the trace sink.

    Never raises: the first sink failure degrades this process to
    dropped spans with one :class:`TelemetryDegradedWarning`.
    """
    state = _state()
    if state is None or state.degraded:
        return
    records = state.buffer
    state.buffer = []
    deltas = _metrics.drain()
    if deltas:
        records = records + [
            {
                "type": "metrics",
                "pid": state.pid,
                "time": time.time(),
                "metrics": deltas,
            }
        ]
    if not records:
        return
    data = "".join(
        json.dumps(record, separators=(",", ":"), default=str) + "\n"
        for record in records
    ).encode("utf-8")
    path = os.path.join(state.directory, TRACE_FILE)
    try:
        faults.fire(FLUSH_SITE, context=path)
        descriptor = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(descriptor, data)
        finally:
            os.close(descriptor)
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as error:
        _degrade(state, error)


def _record(state: _ProcessState, record: Dict[str, Any]) -> None:
    if state.degraded:
        return
    state.buffer.append(record)
    if len(state.buffer) >= _BUFFER_LIMIT:
        flush()


class Span:
    """A live span; :meth:`end` freezes it and queues it for the sink."""

    __slots__ = (
        "name",
        "context_",
        "parent_id",
        "attributes",
        "start_wall",
        "_start_perf",
        "_start_cpu",
        "_ended",
    )

    def __init__(
        self,
        name: str,
        context: SpanContext,
        parent_id: Optional[str],
        attributes: Dict[str, Any],
    ) -> None:
        self.name = name
        self.context_ = context
        self.parent_id = parent_id
        self.attributes = attributes
        self.start_wall = time.time()
        self._start_perf = time.perf_counter()
        self._start_cpu = time.process_time()
        self._ended = False

    def context(self) -> SpanContext:
        return self.context_

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (last write per key wins)."""
        self.attributes.update(attributes)
        return self

    def end(self, status: str = "ok") -> None:
        """Freeze the span and queue its record for the sink."""
        if self._ended:
            return
        self._ended = True
        state = _state()
        if state is None or state.pid != os.getpid():
            return  # run finished or we are a fork: drop silently
        record = {
            "type": "span",
            "name": self.name,
            "trace": self.context_.trace_id,
            "span": self.context_.span_id,
            "parent": self.parent_id,
            "pid": state.pid,
            "start": self.start_wall,
            "wall": time.perf_counter() - self._start_perf,
            "cpu": time.process_time() - self._start_cpu,
            "status": status,
        }
        if self.attributes:
            record["attrs"] = self.attributes
        _record(state, record)


class _NullSpan:
    """Do-nothing span returned while tracing is inactive."""

    __slots__ = ()

    def context(self) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def end(self, status: str = "ok") -> None:
        return None


NULL_SPAN = _NullSpan()

SpanLike = Union[Span, _NullSpan]
ParentLike = Union[Span, SpanContext, None]


def _parent_context(state: _ProcessState, parent: ParentLike) -> Optional[SpanContext]:
    if isinstance(parent, Span):
        return parent.context()
    if isinstance(parent, SpanContext):
        return parent
    return state.stack[-1] if state.stack else None


def begin_span(
    name: str, parent: ParentLike = None, **attributes: Any
) -> SpanLike:
    """Open a span without touching the ambient context stack.

    For interleaved lifetimes (the scheduler keeps many scenario spans
    open at once); the caller owns :meth:`Span.end`.  Prefer the
    :func:`span` context manager for properly nested work.
    """
    state = _state()
    if state is None or state.degraded:
        return NULL_SPAN
    parent_context = _parent_context(state, parent)
    trace_id = parent_context.trace_id if parent_context else state.trace_id
    return Span(
        name,
        SpanContext(trace_id=trace_id, span_id=_new_span_id()),
        parent_context.span_id if parent_context else None,
        dict(attributes),
    )


@contextmanager
def span(
    name: str, parent: ParentLike = None, **attributes: Any
) -> Iterator[SpanLike]:
    """Open a span as the ambient context for the enclosed block.

    Children opened inside the block (including in *other processes*,
    via :func:`propagate`) parent under it.  When the stack empties the
    buffer is flushed — the natural boundary at which a pool worker has
    finished its task and its spans should land on disk.
    """
    opened = begin_span(name, parent=parent, **attributes)
    if opened is NULL_SPAN:
        yield opened
        return
    state = _state()
    if state is None:  # pragma: no cover - disarmed between calls
        yield opened
        return
    state.stack.append(opened.context())
    try:
        yield opened
    except BaseException:
        _pop_context(state, opened.context())
        opened.end(status="error")
        if not state.stack:
            flush()
        raise
    else:
        _pop_context(state, opened.context())
        opened.end()
        if not state.stack:
            flush()


def _pop_context(state: _ProcessState, context: SpanContext) -> None:
    if state.pid != os.getpid():
        state.stack = []
        return
    while state.stack:
        if state.stack.pop() == context:
            return


def current_context() -> Optional[SpanContext]:
    """The innermost ambient span context, or ``None``."""
    state = _state()
    if state is None:
        return None
    return state.stack[-1] if state.stack else None


@contextmanager
def attach(payload: Optional[Dict[str, str]]) -> Iterator[None]:
    """Adopt a remote parent context for the enclosed block.

    ``payload`` is the dict a :func:`propagate` shim carried across the
    process boundary.  Spans opened inside parent under the remote span;
    the buffer is flushed when the stack empties (end of the task).
    """
    state = _state()
    if state is None or payload is None:
        yield
        return
    context = SpanContext.from_payload(payload)
    state.stack.append(context)
    try:
        yield
    finally:
        _pop_context(state, context)
        if not state.stack:
            flush()


@dataclass(frozen=True)
class _TracedCall:
    """Picklable shim carrying a parent span context to a worker."""

    payload: Dict[str, str]
    fn: Callable[..., Any]

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        with attach(self.payload):
            return self.fn(*args, **kwargs)


def propagate(
    fn: Callable[..., Any], parent: ParentLike = None
) -> Callable[..., Any]:
    """Wrap ``fn`` so it runs under the current (or given) span context.

    The returned shim is picklable and cheap; when tracing is inactive
    (or there is no context to carry) ``fn`` is returned unchanged, so
    the pool pickles the exact same object it always did.
    """
    state = _state()
    if state is None or state.degraded:
        return fn
    context = _parent_context(state, parent)
    if context is None:
        return fn
    return _TracedCall(context.to_payload(), fn)


def annotate(name: str, parent: ParentLike = None, **data: Any) -> None:
    """Record a point-in-time event attached to the ambient span."""
    state = _state()
    if state is None or state.degraded:
        return
    context = _parent_context(state, parent)
    record: Dict[str, Any] = {
        "type": "event",
        "name": name,
        "trace": context.trace_id if context else state.trace_id,
        "span": context.span_id if context else None,
        "pid": state.pid,
        "time": time.time(),
    }
    if data:
        record["data"] = data
    _record(state, record)


def annotated(consumer: Callable[[Any], None]) -> Callable[[Any], None]:
    """Wrap a progress-event consumer so every event is also traced.

    The consumer sees the identical event object — CLI text stays byte
    for byte what it was; the trace gains the event as an annotation.
    """

    def consume(event: Any) -> None:
        fields = asdict(event) if is_dataclass(event) else {"event": str(event)}
        annotate(type(event).__name__, **fields)
        consumer(event)

    return consume


class TelemetryRun:
    """Handle on an armed run; :meth:`finish` seals it into a report."""

    def __init__(
        self,
        directory: Path,
        run_id: str,
        trace_id: str,
        campaign: Optional[str],
        started: float,
        previous: Optional[str],
    ) -> None:
        self.directory = directory
        self.run_id = run_id
        self.trace_id = trace_id
        self.campaign = campaign
        self.started = started
        self._previous = previous
        self._finished = False

    def finish(self, result: Any = None) -> Optional[Path]:
        """Flush, disarm the environment and write ``run_report.json``.

        ``result`` may be a :class:`repro.campaigns.runner.CampaignResult`
        (its outcomes fold into the report) or ``None`` for a run that
        raised.  Returns the report path, or ``None`` when the sink is
        too degraded to write one.  Never raises.
        """
        if self._finished:
            return None
        self._finished = True
        flush()
        if self._previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = self._previous
        _reset_state()
        try:
            from repro.telemetry import report as _report

            return _report.write_report(
                self.directory, result=result, finished=time.time()
            )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as error:
            warnings.warn(
                f"telemetry run report not written: {error!r}",
                TelemetryDegradedWarning,
                stacklevel=2,
            )
            return None


def start_run(
    directory: Union[str, Path], campaign: Optional[str] = None
) -> TelemetryRun:
    """Create a run directory under ``directory`` and arm tracing.

    Writes the ``run.json`` manifest, exports :data:`ENV_VAR` (workers
    inherit it) and resets this process's buffers and metric registry so
    the run starts from a clean slate.  The caller must call
    :meth:`TelemetryRun.finish` (in a ``finally``) to disarm.
    """
    root = Path(directory)
    started = time.time()
    run_id = "{}-{}".format(
        time.strftime("%Y%m%d-%H%M%S", time.gmtime(started)),
        uuid.uuid4().hex[:8],
    )
    run_dir = root / run_id
    run_dir.mkdir(parents=True, exist_ok=False)
    trace_id = uuid.uuid4().hex
    manifest = {
        "run_id": run_id,
        "trace_id": trace_id,
        "campaign": campaign,
        "started": started,
        "pid": os.getpid(),
    }
    (run_dir / RUN_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(run_dir)
    _reset_state()
    _metrics.drain()  # discard anything accumulated before the run
    return TelemetryRun(
        directory=run_dir,
        run_id=run_id,
        trace_id=trace_id,
        campaign=campaign,
        started=started,
        previous=previous,
    )
