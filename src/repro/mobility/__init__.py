"""Mobility models.

The paper's mobile simulations (Section 4) use two models:

* the **random waypoint** model of Johnson & Maltz, parameterised by
  ``pstationary``, ``vmin``, ``vmax`` and ``tpause`` — intentional motion;
* a **drunkard** model, parameterised by ``pstationary``, ``ppause`` and the
  step radius ``m`` — non-intentional (random-walk) motion.

Both include the paper's extra ``pstationary`` parameter: a fraction of
nodes that never move (sensors stuck in a bush, or a mixed deployment of
static and mobile devices).

Two further models, random direction and Gauss–Markov, are provided as
extensions used by the "does the mobility model matter?" ablation.
All models share the :class:`~repro.mobility.base.MobilityModel` interface:
``initialize(positions, rng)`` followed by repeated ``step(rng)`` calls,
each returning the new ``(n, d)`` position array.
"""

from repro.mobility.base import MobilityCheckpoint, MobilityModel, MobilityState
from repro.mobility.boundary import BoundaryPolicy
from repro.mobility.drunkard import DrunkardModel
from repro.mobility.gauss_markov import GaussMarkovModel
from repro.mobility.group import ReferencePointGroupModel
from repro.mobility.random_direction import RandomDirectionModel
from repro.mobility.stationary import StationaryModel
from repro.mobility.trace import MobilityTrace, record_trace
from repro.mobility.waypoint import RandomWaypointModel

__all__ = [
    "BoundaryPolicy",
    "DrunkardModel",
    "GaussMarkovModel",
    "MobilityCheckpoint",
    "MobilityModel",
    "MobilityState",
    "MobilityTrace",
    "RandomDirectionModel",
    "RandomWaypointModel",
    "ReferencePointGroupModel",
    "StationaryModel",
    "record_trace",
]


def model_by_name(name: str, **parameters):
    """Instantiate a mobility model from its short name.

    Recognised names: ``stationary``, ``waypoint``, ``drunkard``,
    ``random-direction``, ``gauss-markov``, ``rpgm``.  Keyword arguments are
    passed through to the model constructor.
    """
    from repro.exceptions import ConfigurationError

    models = {
        "stationary": StationaryModel,
        "waypoint": RandomWaypointModel,
        "drunkard": DrunkardModel,
        "random-direction": RandomDirectionModel,
        "gauss-markov": GaussMarkovModel,
        "rpgm": ReferencePointGroupModel,
    }
    try:
        factory = models[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown mobility model {name!r}; expected one of {sorted(models)}"
        ) from None
    return factory(**parameters)
