"""Boundary policies.

Mobility models occasionally push a node past the edge of the deployment
region.  Three standard remedies exist — clamp to the wall, reflect off it,
or wrap around toroidally — and :class:`BoundaryPolicy` names them so that
experiment configurations can select one declaratively.  The built-in
models use clamping/reflection directly via :class:`repro.geometry.Region`,
but the policy enum is part of the public API for custom models.
"""

from __future__ import annotations

import enum

from repro.geometry.region import Region
from repro.types import Positions


class BoundaryPolicy(enum.Enum):
    """How out-of-region positions are corrected."""

    CLAMP = "clamp"
    REFLECT = "reflect"
    WRAP = "wrap"

    def apply(self, region: Region, positions: Positions) -> Positions:
        """Apply the policy to ``positions`` with respect to ``region``."""
        if self is BoundaryPolicy.CLAMP:
            return region.clamp(positions)
        if self is BoundaryPolicy.REFLECT:
            return region.reflect(positions)
        return region.wrap(positions)

    @classmethod
    def from_name(cls, name: str) -> "BoundaryPolicy":
        """Look up a policy by its lowercase name (``clamp``/``reflect``/``wrap``)."""
        try:
            return cls(name.lower())
        except ValueError:
            valid = ", ".join(policy.value for policy in cls)
            raise ValueError(
                f"unknown boundary policy {name!r}; expected one of: {valid}"
            ) from None
