"""The random direction mobility model (extension).

Not part of the paper's evaluation, but a standard third point of
comparison for the "does the precise mobility model matter?" question that
the paper raises: each node picks a direction uniformly at random and a
travel duration, walks in that direction at a constant speed, and reflects
off the region boundary; when the duration expires it pauses briefly and
picks a new direction.  Unlike random waypoint, this model does not
concentrate nodes in the centre of the region.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.types import Positions


class RandomDirectionModel(MobilityModel):
    """Constant-speed travel in a random direction with boundary reflection.

    Args:
        speed: distance travelled per step while moving.
        travel_steps: mean number of steps of a travel leg (the actual leg
            length is drawn uniformly from ``[1, 2 * travel_steps]``).
        tpause: steps to pause between legs.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        speed: float = 1.0,
        travel_steps: int = 100,
        tpause: int = 0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        if travel_steps <= 0:
            raise ConfigurationError(
                f"travel_steps must be positive, got {travel_steps}"
            )
        if tpause < 0:
            raise ConfigurationError(f"tpause must be non-negative, got {tpause}")
        self.speed = float(speed)
        self.travel_steps = int(travel_steps)
        self.tpause = int(tpause)
        self._directions: Optional[np.ndarray] = None
        self._legs_remaining: Optional[np.ndarray] = None
        self._pause_remaining: Optional[np.ndarray] = None

    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        self._directions = self._random_directions(n, state.region.dimension, rng)
        self._legs_remaining = rng.integers(1, 2 * self.travel_steps + 1, size=n)
        self._pause_remaining = np.zeros(n, dtype=int)

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        assert self._directions is not None
        assert self._legs_remaining is not None
        assert self._pause_remaining is not None

        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions

        pausing = self._pause_remaining > 0
        self._pause_remaining[pausing] -= 1
        moving = ~pausing

        if moving.any():
            indices = np.nonzero(moving)[0]
            stepped = positions[indices] + self.speed * self._directions[indices]
            positions[indices] = state.region.reflect(stepped)
            self._legs_remaining[indices] -= 1

            finished = indices[self._legs_remaining[indices] <= 0]
            if finished.size:
                self._pause_remaining[finished] = self.tpause
                self._directions[finished] = self._random_directions(
                    finished.size, state.region.dimension, rng
                )
                self._legs_remaining[finished] = rng.integers(
                    1, 2 * self.travel_steps + 1, size=finished.size
                )
        return positions

    @staticmethod
    def _random_directions(
        count: int, dimension: int, rng: np.random.Generator
    ) -> np.ndarray:
        vectors = rng.normal(size=(count, dimension))
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return vectors / norms

    def describe(self) -> str:
        return (
            f"RandomDirectionModel(speed={self.speed}, travel_steps={self.travel_steps}, "
            f"tpause={self.tpause}, pstationary={self.pstationary})"
        )
