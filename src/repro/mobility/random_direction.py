"""The random direction mobility model (extension).

Not part of the paper's evaluation, but a standard third point of
comparison for the "does the precise mobility model matter?" question that
the paper raises: each node picks a direction uniformly at random and a
travel duration, walks in that direction at a constant speed, and reflects
off the region boundary; when the duration expires it pauses briefly and
picks a new direction.  Unlike random waypoint, this model does not
concentrate nodes in the centre of the region.

Leg arithmetic
--------------
A node's walk is a sequence of *legs* of a whole number of steps.  Each
leg stores its origin, unit direction and total step count, and every
in-leg position is the closed form ``reflect(origin + speed * k *
direction)`` (billiard folding of the straight-line point into the
region).  Random draws happen only at leg renewals — one
``rng.normal``-based direction batch plus one ``rng.integers`` duration
batch for all the nodes finishing that step — so per-step and
whole-trajectory execution evaluate identical expressions and consume
identical random streams.  That makes the vectorized
:meth:`RandomDirectionModel.trajectory` override (which fills whole
pause/cruise segments per node and batches the renewal draws at each
finish event) bit-identical to ``steps - 1`` sequential
:meth:`~repro.mobility.base.MobilityModel.step` calls, including the
model state and the random stream left behind.

(The closed form is also a deliberate dynamics fix, not just a speedup:
the previous implementation reflected each incremental step without
moving the leg origin, so a node whose leg hit a wall oscillated in
place against it for the rest of the leg instead of traversing the
region like the billiard boundary this docstring always promised.)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.stats.rng import make_rng
from repro.types import Positions


class RandomDirectionModel(MobilityModel):
    """Constant-speed travel in a random direction with boundary reflection.

    Args:
        speed: distance travelled per step while moving.
        travel_steps: mean number of steps of a travel leg (the actual leg
            length is drawn uniformly from ``[1, 2 * travel_steps]``).
        tpause: steps to pause between legs.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        speed: float = 1.0,
        travel_steps: int = 100,
        tpause: int = 0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        if travel_steps <= 0:
            raise ConfigurationError(
                f"travel_steps must be positive, got {travel_steps}"
            )
        if tpause < 0:
            raise ConfigurationError(f"tpause must be non-negative, got {tpause}")
        self.speed = float(speed)
        self.travel_steps = int(travel_steps)
        self.tpause = int(tpause)
        self._directions: Optional[np.ndarray] = None
        self._leg_origins: Optional[np.ndarray] = None
        self._leg_steps: Optional[np.ndarray] = None
        self._leg_totals: Optional[np.ndarray] = None
        self._pause_remaining: Optional[np.ndarray] = None

    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        self._directions = self._random_directions(n, state.region.dimension, rng)
        self._leg_totals = rng.integers(1, 2 * self.travel_steps + 1, size=n)
        self._leg_origins = state.positions.copy()
        self._leg_steps = np.zeros(n, dtype=np.int64)
        self._pause_remaining = np.zeros(n, dtype=np.int64)

    def _cruise_positions(self, nodes: np.ndarray, steps_in_leg: np.ndarray) -> np.ndarray:
        """Closed-form in-leg positions: ``reflect(origin + speed*k*dir)``."""
        state = self.state
        raw = (
            self._leg_origins[nodes]
            + self._directions[nodes] * (self.speed * steps_in_leg)[..., None]
        )
        return state.region.reflect(raw)

    def _renew_legs(self, nodes: np.ndarray, origins: np.ndarray,
                    rng: np.random.Generator) -> None:
        """Draw fresh directions/durations for ``nodes`` (ascending order)."""
        self._pause_remaining[nodes] = self.tpause
        self._directions[nodes] = self._random_directions(
            nodes.size, self.state.region.dimension, rng
        )
        self._leg_totals[nodes] = rng.integers(
            1, 2 * self.travel_steps + 1, size=nodes.size
        )
        self._leg_origins[nodes] = origins
        self._leg_steps[nodes] = 0

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        assert self._directions is not None
        assert self._leg_steps is not None
        assert self._leg_totals is not None
        assert self._pause_remaining is not None

        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions

        pausing = self._pause_remaining > 0
        self._pause_remaining[pausing] -= 1
        moving = ~pausing

        if moving.any():
            indices = np.nonzero(moving)[0]
            self._leg_steps[indices] += 1
            positions[indices] = self._cruise_positions(
                indices, self._leg_steps[indices]
            )
            finished = indices[
                self._leg_steps[indices] >= self._leg_totals[indices]
            ]
            if finished.size:
                self._renew_legs(finished, positions[finished], rng)
        return positions

    # ------------------------------------------------------------------ #
    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp=None,
    ) -> np.ndarray:
        """Vectorized batch: whole legs at a time, draws batched per renewal.

        Bit-identical to ``steps - 1`` sequential :meth:`step` calls
        (frames, final model state and random stream): positions use the
        same closed-form leg arithmetic, and direction/duration draws
        happen at exactly the leg-finish steps the sequential execution
        would hit, for the same node sets in the same order.  The Python
        loop runs per *renewal event* — every pause/cruise segment in
        between is filled with one reflected slice assignment.  The
        closed-form segment arithmetic runs under ``xp``
        (:mod:`repro.backend`; host NumPy by default); renewal draws stay
        on the host generator per the RNG contract.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        if xp is None:
            xp = np
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        frames = np.empty((steps, n, dimension), dtype=float)
        frames[0] = state.positions
        if steps == 1 or n == 0:
            # An empty network still "takes" the steps (no draws either way).
            state.step_index += steps - 1
            return frames

        last = steps - 1
        pause = self._pause_remaining
        leg_steps = self._leg_steps
        # Absolute frame at which each node finishes its current leg:
        # the remaining pause, then one frame per remaining leg step.
        next_finish = pause + (self._leg_totals - leg_steps)
        filled = np.zeros(n, dtype=np.int64)

        def fill_node(node: int, until: int) -> None:
            """Fill frames ``filled[node]+1 .. until`` (pause, then cruise)."""
            start = filled[node] + 1
            if start > until:
                return
            span = until - start + 1
            resting = min(int(pause[node]), span)
            if resting:
                frames[start:start + resting, node] = frames[filled[node], node]
                pause[node] -= resting
            cruise = span - resting
            if cruise:
                counts = xp.arange(
                    leg_steps[node] + 1, leg_steps[node] + cruise + 1
                )
                frames[start + resting:until + 1, node] = self._cruise_positions(
                    xp.full(cruise, node), counts
                )
                leg_steps[node] += cruise
            filled[node] = until

        while True:
            event = int(next_finish.min())
            if event > last:
                break
            finishing = np.nonzero(next_finish == event)[0]
            for node in finishing:
                fill_node(int(node), event)
            self._renew_legs(finishing, frames[event, finishing], generator)
            next_finish[finishing] = event + self.tpause + self._leg_totals[finishing]

        for node in range(n):
            fill_node(node, last)

        # Stationary nodes are pinned to wherever they started.
        mask = state.stationary_mask
        if mask.any():
            frames[:, mask] = state.positions[mask]
        state.positions = frames[last].copy()
        state.step_index += last
        return frames

    # ------------------------------------------------------------------ #
    def _checkpoint_model_state(self):
        return {
            "directions": self._directions.copy(),
            "leg_origins": self._leg_origins.copy(),
            "leg_steps": self._leg_steps.copy(),
            "leg_totals": self._leg_totals.copy(),
            "pause_remaining": self._pause_remaining.copy(),
        }

    def _restore_model_state(self, model_state) -> None:
        self._directions = np.array(model_state["directions"], dtype=float)
        self._leg_origins = np.array(model_state["leg_origins"], dtype=float)
        self._leg_steps = np.array(model_state["leg_steps"], dtype=np.int64)
        self._leg_totals = np.array(model_state["leg_totals"], dtype=np.int64)
        self._pause_remaining = np.array(
            model_state["pause_remaining"], dtype=np.int64
        )

    @staticmethod
    def _random_directions(
        count: int, dimension: int, rng: np.random.Generator, xp=np
    ) -> np.ndarray:
        vectors = rng.normal(size=(count, dimension))
        # sqrt-of-sum-of-squares is bit-identical to np.linalg.norm here
        # and, unlike the linalg sub-namespace, array-API portable.
        norms = xp.sqrt(xp.sum(vectors * vectors, axis=1, keepdims=True))
        norms = xp.where(norms == 0.0, 1.0, norms)
        return vectors / norms

    def describe(self) -> str:
        return (
            f"RandomDirectionModel(speed={self.speed}, travel_steps={self.travel_steps}, "
            f"tpause={self.tpause}, pstationary={self.pstationary})"
        )
