"""The Gauss–Markov mobility model (extension).

A temporally correlated model: each node has a velocity vector that evolves
as an AR(1) process around a mean velocity, so consecutive movements are
correlated (tunable with ``alpha``) rather than independent as in the
drunkard model or piecewise deterministic as in random waypoint.  Included
to broaden the mobility-model ablation beyond the paper's two models.

Draw protocol
-------------
Each step consumes exactly one ``(n, d)`` Gaussian innovation block.
Because a NumPy generator fills ``rng.normal(size=(steps, n, d))`` with
exactly the same values as ``steps`` sequential ``rng.normal(size=(n, d))``
calls, the vectorized :meth:`GaussMarkovModel.trajectory` override draws a
whole run's innovations in one call and is bit-identical — frames, final
state and random stream — to per-step
:meth:`~repro.mobility.base.MobilityModel.step` execution.  The AR(1)
recurrence itself stays a per-step loop (each velocity depends on the
previous one, and the boundary reflection flips velocity components
data-dependently), but that loop is a handful of cheap array operations
per step with no random-draw bookkeeping left in it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.stats.rng import make_rng
from repro.types import Positions


class GaussMarkovModel(MobilityModel):
    """Gauss–Markov correlated random mobility.

    Args:
        mean_speed: magnitude of the long-run mean velocity.
        alpha: memory parameter in ``[0, 1]``; 0 is memoryless (pure noise),
            1 is straight-line motion at the initial velocity.
        noise_std: standard deviation of the velocity innovation.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        mean_speed: float = 1.0,
        alpha: float = 0.75,
        noise_std: float = 0.5,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if mean_speed < 0:
            raise ConfigurationError(
                f"mean_speed must be non-negative, got {mean_speed}"
            )
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if noise_std < 0:
            raise ConfigurationError(f"noise_std must be non-negative, got {noise_std}")
        self.mean_speed = float(mean_speed)
        self.alpha = float(alpha)
        self.noise_std = float(noise_std)
        self._velocities: Optional[np.ndarray] = None
        self._mean_velocities: Optional[np.ndarray] = None

    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        dimension = state.region.dimension
        directions = rng.normal(size=(n, dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        directions /= norms
        self._mean_velocities = directions * self.mean_speed
        self._velocities = self._mean_velocities.copy()

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        assert self._velocities is not None
        assert self._mean_velocities is not None

        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions

        noise = rng.normal(scale=self.noise_std, size=self._velocities.shape)
        self._velocities = (
            self.alpha * self._velocities
            + (1.0 - self.alpha) * self._mean_velocities
            + np.sqrt(max(1.0 - self.alpha**2, 0.0)) * noise
        )
        stepped = positions + self._velocities
        reflected = state.region.reflect(stepped)
        # Where a reflection happened, flip the corresponding velocity
        # component so the node continues away from the wall.
        bounced = ~np.isclose(stepped, reflected)
        self._velocities[bounced] = -self._velocities[bounced]
        return reflected

    # ------------------------------------------------------------------ #
    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp=None,
    ) -> np.ndarray:
        """Vectorized batch: one Gaussian draw for the whole block of steps.

        Bit-identical to ``steps - 1`` sequential :meth:`step` calls —
        the AR(1) velocity update, boundary reflection with velocity
        flipping, stationary-node pinning and the base class's containment
        clamp are evaluated with exactly the per-step expressions, while
        all random draws happen in a single ``rng.normal`` call.  The
        recurrence is operator-only array arithmetic plus host-side
        region/``isclose`` bookkeeping, so it is array-API portable by
        construction; ``xp`` (:mod:`repro.backend`) is accepted for
        interface uniformity and unused.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        frames = np.empty((steps, n, dimension), dtype=float)
        frames[0] = state.positions
        if steps == 1 or n == 0:
            # An empty network still "takes" the steps (no draws either way).
            state.step_index += steps - 1
            return frames

        assert self._velocities is not None
        assert self._mean_velocities is not None
        region = state.region
        mask = state.stationary_mask
        noise = generator.normal(
            scale=self.noise_std, size=(steps - 1,) + self._velocities.shape
        )
        for index in range(steps - 1):
            # The exact _advance arithmetic, with noise[index] in place of
            # the per-step draw.
            self._velocities = (
                self.alpha * self._velocities
                + (1.0 - self.alpha) * self._mean_velocities
                + np.sqrt(max(1.0 - self.alpha**2, 0.0)) * noise[index]
            )
            stepped = state.positions + self._velocities
            reflected = region.reflect(stepped)
            bounced = ~np.isclose(stepped, reflected)
            self._velocities[bounced] = -self._velocities[bounced]
            # The exact _step_in_place boundary/pinning bookkeeping.
            new_positions = reflected
            if mask.any():
                new_positions[mask] = state.positions[mask]
            if not region.contains(new_positions):
                new_positions = region.clamp(new_positions)
            state.positions = new_positions
            frames[index + 1] = new_positions
        state.step_index += steps - 1
        return frames

    # ------------------------------------------------------------------ #
    def _checkpoint_model_state(self):
        return {
            "velocities": self._velocities.copy(),
            "mean_velocities": self._mean_velocities.copy(),
        }

    def _restore_model_state(self, model_state) -> None:
        self._velocities = np.array(model_state["velocities"], dtype=float)
        self._mean_velocities = np.array(
            model_state["mean_velocities"], dtype=float
        )

    def describe(self) -> str:
        return (
            f"GaussMarkovModel(mean_speed={self.mean_speed}, alpha={self.alpha}, "
            f"noise_std={self.noise_std}, pstationary={self.pstationary})"
        )
