"""The degenerate "no mobility" model.

Setting ``#steps = 1`` in the paper's simulator corresponds to the
stationary case; in this library the same effect is obtained either by
running a single step or by using :class:`StationaryModel`, which never
moves any node.  Having it as an explicit model keeps the simulator code
free of special cases and lets the stationary critical range be computed by
exactly the same machinery as the mobile thresholds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.types import Positions


class StationaryModel(MobilityModel):
    """A mobility model in which no node ever moves."""

    def __init__(self) -> None:
        super().__init__(pstationary=1.0)

    def _prepare(self, rng: np.random.Generator) -> None:
        # Nothing to allocate — positions never change.
        return None

    def _advance(self, rng: np.random.Generator) -> Positions:
        return self.state.positions.copy()

    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp=None,
    ) -> np.ndarray:
        """Vectorized batch: every frame repeats the current positions.

        Neither :meth:`_advance` nor the base-class stepping consumes any
        random draws for a stationary model, so this broadcast is
        bit-identical to ``steps - 1`` individual :meth:`step` calls.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        if xp is None:
            xp = np
        state = self.state
        frames = xp.repeat(xp.asarray(state.positions[None, :, :]), steps, axis=0)
        state.step_index += steps - 1
        return frames

    def advance(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Frame-free fast-forward: bump the step counter, nothing else.

        Stationary stepping consumes no random draws and never changes a
        position, so advancing is pure bookkeeping.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        self.state.step_index += steps

    def describe(self) -> str:
        return "StationaryModel()"
