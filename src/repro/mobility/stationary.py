"""The degenerate "no mobility" model.

Setting ``#steps = 1`` in the paper's simulator corresponds to the
stationary case; in this library the same effect is obtained either by
running a single step or by using :class:`StationaryModel`, which never
moves any node.  Having it as an explicit model keeps the simulator code
free of special cases and lets the stationary critical range be computed by
exactly the same machinery as the mobile thresholds.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.base import MobilityModel
from repro.types import Positions


class StationaryModel(MobilityModel):
    """A mobility model in which no node ever moves."""

    def __init__(self) -> None:
        super().__init__(pstationary=1.0)

    def _prepare(self, rng: np.random.Generator) -> None:
        # Nothing to allocate — positions never change.
        return None

    def _advance(self, rng: np.random.Generator) -> Positions:
        return self.state.positions.copy()

    def describe(self) -> str:
        return "StationaryModel()"
