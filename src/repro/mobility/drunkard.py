"""The drunkard (random walk) mobility model.

The paper's second model represents non-intentional motion:

* with probability ``pstationary`` a node never moves (base class);
* at each step, a mobile node pauses with probability ``ppause``;
* otherwise its next position is drawn uniformly at random from the disk of
  radius ``m`` centred at its current position (intersected with the
  deployment region — positions falling outside are re-drawn, falling back
  to clamping after a bounded number of attempts so a node wedged exactly
  in a corner cannot stall the simulation).

The paper's "moderate but heterogeneous mobility" default is
``pstationary=0.1, ppause=0.3, m=0.01*l``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.types import Positions

#: How many times a fresh in-disk draw is attempted before clamping.
_MAX_REDRAWS = 8


class DrunkardModel(MobilityModel):
    """Random-walk mobility with per-step pauses and stationary nodes.

    Args:
        step_radius: the radius ``m`` of the disk from which the next
            position is drawn.
        ppause: probability that a mobile node does not move at a step.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        step_radius: float = 1.0,
        ppause: float = 0.0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if step_radius <= 0:
            raise ConfigurationError(
                f"step_radius must be positive, got {step_radius}"
            )
        if not 0.0 <= ppause <= 1.0:
            raise ConfigurationError(f"ppause must be in [0, 1], got {ppause}")
        self.step_radius = float(step_radius)
        self.ppause = float(ppause)

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_defaults(cls, side: float) -> "DrunkardModel":
        """The parameterisation used in Figure 3: ``pstationary=0.1``,
        ``ppause=0.3``, ``m = 0.01 * l``."""
        return cls(step_radius=max(0.01 * side, 1e-9), ppause=0.3, pstationary=0.1)

    # ------------------------------------------------------------------ #
    def _prepare(self, rng: np.random.Generator) -> None:
        # The drunkard model is memoryless; no per-node state is needed.
        return None

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions

        moving = rng.random(n) >= self.ppause
        if not moving.any():
            return positions

        indices = np.nonzero(moving)[0]
        new_points = self._draw_in_disk(positions[indices], rng)
        region = state.region

        # Redraw points that left the region; clamp the stubborn ones.
        for _ in range(_MAX_REDRAWS):
            outside = ~np.all(
                (new_points >= 0.0) & (new_points <= region.side), axis=1
            )
            if not outside.any():
                break
            redraw = self._draw_in_disk(positions[indices[outside]], rng)
            new_points[outside] = redraw
        new_points = region.clamp(new_points)

        positions[indices] = new_points
        return positions

    def _draw_in_disk(
        self, centers: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform draws from the d-ball of radius ``m`` around each centre."""
        count, dimension = centers.shape
        # Uniform direction: normalised Gaussian vector; uniform radius in a
        # d-ball: U^(1/d) scaling.
        directions = rng.normal(size=(count, dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        directions /= norms
        radii = self.step_radius * rng.random(count) ** (1.0 / dimension)
        return centers + directions * radii[:, None]

    def describe(self) -> str:
        return (
            f"DrunkardModel(m={self.step_radius}, ppause={self.ppause}, "
            f"pstationary={self.pstationary})"
        )
