"""The drunkard (random walk) mobility model.

The paper's second model represents non-intentional motion:

* with probability ``pstationary`` a node never moves (base class);
* at each step, a mobile node pauses with probability ``ppause``;
* otherwise its next position is drawn uniformly at random from the disk of
  radius ``m`` centred at its current position; a draw that falls outside
  the deployment region is reflected off the boundary back inside
  (billiard reflection never increases the distance from the centre, so
  every step still moves a node by at most ``m``).

The paper's "moderate but heterogeneous mobility" default is
``pstationary=0.1, ppause=0.3, m=0.01*l``.

Draw protocol
-------------
Each step consumes exactly one uniform block of fixed per-node width: a
pause coin and a radius uniform, plus the direction uniforms (a sign in one
dimension, an angle in two, Box–Muller pairs for a normalised Gaussian
vector in higher dimensions).  Because a
NumPy generator fills ``rng.random((steps, n, k))`` with exactly the same
values as ``steps`` sequential ``rng.random((n, k))`` calls, the vectorized
:meth:`DrunkardModel.trajectory` override draws a whole run's randomness in
a single call and is bit-identical — frames, final state and random stream —
to per-step :meth:`~repro.mobility.base.MobilityModel.step` calls.  (The
seed implementation redrew out-of-region points up to eight times before
clamping; that data-dependent consumption is what made whole-run batching
impossible, and reflection replaces it with the same step-length bound and
no boundary pile-up.)
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.region import Region
from repro.mobility.base import _ADVANCE_BATCH_ELEMENTS, MobilityModel
from repro.stats.rng import make_rng
from repro.types import Positions


class DrunkardModel(MobilityModel):
    """Random-walk mobility with per-step pauses and stationary nodes.

    Args:
        step_radius: the radius ``m`` of the disk from which the next
            position is drawn.
        ppause: probability that a mobile node does not move at a step.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        step_radius: float = 1.0,
        ppause: float = 0.0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if step_radius <= 0:
            raise ConfigurationError(
                f"step_radius must be positive, got {step_radius}"
            )
        if not 0.0 <= ppause <= 1.0:
            raise ConfigurationError(f"ppause must be in [0, 1], got {ppause}")
        self.step_radius = float(step_radius)
        self.ppause = float(ppause)

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_defaults(cls, side: float) -> "DrunkardModel":
        """The parameterisation used in Figure 3: ``pstationary=0.1``,
        ``ppause=0.3``, ``m = 0.01 * l``."""
        return cls(step_radius=max(0.01 * side, 1e-9), ppause=0.3, pstationary=0.1)

    # ------------------------------------------------------------------ #
    def _prepare(self, rng: np.random.Generator) -> None:
        # The drunkard model is memoryless; no per-node state is needed.
        return None

    def _block_width(self, dimension: int) -> int:
        """Uniforms consumed per node per step.

        A pause coin and a radius uniform, plus whatever the direction
        needs: one uniform in one and two dimensions (a sign / an angle),
        or the Box–Muller pairs of a normalised Gaussian vector above.
        """
        if dimension <= 2:
            return 3
        return 2 + 2 * ((dimension + 1) // 2)

    def _decode_block(
        self, block: np.ndarray, xp=np
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Turn a ``(..., n, width)`` uniform block into moves and offsets.

        Returns the moving mask ``(..., n)`` and the in-disk offsets
        ``(..., n, d)``: a uniform direction scaled by ``m * U^(1/d)``.
        Identical arithmetic for a single step and for a whole batch of
        steps, which is what makes :meth:`trajectory` bit-identical to
        per-step execution.  The decode is pure closed-form array math, so
        it takes its namespace ``xp`` from the backend seam
        (:mod:`repro.backend`); the per-step path keeps the NumPy default.
        """
        dimension = self.state.positions.shape[1]
        moving = block[..., 0] >= self.ppause
        if dimension == 1:
            radii = self.step_radius * block[..., 1]
            signs = xp.where(block[..., 2] < 0.5, -1.0, 1.0)
            return moving, (signs * radii)[..., None]
        if dimension == 2:
            radii = self.step_radius * xp.sqrt(block[..., 1])
            angle = (2.0 * xp.pi) * block[..., 2]
            offsets = xp.empty(block.shape[:-1] + (2,), dtype=xp.float64)
            offsets[..., 0] = xp.cos(angle) * radii
            offsets[..., 1] = xp.sin(angle) * radii
            return moving, offsets
        radii = self.step_radius * block[..., 1] ** (1.0 / dimension)
        # Box–Muller: each uniform pair yields two standard normals.
        first = xp.maximum(block[..., 2::2], xp.finfo(xp.float64).smallest_normal)
        second = block[..., 3::2]
        magnitude = xp.sqrt(-2.0 * xp.log(first))
        angle = (2.0 * xp.pi) * second
        normals = xp.empty(
            block.shape[:-1] + (magnitude.shape[-1] * 2,), dtype=xp.float64
        )
        normals[..., 0::2] = magnitude * xp.cos(angle)
        normals[..., 1::2] = magnitude * xp.sin(angle)
        directions = normals[..., :dimension]
        # sqrt-of-sum-of-squares is bit-identical to np.linalg.norm here
        # and, unlike the linalg sub-namespace, array-API portable.
        norms = xp.sqrt(xp.sum(directions * directions, axis=-1, keepdims=True))
        norms = xp.where(norms == 0.0, 1.0, norms)
        return moving, directions / norms * radii[..., None]

    @staticmethod
    def _reflect_escapees(region: Region, positions: np.ndarray) -> None:
        """Reflect, in place, the rows that stepped past the boundary.

        Billiard reflection is the identity on ``[0, side]``, so folding
        only the escaped rows is exactly equivalent to folding every moved
        row — while the cheap min/max guard lets the common interior step
        skip the reflection entirely.
        """
        if positions.size == 0:
            return
        side = region.side
        if positions.min() >= 0.0 and positions.max() <= side:
            return
        outside = ((positions < 0.0) | (positions > side)).any(axis=1)
        positions[outside] = region.reflect(positions[outside])

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        n, dimension = state.positions.shape
        if n == 0:
            return state.positions.copy()
        block = rng.random((n, self._block_width(dimension)))
        moving, offsets = self._decode_block(block)
        # Stationary nodes get a zero offset: adding 0.0 reproduces the
        # base class's pinning bit-for-bit, and keeps this step identical
        # to one iteration of the vectorized trajectory loop.
        active = moving & ~state.stationary_mask
        new_positions = state.positions + np.where(
            active[:, None], offsets, 0.0
        )
        self._reflect_escapees(state.region, new_positions)
        return new_positions

    # ------------------------------------------------------------------ #
    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp=None,
    ) -> np.ndarray:
        """Vectorized batch: one uniform draw and one Box–Muller transform
        for the whole block of steps.

        Bit-identical to ``steps - 1`` sequential :meth:`step` calls — the
        per-step Python work left is a position add and boundary reflection
        (the walk is sequential through the boundary), with all random draws
        and the direction/radius arithmetic done once for the whole batch.
        The batched decode arithmetic runs under ``xp``
        (:mod:`repro.backend`; host NumPy by default — draws always come
        from the host generator per the RNG contract).
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        if xp is None:
            xp = np
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        frames = np.empty((steps, n, dimension), dtype=float)
        frames[0] = state.positions
        if steps == 1 or n == 0:
            # An empty network still "takes" the steps (no draws either way).
            state.step_index += steps - 1
            return frames

        region = state.region
        blocks = generator.random((steps - 1, n, self._block_width(dimension)))
        moving, offsets = self._decode_block(xp.asarray(blocks), xp)
        active = moving & ~state.stationary_mask
        masked_offsets = np.asarray(xp.where(active[..., None], offsets, 0.0))
        positions = state.positions.copy()
        for index in range(steps - 1):
            positions += masked_offsets[index]
            self._reflect_escapees(region, positions)
            frames[index + 1] = positions
        state.positions = positions.copy()
        state.step_index += steps - 1
        return frames

    def advance(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Frame-free fast-forward: the :meth:`trajectory` loop minus frames.

        Draws the same ``(steps, n, width)`` uniform blocks (in bounded
        batches — a generator fills consecutive batch calls with exactly
        the values one big call would produce) and walks the positions
        through the same add-and-reflect loop, but never allocates a
        ``(steps, n, d)`` frame array.  Bit-identical in state and random
        stream to ``steps`` :meth:`step` calls.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        if steps == 0:
            return
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        if n == 0:
            # An empty network still "takes" the steps (no draws either way).
            state.step_index += steps
            return
        region = state.region
        width = self._block_width(dimension)
        batch = max(1, _ADVANCE_BATCH_ELEMENTS // max(1, n * width))
        positions = state.positions.copy()
        remaining = steps
        while remaining > 0:
            take = min(batch, remaining)
            blocks = generator.random((take, n, width))
            moving, offsets = self._decode_block(blocks)
            active = moving & ~state.stationary_mask
            masked_offsets = np.where(active[..., None], offsets, 0.0)
            for index in range(take):
                positions += masked_offsets[index]
                self._reflect_escapees(region, positions)
            remaining -= take
        state.positions = positions
        state.step_index += steps

    def describe(self) -> str:
        return (
            f"DrunkardModel(m={self.step_radius}, ppause={self.ppause}, "
            f"pstationary={self.pstationary})"
        )
