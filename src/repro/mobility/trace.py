"""Recording and replaying mobility traces.

A :class:`MobilityTrace` stores the positions of every node at every step
of a run.  Traces serve three purposes:

* **debugging/visualisation** — examples dump traces to inspect movement;
* **reproducibility** — a trace can be re-analysed with different
  transmitting ranges without re-running the mobility model, which is how
  the threshold search avoids re-simulating motion for every candidate
  ``r`` (the same trick the paper's simulator uses implicitly by comparing
  ranges on the same runs);
* **interchange** — traces can be exported to and re-imported from plain
  ``dict``/JSON structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.geometry.region import Region
from repro.mobility.base import MobilityModel
from repro.stats.rng import make_rng
from repro.types import Positions, SeedLike


@dataclass
class MobilityTrace:
    """Positions of ``n`` nodes over ``steps`` mobility steps.

    Attributes:
        frames: array of shape ``(steps, n, d)``; ``frames[t]`` is the
            placement at step ``t`` (step 0 is the initial placement).
        region: the deployment region the trace lives in.
    """

    frames: np.ndarray
    region: Region

    def __post_init__(self) -> None:
        frames = np.asarray(self.frames, dtype=float)
        if frames.ndim != 3:
            raise ConfigurationError(
                f"frames must have shape (steps, n, d), got {frames.shape}"
            )
        self.frames = frames

    # ------------------------------------------------------------------ #
    @property
    def step_count(self) -> int:
        """Number of recorded steps (including the initial placement)."""
        return self.frames.shape[0]

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return self.frames.shape[1]

    @property
    def dimension(self) -> int:
        """Dimensionality of the positions."""
        return self.frames.shape[2]

    def positions_at(self, step: int) -> Positions:
        """Placement at ``step`` (negative indices count from the end)."""
        return self.frames[step]

    def __iter__(self) -> Iterator[Positions]:
        return iter(self.frames)

    def __len__(self) -> int:
        return self.step_count

    # ------------------------------------------------------------------ #
    def displacement(self) -> np.ndarray:
        """Total distance travelled by each node over the whole trace."""
        if self.step_count < 2:
            return np.zeros(self.node_count)
        deltas = np.diff(self.frames, axis=0)
        return np.linalg.norm(deltas, axis=2).sum(axis=0)

    def to_dict(self) -> Dict:
        """Plain-Python representation suitable for JSON serialisation."""
        return {
            "region_side": self.region.side,
            "region_dimension": self.region.dimension,
            "frames": self.frames.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MobilityTrace":
        """Rebuild a trace from :meth:`to_dict` output."""
        region = Region(
            side=float(payload["region_side"]),
            dimension=int(payload["region_dimension"]),
        )
        return cls(frames=np.asarray(payload["frames"], dtype=float), region=region)


def record_trace(
    model: MobilityModel,
    initial_positions: Positions,
    region: Region,
    steps: int,
    seed: SeedLike = None,
) -> MobilityTrace:
    """Run ``model`` for ``steps`` steps and record every placement.

    The returned trace contains ``steps`` frames: the initial placement and
    the placement after each of the first ``steps - 1`` mobility steps, so a
    "stationary" run (``steps == 1``) records exactly the initial placement,
    matching the paper's ``#steps = 1`` convention.
    """
    if steps <= 0:
        raise SimulationError(f"steps must be positive, got {steps}")
    rng = make_rng(seed)
    positions = model.initialize(initial_positions, region, rng)
    frames: List[Positions] = [positions]
    for _ in range(steps - 1):
        frames.append(model.step(rng))
    return MobilityTrace(frames=np.stack(frames, axis=0), region=region)
