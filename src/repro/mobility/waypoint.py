"""The random waypoint mobility model.

The classical model of Johnson & Maltz [2], as parameterised by the paper:

* every node chooses a destination uniformly at random in the region and a
  speed uniformly at random in ``[vmin, vmax]``;
* it moves toward the destination in straight-line steps of length equal to
  its speed (one step = one simulation time unit);
* on arrival it pauses for ``tpause`` steps, then picks a new destination
  and speed;
* with probability ``pstationary`` a node never moves at all (handled by
  the base class).

The paper's "moderate mobility" default is ``pstationary=0, vmin=0.1,
vmax=0.01*l, tpause=2000``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.types import Positions


class RandomWaypointModel(MobilityModel):
    """Random waypoint mobility with pauses and stationary nodes.

    Args:
        vmin: minimum speed (distance per step); must be positive.
        vmax: maximum speed; must be at least ``vmin``.
        tpause: number of steps a node rests after reaching its destination.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        vmin: float = 0.1,
        vmax: float = 1.0,
        tpause: int = 0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if vmin <= 0:
            raise ConfigurationError(f"vmin must be positive, got {vmin}")
        if vmax < vmin:
            raise ConfigurationError(
                f"vmax ({vmax}) must be at least vmin ({vmin})"
            )
        if tpause < 0:
            raise ConfigurationError(f"tpause must be non-negative, got {tpause}")
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.tpause = int(tpause)
        self._destinations: Optional[np.ndarray] = None
        self._speeds: Optional[np.ndarray] = None
        self._pause_remaining: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_defaults(cls, side: float, pstationary: float = 0.0) -> "RandomWaypointModel":
        """The parameterisation used throughout Section 4.2 of the paper.

        ``vmin = 0.1``, ``vmax = 0.01 * l``, ``tpause = 2000``.
        """
        vmax = max(0.01 * side, 0.1)
        return cls(vmin=0.1, vmax=vmax, tpause=2000, pstationary=pstationary)

    # ------------------------------------------------------------------ #
    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        self._destinations = state.region.sample_uniform(n, rng)
        self._speeds = rng.uniform(self.vmin, self.vmax, size=n)
        self._pause_remaining = np.zeros(n, dtype=int)

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        assert self._destinations is not None
        assert self._speeds is not None
        assert self._pause_remaining is not None

        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions

        # Nodes currently pausing simply count down.
        pausing = self._pause_remaining > 0
        self._pause_remaining[pausing] -= 1

        moving = ~pausing
        if moving.any():
            deltas = self._destinations[moving] - positions[moving]
            distances = np.linalg.norm(deltas, axis=1)
            speeds = self._speeds[moving]
            arrive = distances <= speeds

            # Nodes that reach their destination this step snap to it and
            # start pausing; a new destination is drawn when the pause ends.
            moving_indices = np.nonzero(moving)[0]
            arriving_indices = moving_indices[arrive]
            cruising_indices = moving_indices[~arrive]

            if arriving_indices.size:
                positions[arriving_indices] = self._destinations[arriving_indices]
                self._pause_remaining[arriving_indices] = self.tpause
                # Draw the next leg immediately so that the node resumes as
                # soon as the pause expires.
                count = arriving_indices.size
                self._destinations[arriving_indices] = state.region.sample_uniform(
                    count, rng
                )
                self._speeds[arriving_indices] = rng.uniform(
                    self.vmin, self.vmax, size=count
                )

            if cruising_indices.size:
                legs = deltas[~arrive]
                leg_lengths = distances[~arrive][:, None]
                step_lengths = speeds[~arrive][:, None]
                positions[cruising_indices] = (
                    positions[cruising_indices] + legs / leg_lengths * step_lengths
                )

        return positions

    def describe(self) -> str:
        return (
            f"RandomWaypointModel(vmin={self.vmin}, vmax={self.vmax}, "
            f"tpause={self.tpause}, pstationary={self.pstationary})"
        )
