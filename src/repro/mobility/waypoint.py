"""The random waypoint mobility model.

The classical model of Johnson & Maltz [2], as parameterised by the paper:

* every node chooses a destination uniformly at random in the region and a
  speed uniformly at random in ``[vmin, vmax]``;
* it moves toward the destination in straight-line steps of length equal to
  its speed (one step = one simulation time unit);
* on arrival it pauses for ``tpause`` steps, then picks a new destination
  and speed;
* with probability ``pstationary`` a node never moves at all (handled by
  the base class).

The paper's "moderate mobility" default is ``pstationary=0, vmin=0.1,
vmax=0.01*l, tpause=2000``.

Leg arithmetic
--------------
A node's walk is a sequence of *legs*.  Each leg stores its origin, unit
direction, length and an elapsed-step counter, and every cruise position is
the closed form ``origin + unit * (speed * elapsed)``; a node arrives when
``speed * (elapsed + 1) >= length``.  Because per-step and whole-trajectory
execution evaluate exactly the same expressions, the vectorized
:meth:`RandomWaypointModel.trajectory` override (which fills each node's
frames one leg segment at a time and batches the destination/speed draws at
each arrival event) is bit-identical to ``steps - 1`` sequential
:meth:`~repro.mobility.base.MobilityModel.step` calls — including the random
stream it leaves behind.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.stats.rng import make_rng
from repro.types import Positions


#: Arrivals at least this many steps away are "beyond any horizon": the
#: exact step no longer matters (no trajectory is that long), so the
#: estimate is returned uncorrected.  Far below int64 overflow even after
#: adding a pause time and an absolute frame index.
_DISTANT_ARRIVAL = 2**60


def _steps_to_arrival(
    speeds: np.ndarray, elapsed: np.ndarray, lengths: np.ndarray, xp=np
) -> np.ndarray:
    """Number of further cruise attempts until each leg arrives.

    Returns, per node, the smallest ``j >= 1`` with
    ``speed * (elapsed + j) >= length`` — evaluated with exactly the
    arithmetic the per-step arrival test uses, so an estimate from the
    closed form is corrected against the real predicate (floating point
    division can be off by one step near exact multiples).  Estimates of
    :data:`_DISTANT_ARRIVAL` steps or more (degenerately slow nodes —
    where the float estimate may not even fit an int64) are clamped there
    and skipped by the exact correction, since only "later than the
    trajectory horizon" matters for them.
    """
    estimate = xp.ceil(lengths / speeds) - elapsed
    near = estimate < _DISTANT_ARRIVAL
    attempts = xp.where(near, xp.maximum(estimate, 1.0), _DISTANT_ARRIVAL)
    attempts = xp.astype(attempts, xp.int64)
    # Correct the estimate against the exact per-step predicate.
    while True:
        overshoot = (
            near
            & (attempts > 1)
            & (speeds * (elapsed + attempts - 1) >= lengths)
        )
        if not overshoot.any():
            break
        attempts[overshoot] -= 1
    while True:
        undershoot = near & (speeds * (elapsed + attempts) < lengths)
        if not undershoot.any():
            break
        attempts[undershoot] += 1
    return attempts


class RandomWaypointModel(MobilityModel):
    """Random waypoint mobility with pauses and stationary nodes.

    Args:
        vmin: minimum speed (distance per step); must be positive.
        vmax: maximum speed; must be at least ``vmin``.
        tpause: number of steps a node rests after reaching its destination.
        pstationary: probability that a node never moves.
    """

    def __init__(
        self,
        vmin: float = 0.1,
        vmax: float = 1.0,
        tpause: int = 0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if vmin <= 0:
            raise ConfigurationError(f"vmin must be positive, got {vmin}")
        if vmax < vmin:
            raise ConfigurationError(
                f"vmax ({vmax}) must be at least vmin ({vmin})"
            )
        if tpause < 0:
            raise ConfigurationError(f"tpause must be non-negative, got {tpause}")
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.tpause = int(tpause)
        self._destinations: Optional[np.ndarray] = None
        self._speeds: Optional[np.ndarray] = None
        self._pause_remaining: Optional[np.ndarray] = None
        self._leg_origins: Optional[np.ndarray] = None
        self._leg_units: Optional[np.ndarray] = None
        self._leg_lengths: Optional[np.ndarray] = None
        self._leg_elapsed: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @classmethod
    def paper_defaults(cls, side: float, pstationary: float = 0.0) -> "RandomWaypointModel":
        """The parameterisation used throughout Section 4.2 of the paper.

        ``vmin = 0.1``, ``vmax = 0.01 * l``, ``tpause = 2000``.
        """
        vmax = max(0.01 * side, 0.1)
        return cls(vmin=0.1, vmax=vmax, tpause=2000, pstationary=pstationary)

    # ------------------------------------------------------------------ #
    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        destinations = state.region.sample_uniform(n, rng)
        speeds = rng.uniform(self.vmin, self.vmax, size=n)
        self._destinations = np.empty_like(state.positions)
        self._speeds = np.empty(n, dtype=float)
        self._pause_remaining = np.zeros(n, dtype=np.int64)
        self._leg_origins = np.empty_like(state.positions)
        self._leg_units = np.empty_like(state.positions)
        self._leg_lengths = np.empty(n, dtype=float)
        self._leg_elapsed = np.zeros(n, dtype=np.int64)
        self._begin_leg(np.arange(n), state.positions, destinations, speeds)

    def _begin_leg(
        self,
        indices: np.ndarray,
        origins: np.ndarray,
        destinations: np.ndarray,
        speeds: np.ndarray,
        xp=np,
    ) -> None:
        """Start a fresh leg for ``indices``: origin, unit direction, length."""
        self._destinations[indices] = destinations
        self._speeds[indices] = speeds
        self._leg_origins[indices] = origins
        deltas = destinations - origins
        # sqrt-of-sum-of-squares is bit-identical to np.linalg.norm here
        # and, unlike the linalg sub-namespace, array-API portable.
        lengths = xp.sqrt(xp.sum(deltas * deltas, axis=1))
        self._leg_lengths[indices] = lengths
        safe = xp.where(lengths > 0.0, lengths, 1.0)
        self._leg_units[indices] = deltas / safe[:, None]
        self._leg_elapsed[indices] = 0

    def steps_until_next_arrival(self) -> int:
        """Number of further :meth:`step` calls until the first one that draws.

        The next ``k - 1`` steps of this model consume no random draws
        (pause countdowns and closed-form cruising only); the ``k``-th step
        hits the earliest arrival and draws the arriving nodes' new
        destinations and speeds.  Non-mutating — models that nest a
        waypoint instance (:class:`~repro.mobility.group.
        ReferencePointGroupModel`) use this to size the draw-free segments
        their vectorized trajectories can batch through.  An empty model
        never draws; it reports the :data:`_DISTANT_ARRIVAL` horizon.
        """
        if self.state.node_count == 0:
            return _DISTANT_ARRIVAL
        horizon = self._pause_remaining + _steps_to_arrival(
            self._speeds, self._leg_elapsed, self._leg_lengths
        )
        return int(horizon.min())

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions

        # Nodes currently pausing simply count down.
        pausing = self._pause_remaining > 0
        self._pause_remaining[pausing] -= 1

        moving = ~pausing
        if moving.any():
            arrive = moving & (
                self._speeds * (self._leg_elapsed + 1) >= self._leg_lengths
            )
            cruising = moving & ~arrive

            # Nodes that reach their destination this step snap to it and
            # start pausing; the next leg is drawn immediately so that the
            # node resumes as soon as the pause expires.
            if arrive.any():
                arriving_indices = np.nonzero(arrive)[0]
                positions[arriving_indices] = self._destinations[arriving_indices]
                self._pause_remaining[arriving_indices] = self.tpause
                count = arriving_indices.size
                new_destinations = state.region.sample_uniform(count, rng)
                new_speeds = rng.uniform(self.vmin, self.vmax, size=count)
                self._begin_leg(
                    arriving_indices,
                    positions[arriving_indices],
                    new_destinations,
                    new_speeds,
                )

            if cruising.any():
                cruising_indices = np.nonzero(cruising)[0]
                self._leg_elapsed[cruising_indices] += 1
                travelled = (
                    self._speeds[cruising_indices]
                    * self._leg_elapsed[cruising_indices]
                )
                positions[cruising_indices] = (
                    self._leg_origins[cruising_indices]
                    + self._leg_units[cruising_indices] * travelled[:, None]
                )

        return positions

    # ------------------------------------------------------------------ #
    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp=None,
    ) -> np.ndarray:
        """Vectorized batch: whole legs at a time, draws batched per arrival.

        Bit-identical to ``steps - 1`` sequential :meth:`step` calls (frames,
        final model state and random stream): positions use the same
        closed-form leg arithmetic, and destination/speed draws happen at
        exactly the arrival steps the sequential execution would hit, for
        the same node sets in the same order.  The Python loop runs per
        *arrival event* — a handful of times per node per run — while every
        pause/cruise segment in between is filled with one slice assignment.
        The closed-form cruise/arrival arithmetic runs under ``xp``
        (:mod:`repro.backend`; host NumPy by default — destination and
        speed draws always come from the host generator per the RNG
        contract).
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        if xp is None:
            xp = np
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        frames = np.empty((steps, n, dimension), dtype=float)
        frames[0] = state.positions
        if steps == 1 or n == 0:
            # An empty network still "takes" the steps (no draws either way).
            state.step_index += steps - 1
            return frames

        region = state.region
        last = steps - 1
        pause = self._pause_remaining
        elapsed = self._leg_elapsed
        # Next arrival step of every node, as an absolute frame index.
        next_arrival = pause + _steps_to_arrival(
            self._speeds, elapsed, self._leg_lengths, xp
        )
        filled = np.zeros(n, dtype=np.int64)

        def fill_node(node: int, until: int) -> None:
            """Fill frames ``filled[node]+1 .. until`` (pause, then cruise)."""
            start = filled[node] + 1
            if start > until:
                return
            span = until - start + 1
            resting = min(int(pause[node]), span)
            if resting:
                frames[start:start + resting, node] = frames[filled[node], node]
                pause[node] -= resting
            cruise = span - resting
            if cruise:
                travelled = self._speeds[node] * xp.arange(
                    elapsed[node] + 1, elapsed[node] + cruise + 1
                )
                frames[start + resting:until + 1, node] = (
                    self._leg_origins[node]
                    + self._leg_units[node] * travelled[:, None]
                )
                elapsed[node] += cruise
            filled[node] = until

        while True:
            event_step = int(next_arrival.min())
            if event_step > last:
                break
            arriving = np.nonzero(next_arrival == event_step)[0]
            for node in arriving:
                fill_node(int(node), event_step - 1)
                frames[event_step, node] = self._destinations[node]
                filled[node] = event_step
            pause[arriving] = self.tpause
            count = arriving.size
            new_destinations = region.sample_uniform(count, generator)
            new_speeds = generator.uniform(self.vmin, self.vmax, size=count)
            self._begin_leg(
                arriving, self._destinations[arriving].copy(),
                new_destinations, new_speeds, xp,
            )
            next_arrival[arriving] = (
                event_step
                + self.tpause
                + _steps_to_arrival(
                    new_speeds, elapsed[arriving], self._leg_lengths[arriving], xp
                )
            )

        for node in range(n):
            fill_node(node, last)

        # Stationary nodes are pinned to wherever they started.
        mask = state.stationary_mask
        if mask.any():
            frames[:, mask] = state.positions[mask]
        self._clamp_frames_like_step(frames, xp)
        state.positions = frames[last].copy()
        state.step_index += last
        return frames

    def advance(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """Frame-free fast-forward: the :meth:`trajectory` event loop with
        the per-frame fills replaced by closed-form leg arithmetic.

        Runs the exact arrival schedule of ``steps`` sequential
        :meth:`step` calls — destination/speed draws happen at the same
        steps, for the same node sets, in the same order — but each
        pause/cruise segment updates only the leg bookkeeping; the final
        position of a segment is the same closed form
        ``origin + unit * (speed * elapsed)`` the per-frame fill ends on,
        so no ``(steps, n, d)`` frame array is ever allocated.
        Bit-identical in state and random stream to per-step execution.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        if steps == 0:
            return
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        if n == 0:
            # An empty network still "takes" the steps (no draws either way).
            state.step_index += steps
            return

        region = state.region
        last = steps
        pause = self._pause_remaining
        elapsed = self._leg_elapsed
        # Next arrival step of every node, as an absolute frame index
        # (frame 0 is the current position; frame ``last`` the final one).
        next_arrival = pause + _steps_to_arrival(
            self._speeds, elapsed, self._leg_lengths
        )
        filled = np.zeros(n, dtype=np.int64)
        current = state.positions.copy()

        def advance_node(node: int, until: int) -> None:
            """Consume frames ``filled[node]+1 .. until`` (pause, cruise)."""
            start = filled[node] + 1
            if start > until:
                return
            span = until - start + 1
            resting = min(int(pause[node]), span)
            if resting:
                pause[node] -= resting
            cruise = span - resting
            if cruise:
                elapsed[node] += cruise
                travelled = self._speeds[node] * elapsed[node]
                current[node] = (
                    self._leg_origins[node]
                    + self._leg_units[node] * travelled
                )
            filled[node] = until

        while True:
            event_step = int(next_arrival.min())
            if event_step > last:
                break
            arriving = np.nonzero(next_arrival == event_step)[0]
            for node in arriving:
                advance_node(int(node), event_step - 1)
                current[node] = self._destinations[node]
                filled[node] = event_step
            pause[arriving] = self.tpause
            count = arriving.size
            new_destinations = region.sample_uniform(count, generator)
            new_speeds = generator.uniform(self.vmin, self.vmax, size=count)
            self._begin_leg(
                arriving, self._destinations[arriving].copy(),
                new_destinations, new_speeds,
            )
            next_arrival[arriving] = (
                event_step
                + self.tpause
                + _steps_to_arrival(
                    new_speeds, elapsed[arriving], self._leg_lengths[arriving]
                )
            )

        for node in range(n):
            advance_node(node, last)

        # Stationary nodes are pinned to wherever they started (their leg
        # state still evolves — and draws — exactly as in trajectory()).
        mask = state.stationary_mask
        if mask.any():
            current[mask] = state.positions[mask]
        self._clamp_frames_like_step(current[None])
        state.positions = current
        state.step_index += steps

    # ------------------------------------------------------------------ #
    def _checkpoint_model_state(self):
        return {
            "destinations": self._destinations.copy(),
            "speeds": self._speeds.copy(),
            "pause_remaining": self._pause_remaining.copy(),
            "leg_origins": self._leg_origins.copy(),
            "leg_units": self._leg_units.copy(),
            "leg_lengths": self._leg_lengths.copy(),
            "leg_elapsed": self._leg_elapsed.copy(),
        }

    def _restore_model_state(self, model_state) -> None:
        self._destinations = np.array(model_state["destinations"], dtype=float)
        self._speeds = np.array(model_state["speeds"], dtype=float)
        self._pause_remaining = np.array(
            model_state["pause_remaining"], dtype=np.int64
        )
        self._leg_origins = np.array(model_state["leg_origins"], dtype=float)
        self._leg_units = np.array(model_state["leg_units"], dtype=float)
        self._leg_lengths = np.array(model_state["leg_lengths"], dtype=float)
        self._leg_elapsed = np.array(model_state["leg_elapsed"], dtype=np.int64)

    def _clamp_frames_like_step(self, frames: np.ndarray, xp=np) -> None:
        """Apply the per-step containment check of the base class per frame."""
        region = self.state.region
        tolerance = 1e-9
        outside = ~xp.all(
            (frames >= -tolerance) & (frames <= region.side + tolerance),
            axis=(1, 2),
        )
        if outside.any():
            frames[outside] = xp.clip(frames[outside], 0.0, region.side)

    def describe(self) -> str:
        return (
            f"RandomWaypointModel(vmin={self.vmin}, vmax={self.vmax}, "
            f"tpause={self.tpause}, pstationary={self.pstationary})"
        )
