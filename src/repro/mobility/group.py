"""Reference-point group mobility (RPGM) — extension model.

In many deployments nodes move in groups (squads of workers, vehicle
convoys, clusters of sensors on drifting platforms).  The reference point
group mobility model captures this: each group has a logical centre that
follows a random-waypoint trajectory, and each member wanders in a small
disk around its reference point.  Group mobility is interesting for the
paper's question because motion is *correlated*: a whole group can drift
away from the rest of the network, which changes how disconnections look
compared to the independent-motion models of the paper.

Draw protocol
-------------
Each step consumes the nested centre model's draws (only at its arrival
steps) followed by exactly one uniform block of fixed per-node width for
the member offsets: a radius uniform plus the direction uniforms (a sign
in one dimension, an angle in two, Box–Muller pairs for a normalised
Gaussian vector in higher dimensions — the same scheme as
:class:`~repro.mobility.drunkard.DrunkardModel`).  An earlier revision
drew offsets via ``rng.normal`` plus a separate radius array; moving to
the fixed-width uniform block is a *deliberate stream change* that makes
whole-segment batching possible: between two centre-arrival events no
draw's size depends on simulated data, so the vectorized
:meth:`ReferencePointGroupModel.trajectory` override fills every
draw-free segment with one ``rng.random((segment, n, width))`` call and
is bit-identical — frames, final state (nested centre model included)
and random stream — to per-step :meth:`~repro.mobility.base.
MobilityModel.step` calls.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.stats.rng import make_rng
from repro.types import Positions


class ReferencePointGroupModel(MobilityModel):
    """Reference-point group mobility.

    Args:
        group_count: number of groups; nodes are assigned round-robin.
        vmin, vmax, tpause: random-waypoint parameters of the group centres.
        member_radius: radius of the disk around the reference point within
            which each member's position is drawn at every step.
        pstationary: probability that a node never moves (it stays at its
            initial position regardless of its group).
    """

    def __init__(
        self,
        group_count: int = 4,
        vmin: float = 0.1,
        vmax: float = 1.0,
        tpause: int = 0,
        member_radius: float = 10.0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if group_count < 1:
            raise ConfigurationError(f"group_count must be at least 1, got {group_count}")
        if member_radius <= 0:
            raise ConfigurationError(
                f"member_radius must be positive, got {member_radius}"
            )
        self.group_count = int(group_count)
        self.member_radius = float(member_radius)
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.tpause = int(tpause)
        # The group centres are moved by an internal random waypoint model.
        self._center_model = RandomWaypointModel(
            vmin=vmin, vmax=vmax, tpause=tpause, pstationary=0.0
        )
        self._assignment: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        groups = min(self.group_count, max(n, 1))
        self._assignment = np.arange(n) % groups if n else np.zeros(0, dtype=int)
        # Initial reference points: the centroid of each group's members
        # (clamped into the region), so the model starts consistent with the
        # supplied placement.
        centers = np.zeros((groups, state.region.dimension))
        for group in range(groups):
            members = state.positions[self._assignment == group]
            if members.shape[0]:
                centers[group] = members.mean(axis=0)
            else:
                centers[group] = state.region.sample_point(rng)
        centers = state.region.clamp(centers)
        self._center_model.initialize(centers, state.region, rng)

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        assert self._assignment is not None
        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions
        centers = self._center_model.step(rng)
        block = rng.random((n, self._member_block_width(state.region.dimension)))
        offsets = self._decode_member_block(block)
        positions = centers[self._assignment] + offsets
        return state.region.clamp(positions)

    def _member_block_width(self, dimension: int) -> int:
        """Uniforms consumed per member per step.

        A radius uniform plus whatever the direction needs: one uniform in
        one and two dimensions (a sign / an angle), or the Box–Muller
        pairs of a normalised Gaussian vector above.
        """
        if dimension <= 2:
            return 2
        return 1 + 2 * ((dimension + 1) // 2)

    def _decode_member_block(self, block: np.ndarray, xp=np) -> np.ndarray:
        """Turn a ``(..., n, width)`` uniform block into in-disk offsets.

        A uniform direction scaled by ``member_radius * U^(1/d)`` — uniform
        in the member disk.  Identical arithmetic for a single step and
        for a whole batch of steps, which is what makes :meth:`trajectory`
        bit-identical to per-step execution.  The decode is pure
        closed-form array math, so it takes its namespace ``xp`` from the
        backend seam (:mod:`repro.backend`); the per-step path keeps the
        NumPy default.
        """
        dimension = self.state.positions.shape[1]
        radii = self.member_radius * block[..., 0] ** (1.0 / dimension)
        if dimension == 1:
            signs = xp.where(block[..., 1] < 0.5, -1.0, 1.0)
            return (signs * radii)[..., None]
        if dimension == 2:
            angle = (2.0 * xp.pi) * block[..., 1]
            offsets = xp.empty(block.shape[:-1] + (2,), dtype=xp.float64)
            offsets[..., 0] = xp.cos(angle) * radii
            offsets[..., 1] = xp.sin(angle) * radii
            return offsets
        # Box–Muller: each uniform pair yields two standard normals.
        first = xp.maximum(block[..., 1::2], xp.finfo(xp.float64).smallest_normal)
        second = block[..., 2::2]
        magnitude = xp.sqrt(-2.0 * xp.log(first))
        angle = (2.0 * xp.pi) * second
        normals = xp.empty(
            block.shape[:-1] + (magnitude.shape[-1] * 2,), dtype=xp.float64
        )
        normals[..., 0::2] = magnitude * xp.cos(angle)
        normals[..., 1::2] = magnitude * xp.sin(angle)
        directions = normals[..., :dimension]
        # sqrt-of-sum-of-squares is bit-identical to np.linalg.norm here
        # and, unlike the linalg sub-namespace, array-API portable.
        norms = xp.sqrt(xp.sum(directions * directions, axis=-1, keepdims=True))
        norms = xp.where(norms == 0.0, 1.0, norms)
        return directions / norms * radii[..., None]

    # ------------------------------------------------------------------ #
    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp=None,
    ) -> np.ndarray:
        """Vectorized batch: whole draw-free segments at a time.

        Between two arrival events of the nested centre model no draw's
        size or order depends on simulated data, so each such segment is
        filled with one batched centre trajectory (which consumes no
        draws), one ``rng.random((segment, n, width))`` member block and
        one decode.  At each centre-arrival step the centre advances via
        :meth:`~repro.mobility.base.MobilityModel.step` — placing its
        destination/speed draws at exactly the stream position sequential
        execution would — followed by that step's member block.  The
        result is bit-identical to ``steps - 1`` sequential :meth:`step`
        calls: frames, final state (nested centre model included) and the
        random stream left behind.  The batched decode arithmetic runs
        under ``xp`` (:mod:`repro.backend`; host NumPy by default — draws
        always come from the host generator per the RNG contract).
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        if xp is None:
            xp = np
        state = self.state
        generator = make_rng(rng)
        n, dimension = state.positions.shape
        frames = np.empty((steps, n, dimension), dtype=float)
        frames[0] = state.positions
        if steps == 1 or n == 0:
            # An empty network still "takes" the steps; the centre model
            # never advances for one (sequential steps return before it).
            state.step_index += steps - 1
            return frames

        assert self._assignment is not None
        region = state.region
        assignment = self._assignment
        width = self._member_block_width(dimension)
        last = steps - 1
        filled = 0
        while filled < last:
            upcoming = self._center_model.steps_until_next_arrival()
            quiet = min(upcoming - 1, last - filled)
            if quiet > 0:
                # Frame 0 of the centre trajectory is its current position;
                # the slice keeps the ``quiet`` new frames.  No centre
                # arrival lies within the segment, so this consumes no
                # draws — the member blocks below are the stream's next.
                centers = self._center_model.trajectory(quiet + 1, generator)[1:]
                block = generator.random((quiet, n, width))
                offsets = self._decode_member_block(block, xp)
                batch = centers[:, assignment, :] + offsets
                frames[filled + 1 : filled + quiet + 1] = xp.clip(
                    batch, 0.0, region.side
                )
                filled += quiet
            if filled >= last:
                break
            # Centre-arrival step: the centre draws its new destinations
            # and speeds here, in exactly the sequential stream position.
            centers_now = self._center_model.step(generator)
            block = generator.random((n, width))
            offsets = self._decode_member_block(block, xp)
            frames[filled + 1] = xp.clip(
                centers_now[assignment] + offsets, 0.0, region.side
            )
            filled += 1

        # Stationary nodes are pinned to wherever they started.
        mask = state.stationary_mask
        if mask.any():
            frames[:, mask] = state.positions[mask]
        state.positions = frames[last].copy()
        state.step_index += last
        return frames

    # ------------------------------------------------------------------ #
    def _checkpoint_model_state(self):
        # The reference points move via a nested waypoint model; its full
        # snapshot (base state + leg arrays) rides along with ours.
        return {
            "assignment": self._assignment.copy(),
            "center": self._center_model.state_snapshot(),
        }

    def _restore_model_state(self, model_state) -> None:
        self._assignment = np.array(model_state["assignment"], dtype=int)
        self._center_model.restore_snapshot(model_state["center"])

    def group_of(self, node: int) -> int:
        """Group index of ``node`` (after initialisation)."""
        assert self._assignment is not None, "model not initialised"
        return int(self._assignment[node])

    def describe(self) -> str:
        return (
            f"ReferencePointGroupModel(groups={self.group_count}, "
            f"member_radius={self.member_radius}, vmin={self.vmin}, "
            f"vmax={self.vmax}, tpause={self.tpause}, "
            f"pstationary={self.pstationary})"
        )
