"""Reference-point group mobility (RPGM) — extension model.

In many deployments nodes move in groups (squads of workers, vehicle
convoys, clusters of sensors on drifting platforms).  The reference point
group mobility model captures this: each group has a logical centre that
follows a random-waypoint trajectory, and each member wanders in a small
disk around its reference point.  Group mobility is interesting for the
paper's question because motion is *correlated*: a whole group can drift
away from the rest of the network, which changes how disconnections look
compared to the independent-motion models of the paper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mobility.base import MobilityModel
from repro.mobility.waypoint import RandomWaypointModel
from repro.types import Positions


class ReferencePointGroupModel(MobilityModel):
    """Reference-point group mobility.

    Args:
        group_count: number of groups; nodes are assigned round-robin.
        vmin, vmax, tpause: random-waypoint parameters of the group centres.
        member_radius: radius of the disk around the reference point within
            which each member's position is drawn at every step.
        pstationary: probability that a node never moves (it stays at its
            initial position regardless of its group).
    """

    def __init__(
        self,
        group_count: int = 4,
        vmin: float = 0.1,
        vmax: float = 1.0,
        tpause: int = 0,
        member_radius: float = 10.0,
        pstationary: float = 0.0,
    ) -> None:
        super().__init__(pstationary=pstationary)
        if group_count < 1:
            raise ConfigurationError(f"group_count must be at least 1, got {group_count}")
        if member_radius <= 0:
            raise ConfigurationError(
                f"member_radius must be positive, got {member_radius}"
            )
        self.group_count = int(group_count)
        self.member_radius = float(member_radius)
        self.vmin = float(vmin)
        self.vmax = float(vmax)
        self.tpause = int(tpause)
        # The group centres are moved by an internal random waypoint model.
        self._center_model = RandomWaypointModel(
            vmin=vmin, vmax=vmax, tpause=tpause, pstationary=0.0
        )
        self._assignment: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def _prepare(self, rng: np.random.Generator) -> None:
        state = self.state
        n = state.node_count
        groups = min(self.group_count, max(n, 1))
        self._assignment = np.arange(n) % groups if n else np.zeros(0, dtype=int)
        # Initial reference points: the centroid of each group's members
        # (clamped into the region), so the model starts consistent with the
        # supplied placement.
        centers = np.zeros((groups, state.region.dimension))
        for group in range(groups):
            members = state.positions[self._assignment == group]
            if members.shape[0]:
                centers[group] = members.mean(axis=0)
            else:
                centers[group] = state.region.sample_point(rng)
        centers = state.region.clamp(centers)
        self._center_model.initialize(centers, state.region, rng)

    def _advance(self, rng: np.random.Generator) -> Positions:
        state = self.state
        assert self._assignment is not None
        positions = state.positions.copy()
        n = state.node_count
        if n == 0:
            return positions
        centers = self._center_model.step(rng)
        offsets = self._random_offsets(n, state.region.dimension, rng)
        positions = centers[self._assignment] + offsets
        return state.region.clamp(positions)

    def _random_offsets(
        self, count: int, dimension: int, rng: np.random.Generator
    ) -> np.ndarray:
        directions = rng.normal(size=(count, dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        directions /= norms
        radii = self.member_radius * rng.random(count) ** (1.0 / dimension)
        return directions * radii[:, None]

    # ------------------------------------------------------------------ #
    def _checkpoint_model_state(self):
        # The reference points move via a nested waypoint model; its full
        # snapshot (base state + leg arrays) rides along with ours.
        return {
            "assignment": self._assignment.copy(),
            "center": self._center_model.state_snapshot(),
        }

    def _restore_model_state(self, model_state) -> None:
        self._assignment = np.array(model_state["assignment"], dtype=int)
        self._center_model.restore_snapshot(model_state["center"])

    def group_of(self, node: int) -> int:
        """Group index of ``node`` (after initialisation)."""
        assert self._assignment is not None, "model not initialised"
        return int(self._assignment[node])

    def describe(self) -> str:
        return (
            f"ReferencePointGroupModel(groups={self.group_count}, "
            f"member_radius={self.member_radius}, vmin={self.vmin}, "
            f"vmax={self.vmax}, tpause={self.tpause}, "
            f"pstationary={self.pstationary})"
        )
