"""Base classes of the mobility framework.

A mobility model is a stateful object: :meth:`MobilityModel.initialize`
binds it to a region and an initial placement, and every subsequent call to
:meth:`MobilityModel.step` advances all nodes by one mobility step and
returns the new ``(n, d)`` position array.  The simulator treats models as
black boxes behind this interface, which is what makes the mobility-model
ablation a one-line change.

Snapshot / restore
------------------
A running model (plus the generator driving it) can be frozen into a
picklable :class:`MobilityCheckpoint` with
:meth:`MobilityModel.checkpoint_state` and resumed — in the same process
or any other — with :meth:`MobilityModel.from_state`.  The checkpoint
captures *everything* the future of the walk depends on: the shared
:class:`MobilityState`, every per-node array of the concrete model
(subclasses declare theirs via :meth:`MobilityModel._checkpoint_model_state`
/ :meth:`MobilityModel._restore_model_state`) and the exact bit-generator
position of the random stream.  A restored model therefore produces
bit-identical frames and consumes bit-identical draws, which is what lets
one long trajectory be split into contiguous chunks executed by different
worker processes (see :mod:`repro.simulation.sharding`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import ConfigurationError, SimulationError
from repro.geometry.region import Region
from repro.stats.rng import capture_rng_state, make_rng, restore_rng_state
from repro.types import Positions, as_positions

#: Upper bound on the floats the fallback :meth:`MobilityModel.advance`
#: buffers per trajectory call (positions only — no per-frame distance
#: matrices are built during a fast-forward).
_ADVANCE_BATCH_ELEMENTS = 2_000_000


@dataclass
class MobilityState:
    """Mutable per-run state shared by all mobility models.

    Attributes:
        region: deployment region the nodes live in.
        positions: current ``(n, d)`` positions.
        step_index: number of steps taken since initialisation.
        stationary_mask: boolean array marking nodes that never move
            (the paper's ``pstationary`` mechanism).
    """

    region: Region
    positions: Positions
    step_index: int = 0
    stationary_mask: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=bool))

    @property
    def node_count(self) -> int:
        """Number of nodes being moved."""
        return self.positions.shape[0]


@dataclass(frozen=True)
class MobilityCheckpoint:
    """A frozen, picklable snapshot of a model mid-run plus its RNG.

    Attributes:
        snapshot: the base :class:`MobilityState` fields (region, positions,
            step index, stationary mask) and, under ``"model"``, whatever
            per-node arrays the concrete model declared.
        rng_state: the exact bit-generator state of the stream driving the
            model, as captured by :func:`repro.stats.rng.capture_rng_state`.

    Produced by :meth:`MobilityModel.checkpoint_state`, consumed by
    :meth:`MobilityModel.from_state`.  All contained arrays are private
    copies — neither further stepping of the source model nor mutation by
    a restoring process can corrupt a checkpoint.
    """

    snapshot: Dict[str, Any]
    rng_state: Dict[str, Any]


class MobilityModel(abc.ABC):
    """Abstract base class of every mobility model.

    Subclasses implement :meth:`_prepare` (allocate per-node state) and
    :meth:`_advance` (move the mobile nodes by one step).  The base class
    handles validation, the shared ``pstationary`` mechanism and bookkeeping.
    """

    def __init__(self, pstationary: float = 0.0) -> None:
        if not 0.0 <= pstationary <= 1.0:
            raise ConfigurationError(
                f"pstationary must be in [0, 1], got {pstationary}"
            )
        self.pstationary = pstationary
        self._state: Optional[MobilityState] = None

    # ------------------------------------------------------------------ #
    # Public interface
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> MobilityState:
        """Current mobility state.

        Raises:
            SimulationError: if the model has not been initialised.
        """
        if self._state is None:
            raise SimulationError(
                "mobility model must be initialised before it can be queried"
            )
        return self._state

    @property
    def is_initialized(self) -> bool:
        """``True`` once :meth:`initialize` has been called."""
        return self._state is not None

    def initialize(
        self,
        positions: Positions,
        region: Region,
        rng: Optional[np.random.Generator] = None,
    ) -> Positions:
        """Bind the model to an initial placement.

        Each node is independently marked stationary with probability
        ``pstationary``; stationary nodes keep their initial position for
        the whole run.

        Returns:
            The initial positions (a defensive copy).
        """
        generator = make_rng(rng)
        points = as_positions(positions).copy()
        if points.shape[1] != region.dimension:
            raise ConfigurationError(
                f"positions have dimension {points.shape[1]}, "
                f"but the region has dimension {region.dimension}"
            )
        if not region.contains(points):
            raise ConfigurationError("initial positions must lie inside the region")
        n = points.shape[0]
        stationary = generator.random(n) < self.pstationary
        self._state = MobilityState(
            region=region,
            positions=points,
            step_index=0,
            stationary_mask=stationary,
        )
        self._prepare(generator)
        return self._state.positions.copy()

    def step(self, rng: Optional[np.random.Generator] = None) -> Positions:
        """Advance every mobile node by one mobility step.

        Returns:
            The new positions as an ``(n, d)`` array (a copy; mutating the
            result does not affect the model).
        """
        return self._step_in_place(make_rng(rng)).copy()

    def _step_in_place(self, generator: np.random.Generator) -> Positions:
        """Advance one step and return ``state.positions`` *without* copying.

        The batched :meth:`trajectory` / :meth:`run` loops copy the result
        into their own buffers (or discard it) anyway, so the defensive copy
        :meth:`step` makes would be pure overhead there.  Callers must not
        mutate the returned array.
        """
        state = self.state
        new_positions = self._advance(generator)
        # Stationary nodes are pinned to wherever they started.
        mask = state.stationary_mask
        if mask.any():
            new_positions[mask] = state.positions[mask]
        if not state.region.contains(new_positions):
            new_positions = state.region.clamp(new_positions)
        state.positions = new_positions
        state.step_index += 1
        return new_positions

    def trajectory(
        self,
        steps: int,
        rng: Optional[np.random.Generator] = None,
        *,
        xp: Any = None,
    ) -> np.ndarray:
        """The next ``steps`` frames as one ``(steps, n, d)`` array.

        Frame 0 is the *current* position array; frames ``1 .. steps - 1``
        are produced by advancing the model ``steps - 1`` times, consuming
        exactly the same random draws as that many :meth:`step` calls — so
        batched and per-step simulation are bit-identical.  Models whose
        dynamics allow it (e.g. :class:`~repro.mobility.stationary.
        StationaryModel`) override this with a fully vectorized
        implementation; the simulation engine consumes trajectories in
        bounded-size batches, so such models skip the per-step Python
        overhead entirely.

        ``xp`` names the array namespace the vectorized overrides run
        their closed-form batch arithmetic under (:mod:`repro.backend`);
        it must be host-compatible (NumPy or the strict verification
        namespace) because random draws stay on the host ``Generator`` —
        the declared RNG contract.  This base implementation is the
        per-step *reference* path and is deliberately NumPy-only: it pins
        bit-identical seed behaviour, so the parameter is accepted for
        interface uniformity and ignored.
        """
        if steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {steps}")
        state = self.state
        generator = make_rng(rng)
        frames = np.empty((steps,) + state.positions.shape, dtype=float)
        frames[0] = state.positions
        for index in range(1, steps):
            frames[index] = self._step_in_place(generator)
        return frames

    def advance(
        self, steps: int, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Advance ``steps`` steps without materialising any frames.

        Semantically identical to ``steps`` :meth:`step` calls — same
        final state, same random draws consumed — but built for the
        fast-forward path of :mod:`repro.simulation.sharding`, where the
        intermediate positions are discarded anyway.  The built-in models
        override this to skip allocating ``(steps, n, d)`` frame arrays
        entirely; this base implementation falls back to bounded-size
        :meth:`trajectory` batches, so any model whose ``trajectory`` is
        bit-identical to per-step execution inherits a correct (if
        allocation-heavier) fast-forward for free.
        """
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        if steps == 0:
            return
        generator = make_rng(rng)
        n, dimension = self.state.positions.shape
        per_frame = max(1, n * dimension)
        batch = max(1, _ADVANCE_BATCH_ELEMENTS // per_frame)
        remaining = steps
        while remaining > 0:
            take = min(batch, remaining)
            # Frame 0 of a trajectory is the current position array;
            # request one extra frame so exactly ``take`` new frames are
            # consumed.
            self.trajectory(take + 1, generator)
            remaining -= take

    def run(
        self, steps: int, rng: Optional[np.random.Generator] = None
    ) -> Positions:
        """Advance ``steps`` times and return the final positions (a copy)."""
        if steps < 0:
            raise ConfigurationError(f"steps must be non-negative, got {steps}")
        generator = make_rng(rng)
        for _ in range(steps):
            self._step_in_place(generator)
        return self.state.positions.copy()

    # ------------------------------------------------------------------ #
    # Snapshot / restore
    # ------------------------------------------------------------------ #
    def state_snapshot(self) -> Dict[str, Any]:
        """The model's full mutable state as plain, picklable data.

        Covers the shared :class:`MobilityState` plus the concrete model's
        per-node arrays (``"model"`` sub-mapping).  Arrays are copied, so
        the snapshot is immune to further stepping.
        """
        state = self.state
        return {
            "region_side": state.region.side,
            "region_dimension": state.region.dimension,
            "positions": state.positions.copy(),
            "step_index": state.step_index,
            "stationary_mask": state.stationary_mask.copy(),
            "model": self._checkpoint_model_state(),
        }

    def restore_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Install a :meth:`state_snapshot` onto this instance.

        The instance must have been constructed with the same parameters
        as the snapshotted one; restoring replaces any prior state
        (initialisation is not required first).
        """
        region = Region(
            side=float(snapshot["region_side"]),
            dimension=int(snapshot["region_dimension"]),
        )
        self._state = MobilityState(
            region=region,
            positions=np.array(snapshot["positions"], dtype=float),
            step_index=int(snapshot["step_index"]),
            stationary_mask=np.array(snapshot["stationary_mask"], dtype=bool),
        )
        self._restore_model_state(snapshot["model"])

    def checkpoint_state(self, rng: np.random.Generator) -> MobilityCheckpoint:
        """Freeze this model *and* its driving generator into a checkpoint.

        A model restored from the result (:meth:`from_state`) continues
        the walk bit-for-bit: same frames, same draws consumed, same
        stream left behind — in this process or any other.
        """
        return MobilityCheckpoint(
            snapshot=self.state_snapshot(),
            rng_state=capture_rng_state(rng),
        )

    def from_state(self, checkpoint: MobilityCheckpoint) -> np.random.Generator:
        """Restore a checkpoint onto this instance; returns the resumed RNG.

        The instance must have been constructed with the same parameters
        as the checkpointed model (e.g. via the same
        :class:`~repro.simulation.config.MobilitySpec`).  The returned
        generator sits at exactly the captured stream position.
        """
        self.restore_snapshot(checkpoint.snapshot)
        return restore_rng_state(checkpoint.rng_state)

    def _checkpoint_model_state(self) -> Dict[str, Any]:
        """Picklable copies of the concrete model's mutable per-node state.

        The base implementation returns an empty mapping — correct for
        memoryless models (stationary, drunkard).  Models with per-node
        arrays (legs, velocities, pause counters, nested models) override
        this together with :meth:`_restore_model_state`.
        """
        return {}

    def _restore_model_state(self, model_state: Dict[str, Any]) -> None:
        """Install the mapping produced by :meth:`_checkpoint_model_state`."""
        if model_state:
            raise SimulationError(
                f"{type(self).__name__} received model state to restore but "
                "does not override _restore_model_state"
            )

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _prepare(self, rng: np.random.Generator) -> None:
        """Allocate per-node state after :meth:`initialize`."""

    @abc.abstractmethod
    def _advance(self, rng: np.random.Generator) -> Positions:
        """Return the next positions for all nodes (mobile and stationary).

        The base class overwrites the rows of stationary nodes afterwards,
        so implementations may move every node uniformly.
        """

    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line human readable description used in experiment reports."""
        return f"{type(self).__name__}(pstationary={self.pstationary})"
