"""Theory experiments for Section 3 (Theorems 1–5).

Two registered experiments:

* ``theorem5-1d`` — for a sweep of line lengths ``l`` (with ``n``
  proportional to ``l``), measure by simulation the empirical critical
  product ``r * n`` at which 99 % of random 1-D placements are connected
  and compare it with the ``l log l`` threshold of Theorem 5, the exact
  closed-form predictor, and the weaker isolated-node bound.
* ``occupancy-domains`` — exact vs asymptotic (Theorem 1) moments of the
  number of empty cells across the five growth domains, plus Monte-Carlo
  estimates, validating the occupancy machinery that the Theorem 4 proof
  relies on.

Random streams
--------------
Both experiments originally walked *one* sequential ``default_rng`` across
their parameter values, which made every value's numbers depend on every
value measured before it — so the sweeps could only be cached whole and
could never be decomposed, checkpointed per value, or scheduled
concurrently.  Each value now draws from its own child stream
(:func:`repro.stats.rng.value_rng`, keyed by the seed, the experiment
label and the value's bit pattern), making the measures order-invariant,
picklable and value-checkpointable.  This deliberately shifts the
simulated numbers relative to the shared-stream implementation; the new
streams are pinned by regression tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.bounds_1d import (
    connectivity_probability_1d_exact,
    critical_product_1d,
    range_for_connectivity_probability_1d,
)
from repro.analysis.disconnection import (
    gap_event_probability_estimate,
    isolated_node_probability_1d,
)
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.occupancy.asymptotic import (
    asymptotic_empty_cells_mean,
    asymptotic_empty_cells_variance,
)
from repro.occupancy.cells import simulate_empty_cells
from repro.occupancy.domains import classify_domain
from repro.occupancy.exact import empty_cells_mean, empty_cells_variance
from repro.simulation.sweep import SweepCheckpoint, SweepResult, sweep_parameter
from repro.stats.rng import value_rng
from repro.store.keys import scale_payload


#: Node density used by the 1-D experiment: n = DENSITY_FACTOR * l.
DENSITY_FACTOR = 0.25

#: The five occupancy growth domains swept by ``occupancy-domains``.
GROWTH_DOMAIN_COUNT = 5


def occupancy_domain_values(scale: ExperimentScale):
    """The ``domain`` sweep visits one fixed index per growth domain —
    not the system sides the registry's default would report."""
    return tuple(float(index) for index in range(GROWTH_DOMAIN_COUNT))


def occupancy_domain_width(scale: ExperimentScale) -> int:
    """Sweep width of ``occupancy-domains`` (one value per domain)."""
    return GROWTH_DOMAIN_COUNT


def occupancy_cell_count(scale: ExperimentScale) -> int:
    """Cells per row of the occupancy experiment (smoke runs shrink it)."""
    return 64 if scale.name == "smoke" else 256


@dataclass(frozen=True)
class Theorem5Measure:
    """Picklable per-value measure of the 1-D critical-product sweep.

    The empirical critical range of a 1-D placement is its longest
    consecutive gap, computed directly in ``O(n log n)`` per placement so
    that the densest settings (thousands of nodes) stay affordable.  Each
    side draws from its own :func:`~repro.stats.rng.value_rng` child
    stream, so the row at one side is independent of every other side.
    """

    scale: ExperimentScale

    def __call__(self, side: float) -> Dict[str, float]:
        from repro.connectivity.critical_range import longest_gap_1d

        rng = value_rng(self.scale.seed, side, label="theorem5-1d")
        node_count = max(4, int(round(DENSITY_FACTOR * side)))
        samples = []
        for _ in range(self.scale.stationary_iterations):
            placement = rng.uniform(0.0, side, size=(node_count, 1))
            samples.append(longest_gap_1d(placement))
        samples.sort()
        index = max(0, int(math.ceil(0.99 * len(samples))) - 1)
        empirical_r = samples[index]
        exact_r = range_for_connectivity_probability_1d(node_count, side, 0.99)
        threshold_product = critical_product_1d(side)
        return {
            "n": float(node_count),
            "empirical_r99": empirical_r,
            "exact_r99": exact_r,
            "empirical_rn": empirical_r * node_count,
            "exact_rn": exact_r * node_count,
            "l_log_l": threshold_product,
            "empirical_rn/l_log_l": (
                empirical_r * node_count / threshold_product
                if threshold_product > 0
                else float("nan")
            ),
            "p_connected_at_threshold": connectivity_probability_1d_exact(
                node_count, side, threshold_product / node_count
            ),
            "p_isolated_at_threshold": isolated_node_probability_1d(
                node_count, side, threshold_product / node_count
            ),
        }


@dataclass(frozen=True)
class OccupancyDomainMeasure:
    """Picklable per-value measure of the occupancy-domains sweep.

    The number of cells is fixed per row and the ball count is chosen to
    land in each of the five growth domains in turn.  Each domain's
    Monte-Carlo estimate draws from its own child stream.
    """

    scale: ExperimentScale

    def __call__(self, index: float) -> Dict[str, float]:
        cells = occupancy_cell_count(self.scale)
        ball_counts = {
            "LHD": max(2, int(round(math.sqrt(cells)))),
            "LHID": max(3, int(round(cells ** 0.75))),
            "CD": cells,
            "RHID": int(round(cells * math.sqrt(math.log(cells)))),
            "RHD": int(round(cells * math.log(cells))),
        }
        iterations = max(200, self.scale.stationary_iterations)
        rng = value_rng(self.scale.seed, index, label="occupancy-domains")
        label, n = list(ball_counts.items())[int(index)]
        samples = simulate_empty_cells(n, cells, iterations, rng)
        domain = classify_domain(n, cells)
        return {
            "n": float(n),
            "C": float(cells),
            "domain_index": float(list(ball_counts).index(label)),
            "exact_mean": empty_cells_mean(n, cells),
            "asymptotic_mean": asymptotic_empty_cells_mean(n, cells),
            "simulated_mean": float(np.mean(samples)),
            "exact_variance": empty_cells_variance(n, cells),
            "asymptotic_variance": asymptotic_empty_cells_variance(n, cells),
            "simulated_variance": float(np.var(samples, ddof=1)),
            "gap_probability": gap_event_probability_estimate(n, cells),
            "is_rhd": 1.0 if domain.value == "RHD" else 0.0,
        }


def theorem5_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Empirical critical product ``r n`` vs the ``l log l`` threshold."""
    return sweep_parameter(
        "l",
        scale.sides,
        Theorem5Measure(scale=scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


def occupancy_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Exact vs asymptotic vs Monte-Carlo moments of ``mu(n, C)``."""
    return sweep_parameter(
        "domain",
        list(range(GROWTH_DOMAIN_COUNT)),
        OccupancyDomainMeasure(scale=scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


def _theorem5_measure(scale: ExperimentScale) -> Theorem5Measure:
    return Theorem5Measure(scale=scale)


def _occupancy_measure(scale: ExperimentScale) -> OccupancyDomainMeasure:
    return OccupancyDomainMeasure(scale=scale)


#: Tag of the random-stream scheme baked into the theory payloads: the
#: per-value streams deliberately changed the simulated numbers, so the
#: tag invalidates any store entry written by the old shared-stream
#: implementation (whose keys carried no payload tag) instead of letting
#: a warm store serve stale rows that no longer match a cold run.
_RNG_SCHEME = "per-value-streams"


def theorem5_payload(scale: ExperimentScale) -> Dict:
    """Content-address payload of the theorem5-1d sweep."""
    return {
        "computation": "theorem5-1d",
        "rng": _RNG_SCHEME,
        "scale": scale_payload(scale),
    }


def occupancy_payload(scale: ExperimentScale) -> Dict:
    """Content-address payload of the occupancy-domains sweep.

    The cell count is part of the payload explicitly: it is derived from
    ``scale.name`` (smoke runs shrink it), which :func:`scale_payload`
    deliberately drops — without it, two scales differing only in name
    would collide on a key while simulating different cell grids.
    """
    return {
        "computation": "occupancy-domains",
        "cells": occupancy_cell_count(scale),
        "rng": _RNG_SCHEME,
        "scale": scale_payload(scale),
    }


register_experiment(Experiment(
    identifier="theorem5-1d",
    title="Critical product r*n vs l log l in one dimension",
    description=(
        "Empirical (simulated) and exact critical transmitting ranges of "
        "1-D uniform placements with n proportional to l, compared against "
        "the Theorem 5 threshold product l log l."
    ),
    paper_reference="Theorems 3-5",
    run=theorem5_experiment,
    cache_payload=theorem5_payload,
    sweep_measure=_theorem5_measure,
))

register_experiment(Experiment(
    identifier="occupancy-domains",
    title="Occupancy moments across growth domains",
    description=(
        "Exact, asymptotic (Theorem 1) and Monte-Carlo moments of the "
        "number of empty cells mu(n, C) in each of the five growth domains, "
        "plus the occupancy-based estimate of the {10*1} gap event."
    ),
    paper_reference="Theorems 1-2, Lemma 1",
    run=occupancy_experiment,
    sweep_width=occupancy_domain_width,
    sweep_values=occupancy_domain_values,
    cache_payload=occupancy_payload,
    parameter_name="domain",
    sweep_measure=_occupancy_measure,
))
