"""Theory experiments for Section 3 (Theorems 1–5).

Two registered experiments:

* ``theorem5-1d`` — for a sweep of line lengths ``l`` (with ``n``
  proportional to ``l``), measure by simulation the empirical critical
  product ``r * n`` at which 99 % of random 1-D placements are connected
  and compare it with the ``l log l`` threshold of Theorem 5, the exact
  closed-form predictor, and the weaker isolated-node bound.
* ``occupancy-domains`` — exact vs asymptotic (Theorem 1) moments of the
  number of empty cells across the five growth domains, plus Monte-Carlo
  estimates, validating the occupancy machinery that the Theorem 4 proof
  relies on.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.analysis.bounds_1d import (
    connectivity_probability_1d_exact,
    critical_product_1d,
    range_for_connectivity_probability_1d,
)
from repro.analysis.disconnection import (
    gap_event_probability_estimate,
    isolated_node_probability_1d,
)
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.occupancy.asymptotic import (
    asymptotic_empty_cells_mean,
    asymptotic_empty_cells_variance,
)
from repro.occupancy.cells import simulate_empty_cells
from repro.occupancy.domains import classify_domain
from repro.occupancy.exact import empty_cells_mean, empty_cells_variance
from repro.simulation.sweep import SweepResult, sweep_parameter


#: Node density used by the 1-D experiment: n = DENSITY_FACTOR * l.
DENSITY_FACTOR = 0.25

#: The five occupancy growth domains swept by ``occupancy-domains``.
GROWTH_DOMAIN_COUNT = 5


def occupancy_domain_values(scale: ExperimentScale):
    """The ``domain`` sweep visits one fixed index per growth domain —
    not the system sides the registry's default would report."""
    return tuple(float(index) for index in range(GROWTH_DOMAIN_COUNT))


def occupancy_domain_width(scale: ExperimentScale) -> int:
    """Sweep width of ``occupancy-domains`` (one value per domain)."""
    return GROWTH_DOMAIN_COUNT


def theorem5_experiment(scale: ExperimentScale) -> SweepResult:
    """Empirical critical product ``r n`` vs the ``l log l`` threshold.

    The empirical critical range of a 1-D placement is its longest
    consecutive gap, computed directly in ``O(n log n)`` per placement so
    that the densest settings (thousands of nodes) stay affordable.
    """
    rng = np.random.default_rng(scale.seed)

    def measure(side: float) -> Dict[str, float]:
        node_count = max(4, int(round(DENSITY_FACTOR * side)))
        from repro.connectivity.critical_range import longest_gap_1d

        samples = []
        for _ in range(scale.stationary_iterations):
            placement = rng.uniform(0.0, side, size=(node_count, 1))
            samples.append(longest_gap_1d(placement))
        samples.sort()
        index = max(0, int(math.ceil(0.99 * len(samples))) - 1)
        empirical_r = samples[index]
        exact_r = range_for_connectivity_probability_1d(node_count, side, 0.99)
        threshold_product = critical_product_1d(side)
        return {
            "n": float(node_count),
            "empirical_r99": empirical_r,
            "exact_r99": exact_r,
            "empirical_rn": empirical_r * node_count,
            "exact_rn": exact_r * node_count,
            "l_log_l": threshold_product,
            "empirical_rn/l_log_l": (
                empirical_r * node_count / threshold_product
                if threshold_product > 0
                else float("nan")
            ),
            "p_connected_at_threshold": connectivity_probability_1d_exact(
                node_count, side, threshold_product / node_count
            ),
            "p_isolated_at_threshold": isolated_node_probability_1d(
                node_count, side, threshold_product / node_count
            ),
        }

    return sweep_parameter("l", scale.sides, measure)


def occupancy_experiment(scale: ExperimentScale) -> SweepResult:
    """Exact vs asymptotic vs Monte-Carlo moments of ``mu(n, C)``.

    The number of cells is fixed per row and the ball count is chosen to
    land in each of the five growth domains in turn.
    """
    cells = 64 if scale.name == "smoke" else 256
    rng = np.random.default_rng(scale.seed)
    ball_counts = {
        "LHD": max(2, int(round(math.sqrt(cells)))),
        "LHID": max(3, int(round(cells ** 0.75))),
        "CD": cells,
        "RHID": int(round(cells * math.sqrt(math.log(cells)))),
        "RHD": int(round(cells * math.log(cells))),
    }
    iterations = max(200, scale.stationary_iterations)

    def measure(index: float) -> Dict[str, float]:
        label, n = list(ball_counts.items())[int(index)]
        samples = simulate_empty_cells(n, cells, iterations, rng)
        domain = classify_domain(n, cells)
        return {
            "n": float(n),
            "C": float(cells),
            "domain_index": float(list(ball_counts).index(label)),
            "exact_mean": empty_cells_mean(n, cells),
            "asymptotic_mean": asymptotic_empty_cells_mean(n, cells),
            "simulated_mean": float(np.mean(samples)),
            "exact_variance": empty_cells_variance(n, cells),
            "asymptotic_variance": asymptotic_empty_cells_variance(n, cells),
            "simulated_variance": float(np.var(samples, ddof=1)),
            "gap_probability": gap_event_probability_estimate(n, cells),
            "is_rhd": 1.0 if domain.value == "RHD" else 0.0,
        }

    return sweep_parameter(
        "domain", list(range(len(ball_counts))), measure
    )


register_experiment(Experiment(
    identifier="theorem5-1d",
    title="Critical product r*n vs l log l in one dimension",
    description=(
        "Empirical (simulated) and exact critical transmitting ranges of "
        "1-D uniform placements with n proportional to l, compared against "
        "the Theorem 5 threshold product l log l."
    ),
    paper_reference="Theorems 3-5",
    run=theorem5_experiment,
))

register_experiment(Experiment(
    identifier="occupancy-domains",
    title="Occupancy moments across growth domains",
    description=(
        "Exact, asymptotic (Theorem 1) and Monte-Carlo moments of the "
        "number of empty cells mu(n, C) in each of the five growth domains, "
        "plus the occupancy-based estimate of the {10*1} gap event."
    ),
    paper_reference="Theorems 1-2, Lemma 1",
    run=occupancy_experiment,
    sweep_width=occupancy_domain_width,
    sweep_values=occupancy_domain_values,
))
