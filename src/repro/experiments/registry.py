"""Experiment registry and scale presets.

An :class:`Experiment` couples an identifier (``"fig2"``), a human readable
description, and a ``run`` callable taking an :class:`ExperimentScale` and
returning a :class:`repro.simulation.sweep.SweepResult`.  Experiments are
registered at import time by the figure modules and looked up by the CLI
and the benchmarks.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.simulation.sweep import SweepCheckpoint, SweepResult, split_worker_budget


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs of an experiment run.

    Attributes:
        name: preset name (``smoke``, ``default``, ``paper`` or custom).
        sides: the system sides ``l`` to sweep (Figures 2–6).
        steps: mobility steps per iteration.
        iterations: independent iterations per configuration.
        stationary_iterations: placements drawn when estimating
            ``rstationary``.
        parameter_points: number of points in the parameter sweeps of
            Figures 7–9.
        seed: root random seed.
        workers: worker processes for the simulation iterations *inside
            one parameter value* (see :class:`repro.simulation.config.
            SimulationConfig`; results are bit-identical for every value).
        sweep_workers: parameter values of a figure sweep measured
            concurrently, each in its own worker process (see
            :func:`repro.simulation.sweep.sweep_parameter`; bit-identical
            for every value).  The two levels multiply — a run occupies up
            to ``sweep_workers * workers`` processes, so split one total
            budget with :meth:`with_worker_budget`.
        shard_steps: trajectory frames per intra-iteration shard (see
            :mod:`repro.simulation.sharding`); ``None`` shards
            automatically when an iteration pool holds more workers than
            iterations.  Execution-only, bit-identical for every value.
        transport: worker→parent result transport (``"auto"``,
            ``"pickle"`` or ``"shm"`` — see :mod:`repro.simulation.shm`).
            Execution-only, bit-identical for every value.
        backend: array backend the connectivity kernels run under
            (:mod:`repro.backend`).  An *environment* field, not an
            execution knob: a non-NumPy backend is a declared different
            execution environment, so — unlike ``workers`` and friends —
            ``backend`` participates in result-store cache keys and is
            rejected from campaign spec matrices.
    """

    name: str
    sides: Sequence[float]
    steps: int
    iterations: int
    stationary_iterations: int
    parameter_points: int
    seed: Optional[int] = 20020623  # DSN 2002 conference date.
    workers: int = 1
    sweep_workers: int = 1
    shard_steps: Optional[int] = None
    transport: str = "auto"
    backend: str = "numpy"

    def with_workers(self, workers: int) -> "ExperimentScale":
        """Copy of this scale with ``workers`` iteration-level processes."""
        return replace(self, workers=workers)

    def with_sweep_workers(self, sweep_workers: int) -> "ExperimentScale":
        """Copy of this scale with ``sweep_workers`` value-level processes."""
        return replace(self, sweep_workers=sweep_workers)

    def with_shard_steps(self, shard_steps: Optional[int]) -> "ExperimentScale":
        """Copy of this scale with an explicit trajectory shard size."""
        return replace(self, shard_steps=shard_steps)

    def with_transport(self, transport: str) -> "ExperimentScale":
        """Copy of this scale with a different result transport."""
        return replace(self, transport=transport)

    def with_backend(self, backend: str) -> "ExperimentScale":
        """Copy of this scale with a different array backend.

        Changes the cache keys of every experiment run at this scale —
        backend results are cached per environment, never mixed.
        """
        return replace(self, backend=backend)

    def with_worker_budget(
        self, total: int, value_count: Optional[int] = None
    ) -> "ExperimentScale":
        """Copy of this scale splitting ``total`` processes between levels.

        The sweep level gets up to one process per swept value and the
        iteration pools share the rest, so
        ``sweep_workers * workers <= total`` (see
        :func:`repro.simulation.sweep.split_worker_budget`).

        ``value_count`` is the width of the sweep the experiment will run;
        it defaults to ``len(sides)`` (the Figure 2–6 system-size sweeps).
        Pass ``parameter_points`` when tuning a Figure 7–9 parameter study,
        whose sweeps are that wide instead.
        """
        sweep_workers, iteration_workers = split_worker_budget(
            total, value_count if value_count is not None else len(self.sides)
        )
        return replace(self, workers=iteration_workers, sweep_workers=sweep_workers)

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ConfigurationError(f"steps must be at least 1, got {self.steps}")
        if self.iterations < 1:
            raise ConfigurationError(
                f"iterations must be at least 1, got {self.iterations}"
            )
        if self.stationary_iterations < 1:
            raise ConfigurationError(
                "stationary_iterations must be at least 1, got "
                f"{self.stationary_iterations}"
            )
        if self.parameter_points < 2:
            raise ConfigurationError(
                f"parameter_points must be at least 2, got {self.parameter_points}"
            )
        if not self.sides:
            raise ConfigurationError("sides must contain at least one system size")
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be at least 1, got {self.workers}"
            )
        if self.sweep_workers < 1:
            raise ConfigurationError(
                f"sweep_workers must be at least 1, got {self.sweep_workers}"
            )
        if self.shard_steps is not None and self.shard_steps < 1:
            raise ConfigurationError(
                f"shard_steps must be at least 1, got {self.shard_steps}"
            )
        from repro.simulation.shm import validate_transport

        validate_transport(self.transport)
        from repro.backend import validate_backend

        validate_backend(self.backend)


#: The three built-in scale presets.
SCALES: Dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        sides=(256.0, 1024.0),
        steps=25,
        iterations=2,
        stationary_iterations=30,
        parameter_points=3,
    ),
    "default": ExperimentScale(
        name="default",
        sides=(256.0, 1024.0, 4096.0, 16384.0),
        steps=600,
        iterations=5,
        stationary_iterations=400,
        parameter_points=6,
    ),
    "paper": ExperimentScale(
        name="paper",
        sides=(256.0, 1024.0, 4096.0, 16384.0),
        steps=10000,
        iterations=50,
        stationary_iterations=1000,
        parameter_points=11,
    ),
}


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a scale preset by name."""
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {name!r}; expected one of {sorted(SCALES)}"
        ) from None


def _side_sweep_width(scale: ExperimentScale) -> int:
    """Sweep width of the system-size experiments (one value per side)."""
    return len(scale.sides)


def parameter_sweep_width(scale: ExperimentScale) -> int:
    """Sweep width of the Figure 7–9 parameter studies."""
    return scale.parameter_points


def side_sweep_values(scale: ExperimentScale) -> Sequence[float]:
    """Swept values of the system-size experiments (the sides themselves)."""
    return tuple(float(side) for side in scale.sides)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper figure/table.

    ``sweep_width`` reports how many parameter values the experiment's
    sweep runs at a given scale — what :meth:`ExperimentScale.
    with_worker_budget` needs to split a total worker budget sensibly.
    Defaults to one value per system side; the parameter studies register
    :func:`parameter_sweep_width` instead.

    ``sweep_values`` reports the actual values that sweep visits, which is
    what the campaign layer needs to checkpoint per value and to report
    partial progress.  Defaults to the system sides.

    ``cache_payload`` maps a scale to the canonical content-address
    payload of the experiment's sweep.  Experiments that run the *same*
    computation (Figures 2/4/6 all run the waypoint system-size sweep;
    Figures 3/5 the drunkard one) register the same payload and therefore
    share result-store entries.  ``None`` (the default) falls back to
    ``{"experiment": identifier, "scale": <scale fields>}``.

    ``parameter_name`` is the column name of the swept parameter — what
    the experiment's ``run`` passes to :func:`repro.simulation.sweep.
    sweep_parameter` ("l" for the system-size sweeps, the studied
    parameter for Figures 7–9).

    ``sweep_measure`` maps a scale to the *picklable* per-value measure
    the experiment's sweep runs.  Registering it asserts that
    ``run(scale)`` is exactly ``sweep_parameter(parameter_name,
    sweep_values(scale), sweep_measure(scale))`` — i.e. every value is
    measured independently, with no cross-value state — which is what
    lets the campaign scheduler decompose the experiment into value
    tasks and interleave them with other scenarios under one worker
    budget.  Experiments that cannot make that promise leave it ``None``
    and are scheduled as one atomic task.

    ``iterations_per_value`` reports how many simulation iterations one
    value's measure runs at a given scale, for experiments whose measures
    support iteration-granular checkpointing (see :meth:`repro.simulation.
    sweep.Measure.with_value_checkpoint`); ``None`` means values are the
    finest resume granularity.
    """

    identifier: str
    title: str
    description: str
    paper_reference: str
    run: Callable[[ExperimentScale], SweepResult] = field(repr=False)
    sweep_width: Callable[[ExperimentScale], int] = field(
        default=_side_sweep_width, repr=False
    )
    sweep_values: Callable[[ExperimentScale], Sequence[float]] = field(
        default=side_sweep_values, repr=False
    )
    cache_payload: Optional[Callable[[ExperimentScale], Dict[str, Any]]] = field(
        default=None, repr=False
    )
    parameter_name: str = "l"
    sweep_measure: Optional[Callable[[ExperimentScale], Any]] = field(
        default=None, repr=False
    )
    iterations_per_value: Optional[Callable[[ExperimentScale], int]] = field(
        default=None, repr=False
    )

    def run_at(self, scale: str = "default") -> SweepResult:
        """Run the experiment at a named scale preset."""
        return self.run(scale_by_name(scale))

    def with_worker_budget(
        self, scale: ExperimentScale, total: int
    ) -> ExperimentScale:
        """Split ``total`` processes for *this* experiment's sweep width."""
        return scale.with_worker_budget(total, self.sweep_width(scale))

    @property
    def supports_checkpoint(self) -> bool:
        """``True`` if ``run`` accepts a ``checkpoint`` keyword.

        Experiments whose measures are independent per parameter value
        thread the checkpoint into :func:`repro.simulation.sweep.
        sweep_parameter`; experiments with cross-value state (e.g. a
        shared sequential random stream) simply never declare the keyword
        and are cached at whole-sweep granularity only.
        """
        try:
            parameters = inspect.signature(self.run).parameters
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return False
        return "checkpoint" in parameters

    def run_with_checkpoint(
        self,
        scale: ExperimentScale,
        checkpoint: Optional[SweepCheckpoint] = None,
    ) -> SweepResult:
        """Run the experiment, threading ``checkpoint`` through if supported."""
        if checkpoint is not None and self.supports_checkpoint:
            return self.run(scale, checkpoint=checkpoint)
        return self.run(scale)

    @property
    def supports_scheduling(self) -> bool:
        """``True`` if the campaign scheduler may decompose this experiment
        into independent per-value tasks (a picklable measure factory is
        registered — see ``sweep_measure``)."""
        return self.sweep_measure is not None

    def checkpoint_iterations(self, scale: ExperimentScale) -> Optional[int]:
        """Iterations one value's simulation checkpoints, or ``None``."""
        if self.iterations_per_value is None:
            return None
        return self.iterations_per_value(scale)


_REGISTRY: Dict[str, Experiment] = {}


def register_experiment(experiment: Experiment) -> Experiment:
    """Add ``experiment`` to the global registry (idempotent by identifier)."""
    _REGISTRY[experiment.identifier] = experiment
    return experiment


def get_experiment(identifier: str) -> Experiment:
    """Look up a registered experiment.

    Raises:
        ConfigurationError: if no experiment has that identifier.
    """
    try:
        return _REGISTRY[identifier]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {identifier!r}; known: {sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> List[Experiment]:
    """All registered experiments, sorted by identifier."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]
