"""The paper's reported values, for side-by-side comparison.

The DSN'02 paper reports its mobile results as figures rather than tables;
the constants below are read off those figures (and off the explicit
percentages quoted in the text of Section 4.2), so they are approximate to
within the precision a reader can extract from the plots.  They exist so
that experiment output can be compared programmatically against the paper
(:func:`compare_with_paper`), and so EXPERIMENTS.md has a single source of
truth for the "paper" column.

All ratio values are relative to ``rstationary`` unless stated otherwise.
"""

from __future__ import annotations

from typing import Dict, Mapping

from repro.experiments.report import compare_to_paper

#: Figure 2 (random waypoint): ratios r_x / rstationary at the four system
#: sizes l = 256, 1K, 4K, 16K.  Read off the figure.
FIGURE2_RATIOS: Dict[str, Dict[float, float]] = {
    "r100/rstationary": {256.0: 1.05, 1024.0: 1.10, 4096.0: 1.15, 16384.0: 1.21},
    "r90/rstationary": {256.0: 0.70, 1024.0: 0.72, 4096.0: 0.74, 16384.0: 0.78},
    "r10/rstationary": {256.0: 0.45, 1024.0: 0.46, 4096.0: 0.48, 16384.0: 0.52},
    "r0/rstationary": {256.0: 0.28, 1024.0: 0.32, 4096.0: 0.36, 16384.0: 0.40},
}

#: Figure 3 (drunkard): same quantities, slightly higher r100.
FIGURE3_RATIOS: Dict[str, Dict[float, float]] = {
    "r100/rstationary": {256.0: 1.08, 1024.0: 1.14, 4096.0: 1.20, 16384.0: 1.25},
    "r90/rstationary": {256.0: 0.72, 1024.0: 0.74, 4096.0: 0.76, 16384.0: 0.80},
    "r10/rstationary": {256.0: 0.46, 1024.0: 0.47, 4096.0: 0.49, 16384.0: 0.53},
    "r0/rstationary": {256.0: 0.30, 1024.0: 0.33, 4096.0: 0.37, 16384.0: 0.41},
}

#: Figures 4 and 5: average largest-component fraction at the named ranges
#: for the largest system size (l = 16384), where the paper quotes numbers.
FIGURE4_COMPONENT_FRACTIONS: Dict[str, float] = {
    "lcc_fraction@r90": 0.98,
    "lcc_fraction@r10": 0.90,
    "lcc_fraction@r0": 0.50,
}

#: Figure 6: limits of the rl_x / rstationary curves for large l.
FIGURE6_LIMITS: Dict[str, float] = {
    "rl90/rstationary": 0.52,
    "rl75/rstationary": 0.46,
    "rl50/rstationary": 0.40,
}

#: Section 4.2 text: relative reductions of r90 and r10 with respect to r100.
TEXT_RANGE_REDUCTIONS: Dict[str, float] = {
    "r90/r100": 0.625,   # "about 35-40% smaller"
    "r10/r100": 0.425,   # "about 55-60%" decrease
}

#: Figure 7: the threshold interval of pstationary beyond which the network
#: behaves as stationary.
FIGURE7_THRESHOLD_INTERVAL = (0.4, 0.6)


def paper_row_for_figure(figure: str, side: float) -> Dict[str, float]:
    """The paper's (approximate) values for one system size of a figure.

    Args:
        figure: ``"fig2"`` or ``"fig3"``.
        side: the system size ``l``.

    Raises:
        KeyError: if the figure or side is not tabulated above.
    """
    tables = {"fig2": FIGURE2_RATIOS, "fig3": FIGURE3_RATIOS}
    table = tables[figure]
    return {series: values[side] for series, values in table.items()}


def compare_with_paper(
    figure: str, side: float, measured: Mapping[str, float], tolerance: float = 0.5
) -> str:
    """Render a measured-vs-paper table for one figure and system size.

    The default tolerance is deliberately loose (50 % relative) because the
    absolute levels depend on the run length and on the ``rstationary``
    definition (see EXPERIMENTS.md); the comparison is about orderings and
    orders of magnitude.
    """
    expected = paper_row_for_figure(figure, side)
    measured_subset = {key: measured[key] for key in expected if key in measured}
    return compare_to_paper(measured_subset, expected, tolerance=tolerance)
