"""Persistence of experiment results.

Sweeps are stored as JSON (one object with metadata plus the rows) or CSV
(rows only).  Both formats round-trip through :func:`save_sweep` /
:func:`load_sweep` and are stable enough to be checked into a results
directory and diffed across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.exceptions import ConfigurationError
from repro.simulation.sweep import SweepResult

PathLike = Union[str, Path]


def save_sweep(
    sweep: SweepResult,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``sweep`` to ``path`` as JSON or CSV (chosen by file suffix).

    Args:
        sweep: the sweep to persist.
        path: destination; ``.json`` or ``.csv``.
        metadata: optional extra fields stored alongside JSON output
            (ignored for CSV).

    Returns:
        The resolved path that was written.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    suffix = destination.suffix.lower()
    if suffix == ".json":
        payload = {
            "parameter_name": sweep.parameter_name,
            "rows": sweep.rows,
            "metadata": metadata or {},
        }
        destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    elif suffix == ".csv":
        if not sweep.rows:
            destination.write_text("")
        else:
            columns = [sweep.parameter_name] + sweep.series_names()
            with destination.open("w", newline="") as handle:
                writer = csv.DictWriter(handle, fieldnames=columns)
                writer.writeheader()
                for row in sweep.rows:
                    writer.writerow({column: row.get(column, "") for column in columns})
    else:
        raise ConfigurationError(
            f"unsupported result format {suffix!r}; use .json or .csv"
        )
    return destination


def load_sweep(path: PathLike) -> SweepResult:
    """Load a sweep previously written by :func:`save_sweep`."""
    source = Path(path)
    suffix = source.suffix.lower()
    if suffix == ".json":
        payload = json.loads(source.read_text())
        return SweepResult(
            parameter_name=payload["parameter_name"],
            rows=[{key: value for key, value in row.items()} for row in payload["rows"]],
        )
    if suffix == ".csv":
        with source.open() as handle:
            reader = csv.DictReader(handle)
            rows = []
            parameter_name = reader.fieldnames[0] if reader.fieldnames else "parameter"
            for raw in reader:
                rows.append({key: float(value) for key, value in raw.items() if value != ""})
        return SweepResult(parameter_name=parameter_name, rows=rows)
    raise ConfigurationError(
        f"unsupported result format {suffix!r}; use .json or .csv"
    )
