"""Persistence of experiment results.

Sweeps are stored as JSON (one object with metadata plus the rows) or CSV
(rows only).  Both formats round-trip through :func:`save_sweep` /
:func:`load_sweep` — including row-less sweeps, whose CSV form is a bare
header line — and are stable enough to be checked into a results directory
and diffed across runs.

JSON payloads carry the same ``schema_version`` the result store uses
(:data:`repro.store.codecs.SCHEMA_VERSION`), so ad-hoc artifacts and
store entries share one versioning convention; payloads written before
versioning existed load as version 0.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.exceptions import ConfigurationError
from repro.simulation.sweep import SweepResult
from repro.store.codecs import SCHEMA_VERSION

PathLike = Union[str, Path]


def save_sweep(
    sweep: SweepResult,
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``sweep`` to ``path`` as JSON or CSV (chosen by file suffix).

    Args:
        sweep: the sweep to persist.
        path: destination; ``.json`` or ``.csv``.
        metadata: optional extra fields stored alongside JSON output
            (ignored for CSV).

    Returns:
        The resolved path that was written.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    suffix = destination.suffix.lower()
    if suffix == ".json":
        payload = {
            "schema_version": SCHEMA_VERSION,
            "parameter_name": sweep.parameter_name,
            "rows": sweep.rows,
            "metadata": metadata or {},
        }
        destination.write_text(json.dumps(payload, indent=2, sort_keys=True))
    elif suffix == ".csv":
        # A row-less sweep still writes its header so the parameter name
        # (and the format itself) round-trips through load_sweep.
        columns = [sweep.parameter_name] + sweep.series_names()
        with destination.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in sweep.rows:
                writer.writerow({column: row.get(column, "") for column in columns})
    else:
        raise ConfigurationError(
            f"unsupported result format {suffix!r}; use .json or .csv"
        )
    return destination


def load_sweep(path: PathLike) -> SweepResult:
    """Load a sweep previously written by :func:`save_sweep`.

    JSON payloads written before schema versioning load as version 0;
    payloads from a *newer* schema than this code understands are
    rejected rather than misread.
    """
    source = Path(path)
    suffix = source.suffix.lower()
    if suffix == ".json":
        payload = json.loads(source.read_text())
        version = int(payload.get("schema_version", 0))
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"{source} has schema version {version}, newer than the "
                f"supported version {SCHEMA_VERSION}; upgrade the library"
            )
        return SweepResult(
            parameter_name=payload["parameter_name"],
            rows=[{key: value for key, value in row.items()} for row in payload["rows"]],
        )
    if suffix == ".csv":
        with source.open() as handle:
            reader = csv.DictReader(handle)
            rows = []
            parameter_name = reader.fieldnames[0] if reader.fieldnames else "parameter"
            for raw in reader:
                rows.append({key: float(value) for key, value in raw.items() if value != ""})
        return SweepResult(parameter_name=parameter_name, rows=rows)
    raise ConfigurationError(
        f"unsupported result format {suffix!r}; use .json or .csv"
    )
