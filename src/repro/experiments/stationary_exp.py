"""Stationary-network experiments.

Two registered experiments complement the mobile figures:

* ``stationary-critical-range`` — the ``rstationary`` values used as the
  denominator of every ratio in Figures 2–6, for each system size, together
  with the Gupta–Kumar analytical comparator and the best/worst-case
  deterministic placements;
* ``energy-tradeoff`` — the energy-saving narrative of Section 4.2: the
  transmission-energy savings obtained by operating at ``r90``, ``r10``,
  ``rl90``, ``rl75`` and ``rl50`` instead of ``r100``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.analysis.gupta_kumar import gupta_kumar_critical_range
from repro.analysis.worst_best_case import best_case_range_2d, worst_case_range
from repro.energy.model import EnergyModel
from repro.energy.savings import savings_table
from repro.experiments.figures import (
    measure_system_size,
    paper_node_count,
    scale_iterations,
)
from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    register_experiment,
)
from repro.simulation.runner import stationary_critical_range
from repro.simulation.sweep import (
    SweepCheckpoint,
    SweepResult,
    iteration_checkpoint_for,
    sweep_parameter,
)


@dataclass(frozen=True)
class StationaryRangeMeasure:
    """Picklable sweep measure: ``rstationary`` plus analytical comparators."""

    scale: ExperimentScale

    def __call__(self, side: float) -> Dict[str, float]:
        node_count = paper_node_count(side)
        simulated = stationary_critical_range(
            node_count=node_count,
            side=side,
            dimension=2,
            iterations=self.scale.stationary_iterations,
            seed=self.scale.seed,
            confidence=0.99,
            workers=self.scale.workers,
        )
        return {
            "n": float(node_count),
            "rstationary": simulated,
            "gupta_kumar": gupta_kumar_critical_range(node_count, side),
            "best_case": best_case_range_2d(node_count, side),
            "worst_case": worst_case_range(side, dimension=2),
            "rstationary/l": simulated / side,
        }

    def with_iteration_workers(self, count: int) -> "StationaryRangeMeasure":
        return replace(self, scale=self.scale.with_workers(count))


def stationary_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """``rstationary`` per system size, with analytical comparators."""
    return sweep_parameter(
        "l", scale.sides, StationaryRangeMeasure(scale=scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


@dataclass(frozen=True)
class EnergyTradeoffMeasure:
    """Picklable sweep measure: energy savings of relaxed thresholds."""

    scale: ExperimentScale
    checkpoint: Optional[SweepCheckpoint] = None

    def __call__(self, side: float) -> Dict[str, float]:
        row = measure_system_size(
            side,
            "waypoint",
            self.scale,
            iteration_checkpoint=iteration_checkpoint_for(self.checkpoint, side),
        )
        ratios = {
            label: row[label] / row["r100"] if row["r100"] > 0 else 0.0
            for label in ("r90", "r10", "rl90", "rl75", "rl50")
        }
        free_space = savings_table(ratios, EnergyModel(path_loss_exponent=2.0))
        two_ray = savings_table(ratios, EnergyModel(path_loss_exponent=4.0))
        result: Dict[str, float] = {"n": row["n"], "r100": row["r100"]}
        for label, value in ratios.items():
            result[f"{label}/r100"] = value
        for label, value in free_space.items():
            result[f"savings_alpha2@{label}"] = value
        for label, value in two_ray.items():
            result[f"savings_alpha4@{label}"] = value
        return result

    def with_iteration_workers(self, count: int) -> "EnergyTradeoffMeasure":
        return replace(self, scale=self.scale.with_workers(count))

    def with_value_checkpoint(
        self, checkpoint: SweepCheckpoint
    ) -> "EnergyTradeoffMeasure":
        return replace(self, checkpoint=checkpoint)


def energy_tradeoff_experiment(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Energy savings of the relaxed connectivity requirements.

    For each system size the waypoint thresholds are measured and the
    transmission-energy saving of each relaxed threshold relative to
    ``r100`` is reported for the free-space (``alpha = 2``) and two-ray
    (``alpha = 4``) path-loss models.
    """
    return sweep_parameter(
        "l", scale.sides, EnergyTradeoffMeasure(scale=scale),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


def _stationary_measure(scale: ExperimentScale) -> StationaryRangeMeasure:
    """Measure factory of the stationary-critical-range sweep.

    No ``iterations_per_value`` is registered: each placement draw is a
    single-step frame, far too cheap to be worth one store entry each —
    values are the finest useful resume granularity here.
    """
    return StationaryRangeMeasure(scale=scale)


def _energy_tradeoff_measure(scale: ExperimentScale) -> EnergyTradeoffMeasure:
    """Measure factory of the energy-tradeoff sweep."""
    return EnergyTradeoffMeasure(scale=scale)


register_experiment(Experiment(
    identifier="stationary-critical-range",
    title="Stationary critical transmitting range",
    description=(
        "The simulated rstationary (99th percentile of per-placement exact "
        "critical ranges) for each system size, compared against the "
        "Gupta-Kumar analytical threshold and the best/worst deterministic "
        "placements."
    ),
    paper_reference="Section 4.2 (denominator of Figures 2-6)",
    run=stationary_experiment,
    sweep_measure=_stationary_measure,
))

register_experiment(Experiment(
    identifier="energy-tradeoff",
    title="Energy / quality-of-communication trade-off",
    description=(
        "Transmission-energy savings obtained by operating at r90, r10, "
        "rl90, rl75 or rl50 instead of r100, for path-loss exponents 2 and 4."
    ),
    paper_reference="Section 4.2 discussion",
    run=energy_tradeoff_experiment,
    sweep_measure=_energy_tradeoff_measure,
    iterations_per_value=scale_iterations,
))
