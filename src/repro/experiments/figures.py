"""Reproductions of Figures 2–9.

Every function here measures exactly what the corresponding paper figure
plots; the shared helper :func:`mobile_threshold_rows` runs the expensive
part (one trace-statistics simulation per system size and mobility model)
once and derives all the Figure 2–6 series from it.

The per-value work is packaged in module-level measure dataclasses
(:class:`SystemSizeMeasure`, :class:`ParameterStudyMeasure`) so sweeps can
fan parameter values out over worker processes
(``ExperimentScale.sweep_workers``) — a lambda closing over the scale
would not pickle.  Each measure honours ``scale.workers`` for its nested
iteration pool, so the total process budget is
``sweep_workers * workers``.

The experiments are registered in the global registry under the
identifiers ``fig2`` … ``fig9``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, Optional, Sequence

from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    parameter_sweep_width,
    register_experiment,
)
from repro.simulation.config import MobilitySpec, NetworkConfig, SimulationConfig
from repro.simulation.runner import collect_frame_statistics, stationary_critical_range
from repro.simulation.search import (
    average_component_fraction_at_range,
    estimate_component_thresholds_from_statistics,
    estimate_thresholds_from_statistics,
)
from repro.simulation.runner import IterationCheckpoint
from repro.simulation.sweep import (
    SweepCheckpoint,
    SweepResult,
    iteration_checkpoint_for,
    sweep_parameter,
)
from repro.store.keys import scale_payload


def paper_node_count(side: float) -> int:
    """The paper's system-size scaling ``n = sqrt(l)``."""
    return max(2, int(round(math.sqrt(side))))


def _mobility_spec_for(model: str, side: float, **overrides) -> MobilitySpec:
    """Build the Section 4.2 mobility specification for ``model``."""
    if model == "waypoint":
        return MobilitySpec.paper_waypoint(side, **overrides)
    if model == "drunkard":
        return MobilitySpec.paper_drunkard(side, **overrides)
    raise ValueError(f"unsupported mobility model for the figures: {model!r}")


def measure_system_size(
    side: float,
    model: str,
    scale: ExperimentScale,
    mobility_overrides: Dict | None = None,
    iteration_checkpoint: Optional[IterationCheckpoint] = None,
) -> Dict[str, float]:
    """All Figure 2–6 quantities for one system size and mobility model.

    Returns a row with the raw thresholds, their ratios to ``rstationary``,
    and the average largest-component fractions at ``r90``, ``r10``, ``r0``.

    ``iteration_checkpoint`` (if given) persists each iteration of the
    expensive mobile simulation as it completes and resumes saved ones;
    the cheap single-step stationary placements that produce
    ``rstationary`` stay unchecked — one store entry per placement draw
    would dwarf the work it saves.
    """
    node_count = paper_node_count(side)
    rstationary = stationary_critical_range(
        node_count=node_count,
        side=side,
        dimension=2,
        iterations=scale.stationary_iterations,
        seed=scale.seed,
        confidence=0.99,
        workers=scale.workers,
        backend=scale.backend,
    )
    spec = _mobility_spec_for(model, side, **(mobility_overrides or {}))
    config = SimulationConfig(
        network=NetworkConfig(node_count=node_count, side=side, dimension=2),
        mobility=spec,
        steps=scale.steps,
        iterations=scale.iterations,
        seed=scale.seed,
        workers=scale.workers,
        shard_steps=scale.shard_steps,
        transport=scale.transport,
        backend=scale.backend,
    )
    statistics = collect_frame_statistics(config, checkpoint=iteration_checkpoint)
    thresholds = estimate_thresholds_from_statistics(statistics)
    components = estimate_component_thresholds_from_statistics(statistics)

    row: Dict[str, float] = {
        "n": float(node_count),
        "rstationary": rstationary,
        "r100": thresholds.r100,
        "r90": thresholds.r90,
        "r10": thresholds.r10,
        "r0": thresholds.r0,
        "rl90": components.rl90,
        "rl75": components.rl75,
        "rl50": components.rl50,
    }
    for label in ("r100", "r90", "r10", "r0", "rl90", "rl75", "rl50"):
        row[f"{label}/rstationary"] = row[label] / rstationary if rstationary > 0 else 0.0
    for label in ("r90", "r10", "r0"):
        row[f"lcc_fraction@{label}"] = average_component_fraction_at_range(
            statistics, row[label]
        )
    return row


@dataclass(frozen=True)
class SystemSizeMeasure:
    """Picklable sweep measure: all Figure 2–6 series at one system size.

    Implements the :class:`repro.simulation.sweep.Measure` protocol so the
    system-size sweep can run its sides in parallel worker processes —
    including ``with_value_checkpoint``: when a sweep checkpoint with
    iteration granularity is bound, each side's mobile simulation persists
    its iterations as they finish and resumes saved ones.
    """

    model: str
    scale: ExperimentScale
    mobility_overrides: Optional[Dict] = None
    checkpoint: Optional[SweepCheckpoint] = None

    def __call__(self, side: float) -> Dict[str, float]:
        return measure_system_size(
            side,
            self.model,
            self.scale,
            self.mobility_overrides,
            iteration_checkpoint=iteration_checkpoint_for(self.checkpoint, side),
        )

    def with_iteration_workers(self, count: int) -> "SystemSizeMeasure":
        return replace(self, scale=self.scale.with_workers(count))

    def with_value_checkpoint(
        self, checkpoint: SweepCheckpoint
    ) -> "SystemSizeMeasure":
        return replace(self, checkpoint=checkpoint)


def mobile_threshold_rows(
    model: str,
    scale: ExperimentScale,
    mobility_overrides: Dict | None = None,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> SweepResult:
    """The full system-size sweep shared by Figures 2–6."""
    return sweep_parameter(
        "l",
        scale.sides,
        SystemSizeMeasure(model=model, scale=scale, mobility_overrides=mobility_overrides),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


def system_size_sweep_payload(model: str, scale: ExperimentScale) -> Dict:
    """Content-address payload of the Figure 2–6 system-size sweep.

    Figures 2, 4 and 6 (waypoint) and Figures 3 and 5 (drunkard) each run
    *one* underlying sweep; keying the cache by the computation rather
    than the figure identifier lets them share store entries.
    """
    return {
        "computation": "system-size-sweep",
        "model": model,
        "scale": scale_payload(scale),
    }


def _waypoint_sweep_payload(scale: ExperimentScale) -> Dict:
    return system_size_sweep_payload("waypoint", scale)


def _drunkard_sweep_payload(scale: ExperimentScale) -> Dict:
    return system_size_sweep_payload("drunkard", scale)


# --------------------------------------------------------------------------- #
# Figures 2 and 3 — r_x / rstationary vs l
# --------------------------------------------------------------------------- #
def figure2(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 2: ratios r100/r90/r10/r0 to rstationary, random waypoint."""
    return mobile_threshold_rows("waypoint", scale, checkpoint=checkpoint)


def figure3(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 3: the same ratios under the drunkard model."""
    return mobile_threshold_rows("drunkard", scale, checkpoint=checkpoint)


# --------------------------------------------------------------------------- #
# Figures 4 and 5 — largest component fraction at r90 / r10 / r0 vs l
# --------------------------------------------------------------------------- #
def figure4(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 4: average largest-component fraction at r90/r10/r0, waypoint."""
    return mobile_threshold_rows("waypoint", scale, checkpoint=checkpoint)


def figure5(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 5: average largest-component fraction at r90/r10/r0, drunkard."""
    return mobile_threshold_rows("drunkard", scale, checkpoint=checkpoint)


# --------------------------------------------------------------------------- #
# Figure 6 — rl90 / rl75 / rl50 over rstationary vs l (waypoint)
# --------------------------------------------------------------------------- #
def figure6(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 6: ratios rl90/rl75/rl50 to rstationary, random waypoint."""
    return mobile_threshold_rows("waypoint", scale, checkpoint=checkpoint)


# --------------------------------------------------------------------------- #
# Figures 7–9 — r100 / rstationary as one mobility parameter varies
# --------------------------------------------------------------------------- #
#: System side used by the parameter studies of Section 4.3.
PARAMETER_STUDY_SIDE = 4096.0


def _parameter_study_values(scale: ExperimentScale) -> Dict[str, Sequence[float]]:
    """The swept values of pstationary / tpause / vmax at a given scale.

    The paper's points are pstationary in 0..1 (step 0.2, refined 0.02 in
    [0.4, 0.6]), tpause in 0..10000, vmax in 0.01l..0.5l; the presets take
    evenly spaced subsets of those intervals with ``parameter_points``
    points.
    """
    points = scale.parameter_points
    return {
        "pstationary": [i / (points - 1) for i in range(points)],
        "tpause": [i * 10000.0 / (points - 1) for i in range(points)],
        "vmax_fraction": [
            0.01 + i * (0.5 - 0.01) / (points - 1) for i in range(points)
        ],
    }


def _parameter_study_side(scale: ExperimentScale) -> float:
    """System side for Figures 7–9; smoke runs shrink it to stay fast."""
    if scale.name == "smoke":
        return 1024.0
    return PARAMETER_STUDY_SIDE


def _r100_ratio_row(
    scale: ExperimentScale,
    mobility_overrides: Dict,
    iteration_checkpoint: Optional[IterationCheckpoint] = None,
) -> Dict[str, float]:
    """One Figure 7–9 measurement: r100 / rstationary at fixed geometry."""
    side = _parameter_study_side(scale)
    node_count = paper_node_count(side)
    rstationary = stationary_critical_range(
        node_count=node_count,
        side=side,
        dimension=2,
        iterations=scale.stationary_iterations,
        seed=scale.seed,
        confidence=0.99,
        workers=scale.workers,
        backend=scale.backend,
    )
    spec = MobilitySpec.paper_waypoint(side, **mobility_overrides)
    config = SimulationConfig(
        network=NetworkConfig(node_count=node_count, side=side, dimension=2),
        mobility=spec,
        steps=scale.steps,
        iterations=scale.iterations,
        seed=scale.seed,
        workers=scale.workers,
        shard_steps=scale.shard_steps,
        transport=scale.transport,
        backend=scale.backend,
    )
    statistics = collect_frame_statistics(config, checkpoint=iteration_checkpoint)
    thresholds = estimate_thresholds_from_statistics(statistics)
    ratio = thresholds.r100 / rstationary if rstationary > 0 else 0.0
    return {
        "r100": thresholds.r100,
        "rstationary": rstationary,
        "r100/rstationary": ratio,
    }


@dataclass(frozen=True)
class ParameterStudyMeasure:
    """Picklable sweep measure for the Figure 7–9 parameter studies.

    Maps one swept value to the waypoint mobility override it controls
    (``pstationary`` → probability, ``tpause`` → integer pause time,
    ``vmax_fraction`` → ``vmax = fraction * l``) and measures
    ``r100 / rstationary`` at the Section 4.3 geometry.
    """

    scale: ExperimentScale
    parameter: str
    checkpoint: Optional[SweepCheckpoint] = None

    def __call__(self, value: float) -> Dict[str, float]:
        if self.parameter == "pstationary":
            overrides: Dict = {"pstationary": float(value)}
        elif self.parameter == "tpause":
            overrides = {"tpause": int(value)}
        elif self.parameter == "vmax_fraction":
            overrides = {"vmax": float(value) * _parameter_study_side(self.scale)}
        else:
            raise ValueError(
                f"unsupported parameter study parameter: {self.parameter!r}"
            )
        return _r100_ratio_row(
            self.scale,
            overrides,
            iteration_checkpoint=iteration_checkpoint_for(self.checkpoint, value),
        )

    def with_iteration_workers(self, count: int) -> "ParameterStudyMeasure":
        return replace(self, scale=self.scale.with_workers(count))

    def with_value_checkpoint(
        self, checkpoint: SweepCheckpoint
    ) -> "ParameterStudyMeasure":
        return replace(self, checkpoint=checkpoint)


def parameter_study_values(parameter: str, scale: ExperimentScale) -> Sequence[float]:
    """The swept values of one Figure 7–9 parameter study."""
    return tuple(_parameter_study_values(scale)[parameter])


def parameter_study_payload(parameter: str, scale: ExperimentScale) -> Dict:
    """Content-address payload of one Figure 7–9 parameter study.

    The system side is part of the payload explicitly: it is derived from
    ``scale.name`` (smoke runs shrink it), which :func:`scale_payload`
    deliberately drops — without it, two scales differing only in name
    would collide on a key while simulating different geometries.
    """
    return {
        "computation": "parameter-study",
        "parameter": parameter,
        "side": _parameter_study_side(scale),
        "scale": scale_payload(scale),
    }


def _parameter_study(
    parameter: str,
    scale: ExperimentScale,
    checkpoint: Optional[SweepCheckpoint] = None,
) -> SweepResult:
    return sweep_parameter(
        parameter,
        parameter_study_values(parameter, scale),
        ParameterStudyMeasure(scale=scale, parameter=parameter),
        workers=scale.sweep_workers,
        checkpoint=checkpoint,
    )


def figure7(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 7: r100/rstationary as pstationary sweeps 0 → 1."""
    return _parameter_study("pstationary", scale, checkpoint)


def figure8(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 8: r100/rstationary as tpause sweeps 0 → 10000."""
    return _parameter_study("tpause", scale, checkpoint)


def figure9(
    scale: ExperimentScale, checkpoint: Optional[SweepCheckpoint] = None
) -> SweepResult:
    """Figure 9: r100/rstationary as vmax sweeps 0.01l → 0.5l."""
    return _parameter_study("vmax_fraction", scale, checkpoint)


# --------------------------------------------------------------------------- #
# Registration
# --------------------------------------------------------------------------- #
def scale_iterations(scale: ExperimentScale) -> int:
    """Iterations one value's mobile simulation runs (= ``scale.iterations``).

    Registered as ``iterations_per_value`` by every experiment whose
    measure checkpoints its inner :func:`repro.simulation.runner.
    collect_frame_statistics` iterations.
    """
    return scale.iterations


def _system_size_measure(model: str, scale: ExperimentScale) -> SystemSizeMeasure:
    """Measure factory of the Figure 2–6 system-size sweeps."""
    return SystemSizeMeasure(model=model, scale=scale)


def _parameter_study_measure(
    parameter: str, scale: ExperimentScale
) -> ParameterStudyMeasure:
    """Measure factory of the Figure 7–9 parameter studies."""
    return ParameterStudyMeasure(scale=scale, parameter=parameter)


def _register_all() -> None:
    register_experiment(Experiment(
        identifier="fig2",
        title="r_x / rstationary vs system size (random waypoint)",
        description=(
            "Ratios of r100, r90, r10 and r0 to the stationary critical range "
            "for l in {256, 1K, 4K, 16K}, n = sqrt(l), under the random "
            "waypoint model with the Section 4.2 parameters."
        ),
        paper_reference="Figure 2",
        run=figure2,
        cache_payload=_waypoint_sweep_payload,
        sweep_measure=partial(_system_size_measure, 'waypoint'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig3",
        title="r_x / rstationary vs system size (drunkard)",
        description=(
            "Ratios of r100, r90, r10 and r0 to the stationary critical range "
            "under the drunkard model (pstationary=0.1, ppause=0.3, m=0.01l)."
        ),
        paper_reference="Figure 3",
        run=figure3,
        cache_payload=_drunkard_sweep_payload,
        sweep_measure=partial(_system_size_measure, 'drunkard'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig4",
        title="Largest component fraction at r90/r10/r0 (random waypoint)",
        description=(
            "Average size of the largest connected component, as a fraction "
            "of n, when the range is set to r90, r10 and r0 (waypoint model)."
        ),
        paper_reference="Figure 4",
        run=figure4,
        cache_payload=_waypoint_sweep_payload,
        sweep_measure=partial(_system_size_measure, 'waypoint'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig5",
        title="Largest component fraction at r90/r10/r0 (drunkard)",
        description=(
            "Average size of the largest connected component, as a fraction "
            "of n, when the range is set to r90, r10 and r0 (drunkard model)."
        ),
        paper_reference="Figure 5",
        run=figure5,
        cache_payload=_drunkard_sweep_payload,
        sweep_measure=partial(_system_size_measure, 'drunkard'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig6",
        title="rl90 / rl75 / rl50 over rstationary vs system size",
        description=(
            "Ratios of the ranges achieving average largest-component "
            "fractions of 0.9, 0.75 and 0.5 to the stationary critical range "
            "(random waypoint model)."
        ),
        paper_reference="Figure 6",
        run=figure6,
        cache_payload=_waypoint_sweep_payload,
        sweep_measure=partial(_system_size_measure, 'waypoint'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig7",
        title="r100 / rstationary vs pstationary",
        description=(
            "Effect of the fraction of stationary nodes on the range needed "
            "for permanent connectivity (random waypoint, l=4096, n=64)."
        ),
        paper_reference="Figure 7",
        run=figure7,
        sweep_width=parameter_sweep_width,
        sweep_values=partial(parameter_study_values, 'pstationary'),
        cache_payload=partial(parameter_study_payload, 'pstationary'),
        parameter_name='pstationary',
        sweep_measure=partial(_parameter_study_measure, 'pstationary'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig8",
        title="r100 / rstationary vs tpause",
        description=(
            "Effect of the pause time on the range needed for permanent "
            "connectivity (random waypoint, l=4096, n=64)."
        ),
        paper_reference="Figure 8",
        run=figure8,
        sweep_width=parameter_sweep_width,
        sweep_values=partial(parameter_study_values, 'tpause'),
        cache_payload=partial(parameter_study_payload, 'tpause'),
        parameter_name='tpause',
        sweep_measure=partial(_parameter_study_measure, 'tpause'),
        iterations_per_value=scale_iterations,
    ))
    register_experiment(Experiment(
        identifier="fig9",
        title="r100 / rstationary vs vmax",
        description=(
            "Effect of the maximum node velocity on the range needed for "
            "permanent connectivity (random waypoint, l=4096, n=64)."
        ),
        paper_reference="Figure 9",
        run=figure9,
        sweep_width=parameter_sweep_width,
        sweep_values=partial(parameter_study_values, 'vmax_fraction'),
        cache_payload=partial(parameter_study_payload, 'vmax_fraction'),
        parameter_name='vmax_fraction',
        sweep_measure=partial(_parameter_study_measure, 'vmax_fraction'),
        iterations_per_value=scale_iterations,
    ))


_register_all()
