"""Plain-text rendering of experiment results.

The library has no plotting dependency; instead, sweeps are rendered as
aligned text tables (the same rows/series the paper's figures plot) and as
small ASCII charts for a quick look at the shape of a series.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.simulation.sweep import SweepResult


def format_table(
    rows: Sequence[Dict[str, float]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
) -> str:
    """Format dict rows as an aligned, pipe-separated text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(column) for column in columns]
    body: List[List[str]] = []
    for row in rows:
        rendered = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                rendered.append(f"{value:.{precision}g}")
            else:
                rendered.append(str(value))
        body.append(rendered)
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) for i in range(len(header))
    ]
    lines = [
        " | ".join(header[i].ljust(widths[i]) for i in range(len(header))),
        "-+-".join("-" * widths[i] for i in range(len(header))),
    ]
    for line in body:
        lines.append(" | ".join(line[i].ljust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def render_sweep(
    sweep: SweepResult,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a :class:`SweepResult` as a titled text table."""
    if columns is None:
        columns = [sweep.parameter_name] + sweep.series_names()
    table = format_table(sweep.rows, columns=columns, precision=precision)
    if title:
        return f"{title}\n{'=' * len(title)}\n{table}"
    return table


def ascii_chart(
    values: Sequence[float],
    labels: Optional[Sequence[str]] = None,
    width: int = 50,
    fill: str = "#",
) -> str:
    """Render a sequence of non-negative values as horizontal ASCII bars.

    Values are scaled so the largest one occupies ``width`` characters.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    data = [float(value) for value in values]
    if not data:
        return "(no data)"
    if labels is None:
        labels = [str(index) for index in range(len(data))]
    if len(labels) != len(data):
        raise ValueError("labels and values must have the same length")
    peak = max(data)
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, data):
        length = 0 if peak <= 0 else int(round(width * max(value, 0.0) / peak))
        lines.append(f"{str(label).rjust(label_width)} | {fill * length} {value:.4g}")
    return "\n".join(lines)


def compare_to_paper(
    measured: Dict[str, float],
    expected: Dict[str, float],
    tolerance: float = 0.5,
) -> str:
    """Tabulate measured values against the paper's reported values.

    Args:
        measured: quantities measured by this reproduction.
        expected: the paper's values for the same keys.
        tolerance: relative deviation above which a row is flagged.

    Returns:
        A table with a ``match`` column (``ok`` / ``off``), used by
        EXPERIMENTS.md generation and by the benchmark output.
    """
    rows = []
    for key in expected:
        paper_value = expected[key]
        ours = measured.get(key, float("nan"))
        if paper_value != 0:
            deviation = abs(ours - paper_value) / abs(paper_value)
        else:
            deviation = abs(ours)
        rows.append(
            {
                "quantity": key,
                "paper": paper_value,
                "measured": ours,
                "rel_dev": deviation,
                "match": "ok" if deviation <= tolerance else "off",
            }
        )
    return format_table(rows, columns=["quantity", "paper", "measured", "rel_dev", "match"])
