"""Experiment definitions reproducing the paper's figures.

Each figure of the evaluation section is a registered experiment that can
be run at three scales:

* ``smoke`` — seconds; used by the test-suite to validate plumbing;
* ``default`` — a couple of minutes on a laptop; the benchmark harness uses
  this scale and it is sufficient for the qualitative shape of every curve;
* ``paper`` — the paper's own parameters (l up to 16 384, 50 iterations of
  10 000 steps); hours of compute, provided for completeness.

Use :func:`~repro.experiments.registry.get_experiment` /
:func:`~repro.experiments.registry.list_experiments` to discover them, and
:mod:`repro.experiments.report` to render the results as text tables.
"""

from repro.experiments.registry import (
    Experiment,
    ExperimentScale,
    get_experiment,
    list_experiments,
    register_experiment,
)
from repro.experiments.report import ascii_chart, format_table, render_sweep
from repro.experiments.io import load_sweep, save_sweep

# Importing the figure modules registers their experiments.
from repro.experiments import figures as _figures  # noqa: F401
from repro.experiments import stationary_exp as _stationary  # noqa: F401
from repro.experiments import theory_exp as _theory  # noqa: F401

__all__ = [
    "Experiment",
    "ExperimentScale",
    "ascii_chart",
    "format_table",
    "get_experiment",
    "list_experiments",
    "load_sweep",
    "register_experiment",
    "render_sweep",
    "save_sweep",
]
