"""Supervised process-pool execution: retries, backoff, timeouts, respawn.

Every parallel gather in this codebase used to share one failure mode: a
worker crash (``BrokenProcessPool``), a hung task, or a task exception
aborted the whole run, no matter how many tasks had already finished.
:func:`run_supervised` is the shared gather loop that makes those
failures *recoverable*:

* a task that raises is re-enqueued with capped exponential backoff and
  retried up to ``max_retries`` times (:class:`RetryPolicy`);
* a broken pool is respawned: results of tasks that finished before the
  break are **harvested** first (handed to ``on_result`` exactly as if
  they had been gathered normally — checkpoint saves included, so no
  finished work is lost and no shared-memory segment leaks), the
  in-flight tasks are re-enqueued, and a fresh pool takes over;
* a task exceeding ``task_timeout`` has its (presumed wedged) pool
  terminated with SIGKILL — a hung worker cannot be cancelled through
  ``concurrent.futures`` — and is re-enqueued like a crash; tasks that
  were merely collateral in-flight neighbours are re-enqueued without
  consuming one of their retries;
* a task that exhausts its retries is offered to ``on_giveup``
  (the campaign layer quarantines it and keeps going); without a
  handler the last error propagates, preserving the legacy
  fail-fast contract — the **default** policy retries nothing, so
  un-opted-in callers see byte-for-byte the old behaviour.

The loop is budget-aware: ``submit`` returns each task's worker *cost*
(the campaign scheduler's adaptive allotments), and in-flight cost never
exceeds ``budget`` — which also means every submitted task holds real
workers immediately, so timeout deadlines measure execution, not queue
wait.  On a clean run with no timeout the loop performs exactly one
``wait`` per completion batch, same as the unsupervised gathers it
replaced — supervision costs nothing until something fails.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, Optional, Sequence, Tuple

from repro import telemetry
from repro.exceptions import ConfigurationError, ReproError

__all__ = [
    "RetryPolicy",
    "TaskTimeoutError",
    "is_broken_pool",
    "run_supervised",
    "terminate_workers",
]


class TaskTimeoutError(ReproError):
    """A supervised task exceeded its ``task_timeout`` lease."""


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised gather treats failing tasks.

    The default policy (no retries, no timeout) reproduces the legacy
    fail-fast behaviour exactly; supervision activates only when a caller
    opts in.

    Attributes:
        max_retries: failed attempts a task may accumulate beyond its
            first before it is given up (0 = fail fast).
        backoff: base delay before retry ``n`` — the task waits
            ``backoff * 2**(n-1)`` seconds, capped at ``backoff_cap``.
            Unrelated tasks keep running during the wait.
        backoff_cap: upper bound of the exponential delay.
        task_timeout: seconds one task attempt may run before its pool is
            presumed wedged and terminated (``None`` disables the lease;
            clean runs then never poll).
    """

    max_retries: int = 0
    backoff: float = 0.5
    backoff_cap: float = 30.0
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff < 0:
            raise ConfigurationError(
                f"backoff must be >= 0, got {self.backoff}"
            )
        if self.backoff_cap < 0:
            raise ConfigurationError(
                f"backoff_cap must be >= 0, got {self.backoff_cap}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ConfigurationError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )

    @property
    def supervised(self) -> bool:
        """``True`` when the policy changes anything over fail-fast."""
        return self.max_retries > 0 or self.task_timeout is not None

    def delay_for(self, attempt: int) -> float:
        """Capped exponential backoff before retry number ``attempt``."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return min(self.backoff * (2.0 ** (attempt - 1)), self.backoff_cap)


def is_broken_pool(error: BaseException) -> bool:
    """``True`` for failures that condemn the whole executor.

    ``BrokenProcessPool`` subclasses ``BrokenExecutor``; submitting to an
    already-broken pool raises the same family.
    """
    return isinstance(error, BrokenExecutor)


def terminate_workers(pool: ProcessPoolExecutor) -> None:
    """SIGKILL a pool's worker processes and reap the executor.

    Used when a worker is presumed hung: ``shutdown`` alone would block
    on the wedged task forever, and ``concurrent.futures`` offers no way
    to cancel a *running* future.  Killing the workers first makes the
    subsequent blocking shutdown return promptly.  Safe on an
    already-broken pool (its processes are reaped or dying).
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:
            pass  # already dead or never started
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:
        pass


#: Uncharged pool respawns allowed after the first break of a progress
#: epoch (see the ``breaks_since_progress`` comment in
#: :func:`run_supervised`).
_BREAK_GRACE = 3


@dataclass
class _Flight:
    """Book-keeping of one in-flight future."""

    task: Hashable
    cost: int
    deadline: Optional[float]


def _drain_and_release(
    pool: ProcessPoolExecutor,
    futures: Dict[Future, "_Flight"],
    release: Optional[Callable[[Any], Any]],
    kill: bool = False,
) -> None:
    """Failure-path cleanup: settle stragglers, release their payloads.

    Mirrors the PR 5/6 ``_release_unadopted`` contract: the pool shuts
    down exactly as the legacy ``with`` blocks did (in-flight and queued
    tasks run to completion, so their worker-side checkpoint writes still
    land), after which every future is settled and adopting-and-dropping
    the finished results unlinks any shared-memory segments their workers
    parked.  With ``kill`` (a timeout policy is active, so a worker may
    be wedged) the workers are SIGKILLed instead of awaited.  Results are
    *not* handed to ``on_result`` here — this path runs when the gather
    is already failing, and replaying side effects (checkpoint saves)
    during teardown would change observable state on an error path.
    Every failure is swallowed; the original error is being propagated by
    the caller.
    """
    try:
        if kill:
            terminate_workers(pool)
        else:
            pool.shutdown(wait=True)
    except Exception:
        pass
    if release is None:
        return
    for future in futures:
        try:
            if future.done() and not future.cancelled():
                release(future.result())
        except Exception:
            pass


def run_supervised(
    tasks: Sequence[Hashable],
    *,
    budget: int,
    submit: Callable[[ProcessPoolExecutor, Any, int, int], Tuple[Future, int]],
    on_result: Callable[[Any, Any, int], None],
    policy: Optional[RetryPolicy] = None,
    on_retry: Optional[Callable[[Any, BaseException, int, float], None]] = None,
    on_giveup: Optional[Callable[[Any, BaseException, int], bool]] = None,
    on_respawn: Optional[Callable[[], None]] = None,
    release: Optional[Callable[[Any], Any]] = None,
) -> None:
    """Run ``tasks`` through a supervised process pool until all resolve.

    Args:
        tasks: hashable task descriptors, in submission order.
        budget: total worker cost that may be in flight at once; also the
            pool's ``max_workers``.
        submit: ``(pool, task, available, ready_count) -> (future, cost)``
            — submits one task, deciding its worker cost from the free
            budget and the number of tasks still competing for it (the
            scheduler's adaptive allotment hook; plain gathers return
            cost 1).
        on_result: ``(task, result, cost)`` — consumes one successful
            result (adoption, checkpoint save, assembly).  An exception
            here is a *parent-side* failure and always propagates.
        policy: the :class:`RetryPolicy`; ``None`` means fail fast.
        on_retry: notified ``(task, error, attempt, delay)`` before each
            re-enqueue.
        on_giveup: offered ``(task, error, attempts)`` when a task
            exhausts its retries; returning ``True`` absorbs the failure
            (quarantine) and the gather continues.  Without a handler —
            or when it returns falsy — the error propagates.
        on_respawn: called after a pool is condemned and its survivors
            harvested, before the replacement pool spawns (the store
            layer sweeps dead writers' staging directories here).
        release: adopt-and-drop hook for results abandoned on the fatal
            error path (shared-memory adoption; see
            :func:`_drain_and_release`).

    Raises:
        Whatever the first unrecoverable failure raised: the task's own
        exception, ``BrokenProcessPool`` / :class:`TaskTimeoutError` when
        retries are exhausted (or not configured), or any ``on_result``
        failure.
    """
    policy = policy or RetryPolicy()
    if budget < 1:
        raise ConfigurationError(f"budget must be at least 1, got {budget}")
    pending: Deque[Tuple[Hashable, float]] = deque(
        (task, 0.0) for task in tasks
    )
    if not pending:
        return
    attempts: Dict[Hashable, int] = {}
    futures: Dict[Future, _Flight] = {}
    available = budget
    # Pool breaks observed since the last successfully delivered result.
    # A freshly respawned executor is occasionally condemned by a CPython
    # teardown race (the manager thread sees a worker sentinel ready while
    # every worker is demonstrably alive; reproduces under both the fork
    # and spawn start methods, always with a ``None`` cause).  Such a
    # re-break names no culprit and charging every in-flight task a retry
    # for it burns the budget of innocent tasks, so after the first break
    # of a progress epoch a few immediate re-breaks respawn for free.
    # The grace is bounded: a genuinely poisonous task that kills its
    # worker on every attempt still accumulates charges — just across
    # ``_BREAK_GRACE + 1`` times as many respawns — so give-up remains
    # guaranteed.
    breaks_since_progress = 0
    pool = ProcessPoolExecutor(max_workers=budget)

    def charge(task: Hashable, error: BaseException) -> None:
        """Consume one retry of ``task``; re-enqueue, quarantine or raise."""
        attempts[task] = attempts.get(task, 0) + 1
        count = attempts[task]
        if count <= policy.max_retries:
            telemetry.metrics.counter("supervision.retries").add(1)
            delay = policy.delay_for(count)
            if on_retry is not None:
                on_retry(task, error, count, delay)
            pending.append((task, time.monotonic() + delay))
            return
        telemetry.metrics.counter("supervision.giveups").add(1)
        if on_giveup is not None and on_giveup(task, error, count):
            return
        raise error

    def recover(error: BaseException, charged: Optional[set]) -> None:
        """Pool-death path: harvest survivors, re-enqueue the rest, respawn.

        ``charged`` limits which re-enqueued tasks consume a retry (the
        overdue tasks of a timeout); ``None`` charges every one (a broken
        pool cannot name its culprit) — except during the bounded
        spurious-break grace, when an immediate re-break with no result
        delivered since the previous break re-enqueues without charging.
        Tasks whose futures settled successfully before the death are
        harvested through ``on_result`` — their work, including parked
        shared-memory segments and pending checkpoint saves, survives the
        crash.
        """
        nonlocal pool, available, breaks_since_progress
        survivors: list = []
        requeue: list = []
        stragglers: list = []
        for future, flight in futures.items():
            result = None
            harvested = False
            if future.done() and not future.cancelled():
                try:
                    result = future.result()
                    harvested = True
                except BaseException:
                    harvested = False
            if harvested:
                survivors.append((flight, result))
            else:
                requeue.append(flight.task)
                stragglers.append(future)
        # Harvest before clearing the book-keeping: if a parent-side
        # consumer raises, the fatal path can still release everything.
        for flight, result in survivors:
            on_result(flight.task, result, flight.cost)
        if survivors:
            breaks_since_progress = 0
        breaks_since_progress += 1
        spurious = (
            charged is None
            and breaks_since_progress > 1
            and breaks_since_progress <= 1 + _BREAK_GRACE
        )
        futures.clear()
        available = budget
        terminate_workers(pool)
        # The executor is dead now, so no further results can arrive — but
        # a straggler may have slipped its result in *between* the harvest
        # pass and the kill.  Its task was re-enqueued anyway (its
        # checkpoint save never ran); adopt-and-drop the orphan payload so
        # a parked shared-memory segment unlinks here instead of leaking
        # until process exit.
        if release is not None:
            for future in stragglers:
                try:
                    if future.done() and not future.cancelled():
                        release(future.result())
                except BaseException:
                    pass
        telemetry.metrics.counter("supervision.respawns").add(1)
        if on_respawn is not None:
            on_respawn()
        pool = ProcessPoolExecutor(max_workers=budget)
        for task in requeue:
            if spurious:
                pending.append((task, time.monotonic()))
            elif charged is None or task in charged:
                charge(task, error)
            else:
                pending.append((task, time.monotonic()))

    try:
        while pending or futures:
            now = time.monotonic()
            while pending and available >= 1 and pending[0][1] <= now:
                task, _ = pending.popleft()
                try:
                    future, cost = submit(pool, task, available, len(pending) + 1)
                except BrokenExecutor as error:
                    pending.appendleft((task, now))
                    recover(error, charged=None)
                    break
                futures[future] = _Flight(task, cost, None if policy.task_timeout is None else now + policy.task_timeout)
                available -= cost
            if not futures:
                if pending:
                    # Everything runnable is backing off; sleep to the
                    # earliest ready time.
                    wake = min(ready for _, ready in pending)
                    time.sleep(max(0.0, wake - time.monotonic()))
                continue
            timeout = None
            bounds = [
                flight.deadline
                for flight in futures.values()
                if flight.deadline is not None
            ]
            if pending and available >= 1:
                bounds.append(min(ready for _, ready in pending))
            if bounds:
                timeout = max(0.0, min(bounds) - time.monotonic())
            done, _ = wait(set(futures), timeout=timeout, return_when=FIRST_COMPLETED)
            broken: Optional[BaseException] = None
            for future in done:
                flight = futures[future]
                try:
                    result = future.result()
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:
                    if is_broken_pool(error):
                        broken = error
                        break
                    futures.pop(future)
                    available += flight.cost
                    charge(flight.task, error)
                    continue
                futures.pop(future)
                available += flight.cost
                on_result(flight.task, result, flight.cost)
                breaks_since_progress = 0
            if broken is not None:
                recover(broken, charged=None)
                continue
            if policy.task_timeout is not None:
                now = time.monotonic()
                overdue = {
                    flight.task
                    for future, flight in futures.items()
                    if flight.deadline is not None
                    and flight.deadline <= now
                    and not future.done()
                }
                if overdue:
                    recover(
                        TaskTimeoutError(
                            f"{len(overdue)} task(s) exceeded the "
                            f"{policy.task_timeout:g}s task timeout"
                        ),
                        charged=overdue,
                    )
    except BaseException:
        _drain_and_release(
            pool, futures, release, kill=policy.task_timeout is not None
        )
        raise
    finally:
        pool.shutdown(wait=True)
