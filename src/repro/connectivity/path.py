"""Path-quality metrics.

Connectivity says *whether* two nodes can communicate; these helpers say
*how well* — how many hops a message needs on average, what the hop
diameter of the network is, and what fraction of node pairs can reach each
other when the network is disconnected.  They complement the availability
view of Section 1 of the paper: "a sufficiently large number of nodes are
connected" translates into a high reachability fraction.
"""

from __future__ import annotations

from typing import Optional

from repro.graph.adjacency import CommunicationGraph
from repro.graph.traversal import hop_counts


def average_hop_count(graph: CommunicationGraph) -> Optional[float]:
    """Mean hop distance over all ordered pairs of distinct, mutually
    reachable nodes.

    Returns ``None`` when no pair of distinct nodes is reachable (fewer
    than two nodes, or all nodes isolated).
    """
    total = 0
    pairs = 0
    for source in graph.nodes():
        distances = hop_counts(graph, source)
        for target, distance in enumerate(distances):
            if target == source or distance is None:
                continue
            total += distance
            pairs += 1
    if pairs == 0:
        return None
    return total / pairs


def network_diameter_hops(graph: CommunicationGraph) -> Optional[int]:
    """Largest hop distance between any two mutually reachable nodes.

    Returns ``None`` when no pair of distinct nodes is reachable.  For a
    disconnected graph this is the diameter of the "largest-diameter"
    component, which is the conventional reading for point graphs.
    """
    diameter: Optional[int] = None
    for source in graph.nodes():
        distances = hop_counts(graph, source)
        for target, distance in enumerate(distances):
            if target == source or distance is None:
                continue
            if diameter is None or distance > diameter:
                diameter = distance
    return diameter


def reachability_fraction(graph: CommunicationGraph) -> float:
    """Fraction of unordered node pairs that can reach each other.

    Equals 1.0 exactly when the graph is connected; for a graph whose
    largest component holds a fraction ``f`` of the nodes it is roughly
    ``f**2``, which quantifies the communication capability that remains
    when the paper's partial-connectivity thresholds (``rl90`` etc.) are
    used.
    """
    n = graph.node_count
    if n < 2:
        return 1.0
    from repro.graph.components import connected_components

    components = connected_components(graph)
    reachable_pairs = sum(len(c) * (len(c) - 1) // 2 for c in components)
    total_pairs = n * (n - 1) // 2
    return reachable_pairs / total_pairs
