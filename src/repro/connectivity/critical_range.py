"""Exact critical transmitting ranges of a fixed placement.

For a *given* placement the MTR problem of Section 2 has an exact answer:
the minimum range making the point graph connected equals the longest edge
of a Euclidean minimum spanning tree of the points (the "bottleneck" edge).
This module computes that value directly — via Prim's algorithm on the
dense distance matrix — as well as the analogous thresholds for partial
connectivity (smallest range whose largest component reaches a target
fraction of ``n``) and for k-connectivity (by bisection on candidate
ranges).

These exact per-placement values are the building blocks of the
``rstationary`` estimates used as the denominator throughout Figures 2–9.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.exceptions import AnalysisError
from repro.geometry.distance import pairwise_distances, squared_distance_matrix
from repro.graph.builder import build_communication_graph
from repro.graph.components import largest_component_fraction
from repro.graph.properties import is_k_connected
from repro.graph.union_find import UnionFind
from repro.types import Positions, as_positions


def range_reaching(squared_distance: float) -> float:
    """The smallest float ``r`` with ``r * r >= squared_distance``.

    The graph builder decides adjacency by comparing squared distances with
    ``r**2``; taking a plain square root of a squared distance can land one
    ulp *below* the true threshold, producing a range that fails to include
    the edge it was derived from.  This helper rounds the square root up by
    at most a couple of ulps so that every range the library reports really
    does connect the pair it came from.
    """
    if squared_distance <= 0.0:
        return 0.0
    radius = math.sqrt(squared_distance)
    while radius * radius < squared_distance:
        radius = math.nextafter(radius, math.inf)
    return radius


def critical_range(positions: Positions) -> float:
    """Minimum transmitting range that connects ``positions``.

    This is the bottleneck (longest) edge of the Euclidean minimum spanning
    tree.  Computed with Prim's algorithm on the dense distance matrix,
    which is ``O(n^2)`` time and memory — fine for the network sizes used in
    the paper (n up to 128) and exact, unlike a bisection over builds.

    Returns 0.0 for zero or one node (such a network is trivially
    connected at any range).
    """
    points = as_positions(positions)
    n = points.shape[0]
    if n <= 1:
        return 0.0
    squared = squared_distance_matrix(points)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best = squared[0].copy()
    best[0] = math.inf
    bottleneck_squared = 0.0
    for _ in range(n - 1):
        candidate = int(np.argmin(np.where(in_tree, math.inf, best)))
        bottleneck_squared = max(bottleneck_squared, float(best[candidate]))
        in_tree[candidate] = True
        best = np.minimum(best, squared[candidate])
        best[in_tree] = math.inf
    return range_reaching(bottleneck_squared)


def critical_range_toroidal(positions: Positions, side: float) -> float:
    """Minimum transmitting range connecting ``positions`` on a torus.

    Identical to :func:`critical_range` but with wrap-around (toroidal)
    distances on the cube of side ``side``.  Useful for comparing against
    asymptotic results (e.g. the Penrose limit law in
    :mod:`repro.analysis.bounds_2d`) that are stated without boundary
    effects.
    """
    from repro.geometry.distance import toroidal_distance_matrix

    points = as_positions(positions)
    n = points.shape[0]
    if n <= 1:
        return 0.0
    distances = toroidal_distance_matrix(points, side)
    in_tree = np.zeros(n, dtype=bool)
    in_tree[0] = True
    best = distances[0].copy()
    best[0] = math.inf
    bottleneck = 0.0
    for _ in range(n - 1):
        candidate = int(np.argmin(np.where(in_tree, math.inf, best)))
        bottleneck = max(bottleneck, float(best[candidate]))
        in_tree[candidate] = True
        best = np.minimum(best, distances[candidate])
        best[in_tree] = math.inf
    return bottleneck


def critical_range_for_component_fraction(
    positions: Positions, fraction: float
) -> float:
    """Smallest range whose largest connected component has ``>= fraction * n`` nodes.

    Implemented with a Kruskal-style sweep: edges are added in order of
    increasing length into a union-find structure, and the first edge length
    at which the largest set reaches the target size is returned.  This is
    exact and costs one sort of the ``O(n^2)`` candidate edges.

    Args:
        fraction: target fraction of nodes in the largest component, in
            ``(0, 1]``; a value of 1.0 reproduces :func:`critical_range`.
    """
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError(f"fraction must be in (0, 1], got {fraction}")
    points = as_positions(positions)
    n = points.shape[0]
    if n == 0:
        return 0.0
    target = max(1, int(math.ceil(fraction * n)))
    if target <= 1:
        return 0.0
    squared = squared_distance_matrix(points)
    rows, cols = np.triu_indices(n, k=1)
    lengths = squared[rows, cols]
    order = np.argsort(lengths)
    structure = UnionFind(n)
    for index in order:
        u = int(rows[index])
        v = int(cols[index])
        structure.union(u, v)
        if structure.set_size(u) >= target:
            return range_reaching(float(lengths[index]))
    # Unreachable for fraction <= 1, but keep a defensive return.
    return range_reaching(float(lengths[order[-1]])) if lengths.size else 0.0


def longest_gap_1d(positions: Positions) -> float:
    """Largest spacing between consecutive nodes of a 1-D placement.

    For a 1-dimensional network the critical range is exactly the longest
    gap between consecutive sorted node positions; this specialised routine
    is ``O(n log n)`` and is used by the 1-D theory benchmarks where ``n``
    gets large.
    """
    points = as_positions(positions)
    if points.shape[1] != 1:
        raise AnalysisError(
            f"longest_gap_1d requires a 1-D placement, got dimension {points.shape[1]}"
        )
    n = points.shape[0]
    if n <= 1:
        return 0.0
    coordinates = np.sort(points[:, 0])
    return float(np.max(np.diff(coordinates)))


def range_for_k_connectivity(
    positions: Positions,
    k: int,
    tolerance: float = 1e-6,
    max_iterations: int = 64,
) -> Optional[float]:
    """Smallest range (to ``tolerance``) making the placement k-connected.

    Uses bisection between the 1-connectivity critical range and the
    placement diameter.  Returns ``None`` when even the complete graph on
    the placement is not k-connected (i.e. ``n <= k``).
    """
    if k <= 0:
        raise AnalysisError(f"k must be positive, got {k}")
    points = as_positions(positions)
    n = points.shape[0]
    if n <= k:
        return None
    low = critical_range(points)
    distances = pairwise_distances(points)
    high = float(distances.max())
    if high == 0.0:
        return 0.0

    def satisfied(radius: float) -> bool:
        graph = build_communication_graph(points, radius)
        return is_k_connected(graph, k)

    if satisfied(low):
        return low
    if not satisfied(high):
        return None
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        if satisfied(mid):
            high = mid
        else:
            low = mid
        if high - low <= tolerance:
            break
    return high


def sorted_edge_lengths(positions: Positions) -> List[float]:
    """All pairwise distances sorted ascending (helper for sweeps/tests)."""
    points = as_positions(positions)
    n = points.shape[0]
    if n < 2:
        return []
    distances = pairwise_distances(points)
    rows, cols = np.triu_indices(n, k=1)
    return sorted(float(d) for d in distances[rows, cols])
