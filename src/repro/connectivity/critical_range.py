"""Exact critical transmitting ranges of a fixed placement.

For a *given* placement the MTR problem of Section 2 has an exact answer:
the minimum range making the point graph connected equals the longest edge
of a Euclidean minimum spanning tree of the points (the "bottleneck" edge).
This module computes that value directly — via Prim's algorithm on the
dense distance matrix — as well as the analogous thresholds for partial
connectivity (smallest range whose largest component reaches a target
fraction of ``n``) and for k-connectivity (by bisection on candidate
ranges).

These exact per-placement values are the building blocks of the
``rstationary`` estimates used as the denominator throughout Figures 2–9.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.backend import NUMPY_BACKEND, ArrayBackend, resolve_backend
from repro.exceptions import AnalysisError
from repro.geometry.distance import pairwise_distances, squared_distance_matrix
from repro.graph.builder import build_communication_graph
from repro.graph.components import largest_component_fraction
from repro.graph.properties import is_k_connected
from repro.graph.union_find import UnionFind
from repro.types import Positions, as_positions


def range_reaching(squared_distance: float) -> float:
    """The smallest float ``r`` with ``r * r >= squared_distance``.

    The graph builder decides adjacency by comparing squared distances with
    ``r**2``; taking a plain square root of a squared distance can land one
    ulp *below* the true threshold, producing a range that fails to include
    the edge it was derived from.  This helper rounds the square root up by
    at most a couple of ulps so that every range the library reports really
    does connect the pair it came from.
    """
    if squared_distance <= 0.0:
        return 0.0
    radius = math.sqrt(squared_distance)
    while radius * radius < squared_distance:
        radius = math.nextafter(radius, math.inf)
    return radius


def minimum_spanning_edges(
    positions: Positions,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edges of a Euclidean minimum spanning tree, sorted by length.

    Returns three aligned arrays ``(us, vs, squared_lengths)`` of length
    ``n - 1`` (empty for fewer than two nodes): the endpoints of each MST
    edge and its *squared* Euclidean length, in non-decreasing length order.

    Computed with Prim's algorithm on the dense squared distance matrix;
    every inner scan is a whole-array NumPy operation, so the Python-level
    work is ``O(n)`` loop iterations rather than ``O(n^2)`` per-edge steps.

    The component structure of the communication graph at *any* range can
    be recovered from these edges alone (adding the MST edges of length at
    most ``r`` yields exactly the connected components of the full graph at
    range ``r``), which is what makes the per-frame reductions in
    :mod:`repro.simulation.engine` cheap.
    """
    points = as_positions(positions)
    return minimum_spanning_edges_from_squared(squared_distance_matrix(points))


def minimum_spanning_edges_from_squared(
    squared: np.ndarray,
    *,
    backend: Optional[ArrayBackend] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`minimum_spanning_edges` over a precomputed squared-distance matrix.

    This is the reusable Prim core: metrics other than plain Euclidean
    (e.g. toroidal wrap-around) pass their own ``(n, n)`` squared-distance
    matrix and get the same sorted MST edges back.

    ``backend`` selects the array namespace the ``(n,)`` inner scans run
    under (:mod:`repro.backend`); the matrix must live on that backend.
    The returned edge arrays are always *host* NumPy — single-placement
    MSTs feed host-side threshold extraction directly.
    """
    backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    xp = backend.xp
    n = squared.shape[0]
    empty = (
        np.empty(0, dtype=np.intp),
        np.empty(0, dtype=np.intp),
        np.empty(0, dtype=float),
    )
    if n <= 1:
        return empty
    in_tree = xp.zeros(n, dtype=xp.bool)
    in_tree[0] = True
    best = backend.copy(squared[0, :])
    best[0] = math.inf
    parent = xp.zeros(n, dtype=xp.int64)
    us = np.empty(n - 1, dtype=np.intp)
    vs = np.empty(n - 1, dtype=np.intp)
    lengths = np.empty(n - 1, dtype=float)
    for index in range(n - 1):
        candidate = int(backend.to_host(xp.argmin(xp.where(in_tree, math.inf, best))))
        us[index] = int(backend.to_host(parent[candidate]))
        vs[index] = candidate
        lengths[index] = float(backend.to_host(best[candidate]))
        in_tree[candidate] = True
        closer = squared[candidate, :] < best
        parent = backend.fill_mask(parent, closer, candidate)
        best = backend.minimum_update(best, squared[candidate, :])
        best = backend.fill_mask(best, in_tree, math.inf)
    order = np.argsort(lengths, kind="stable")
    return us[order], vs[order], lengths[order]


def minimum_spanning_edges_batch(
    frames: np.ndarray,
    *,
    backend: Optional[ArrayBackend] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`minimum_spanning_edges` over ``(B, n, d)`` frames.

    Returns ``(us, vs, squared_lengths)`` as ``(B, n - 1)`` arrays, each row
    sorted by squared length.  One Prim iteration here advances *every*
    frame at once with ``(B, n)`` array operations, so the per-call
    overhead of the ``n - 1`` loop iterations is amortised across the whole
    batch — this is what makes reducing a 10 000-step trajectory cheap.

    Per-frame squared distance matrices are computed with
    :func:`repro.geometry.distance.squared_distance_matrix`, so every edge
    length (and therefore every derived threshold) is bit-identical to the
    single-frame code path.

    ``backend`` selects the array namespace (:mod:`repro.backend`).  The
    frames must already live on that backend and the returned arrays stay
    on it — callers that feed host-side consumers (the union-find sweep in
    :mod:`repro.simulation.engine`) perform the device→host sync with
    :meth:`~repro.backend.ArrayBackend.to_host` explicitly.
    """
    backend = NUMPY_BACKEND if backend is None else resolve_backend(backend)
    xp = backend.xp
    points = xp.asarray(frames, dtype=xp.float64)
    if points.ndim != 3:
        raise AnalysisError(
            f"expected a (B, n, d) batch of frames, got shape {points.shape}"
        )
    batch, n, _ = points.shape
    if n <= 1 or batch == 0:
        return (
            xp.empty((batch, 0), dtype=xp.int64),
            xp.empty((batch, 0), dtype=xp.int64),
            xp.empty((batch, 0), dtype=xp.float64),
        )
    squared = xp.stack(
        [squared_distance_matrix(points[index, ...], xp=xp) for index in range(batch)]
    )
    batch_index = xp.arange(batch)
    in_tree = xp.zeros((batch, n), dtype=xp.bool)
    in_tree[:, 0] = True
    best = backend.copy(squared[:, 0, :])
    best[:, 0] = math.inf
    parent = xp.zeros((batch, n), dtype=xp.int64)
    us = xp.empty((batch, n - 1), dtype=xp.int64)
    vs = xp.empty((batch, n - 1), dtype=xp.int64)
    lengths = xp.empty((batch, n - 1), dtype=xp.float64)
    for index in range(n - 1):
        candidate = xp.argmin(best, axis=1)
        us[:, index] = backend.take_pairs(parent, batch_index, candidate)
        vs[:, index] = candidate
        lengths[:, index] = backend.take_pairs(best, batch_index, candidate)
        in_tree = backend.put_pairs(in_tree, batch_index, candidate, True)
        best = backend.put_pairs(best, batch_index, candidate, math.inf)
        row = xp.where(in_tree, math.inf, backend.take_rows(squared, batch_index, candidate))
        closer = row < best
        parent = xp.where(closer, candidate[:, None], parent)
        best = xp.where(closer, row, best)
    order = backend.stable_argsort(lengths, axis=1)
    return (
        backend.take_along(us, order, axis=1),
        backend.take_along(vs, order, axis=1),
        backend.take_along(lengths, order, axis=1),
    )


def critical_range(positions: Positions) -> float:
    """Minimum transmitting range that connects ``positions``.

    This is the bottleneck (longest) edge of the Euclidean minimum spanning
    tree, read off :func:`minimum_spanning_edges` — ``O(n^2)`` time and
    memory, fine for the network sizes used in the paper (n up to 128) and
    exact, unlike a bisection over builds.

    Returns 0.0 for zero or one node (such a network is trivially
    connected at any range).
    """
    _, _, lengths = minimum_spanning_edges(positions)
    if lengths.size == 0:
        return 0.0
    return range_reaching(float(lengths[-1]))


def critical_range_toroidal(positions: Positions, side: float) -> float:
    """Minimum transmitting range connecting ``positions`` on a torus.

    Identical to :func:`critical_range` but with wrap-around (toroidal)
    distances on the cube of side ``side``.  Useful for comparing against
    asymptotic results (e.g. the Penrose limit law in
    :mod:`repro.analysis.bounds_2d`) that are stated without boundary
    effects.  Like its Euclidean sibling, the returned radius is rounded up
    with :func:`range_reaching` so it really reaches the bottleneck pair.
    """
    from repro.geometry.distance import toroidal_squared_distance_matrix

    points = as_positions(positions)
    if points.shape[0] <= 1:
        return 0.0
    _, _, lengths = minimum_spanning_edges_from_squared(
        toroidal_squared_distance_matrix(points, side)
    )
    return range_reaching(float(lengths[-1]))


def critical_range_for_component_fraction(
    positions: Positions, fraction: float
) -> float:
    """Smallest range whose largest connected component has ``>= fraction * n`` nodes.

    Implemented with a Kruskal-style sweep over the sorted MST edges from
    :func:`minimum_spanning_edges` — the component partition at every
    length threshold is fully determined by the MST, so only ``n - 1``
    union operations run in Python instead of one per candidate edge.

    Args:
        fraction: target fraction of nodes in the largest component, in
            ``(0, 1]``; a value of 1.0 reproduces :func:`critical_range`.
    """
    if not 0.0 < fraction <= 1.0:
        raise AnalysisError(f"fraction must be in (0, 1], got {fraction}")
    points = as_positions(positions)
    n = points.shape[0]
    if n == 0:
        return 0.0
    target = max(1, int(math.ceil(fraction * n)))
    if target <= 1:
        return 0.0
    us, vs, lengths = minimum_spanning_edges(points)
    structure = UnionFind(n)
    for u, v, squared_length in zip(us.tolist(), vs.tolist(), lengths.tolist()):
        structure.union(u, v)
        if structure.set_size(u) >= target:
            return range_reaching(squared_length)
    # Unreachable for fraction <= 1, but keep a defensive return.
    return range_reaching(float(lengths[-1])) if lengths.size else 0.0


def longest_gap_1d(positions: Positions) -> float:
    """Largest spacing between consecutive nodes of a 1-D placement.

    For a 1-dimensional network the critical range is exactly the longest
    gap between consecutive sorted node positions; this specialised routine
    is ``O(n log n)`` and is used by the 1-D theory benchmarks where ``n``
    gets large.
    """
    points = as_positions(positions)
    if points.shape[1] != 1:
        raise AnalysisError(
            f"longest_gap_1d requires a 1-D placement, got dimension {points.shape[1]}"
        )
    n = points.shape[0]
    if n <= 1:
        return 0.0
    coordinates = np.sort(points[:, 0])
    return float(np.max(np.diff(coordinates)))


def range_for_k_connectivity(
    positions: Positions,
    k: int,
    tolerance: float = 1e-6,
    max_iterations: int = 64,
) -> Optional[float]:
    """Smallest range (to ``tolerance``) making the placement k-connected.

    Uses bisection between the 1-connectivity critical range and the
    placement diameter.  Returns ``None`` when even the complete graph on
    the placement is not k-connected (i.e. ``n <= k``).
    """
    if k <= 0:
        raise AnalysisError(f"k must be positive, got {k}")
    points = as_positions(positions)
    n = points.shape[0]
    if n <= k:
        return None
    low = critical_range(points)
    distances = pairwise_distances(points)
    high = float(distances.max())
    if high == 0.0:
        return 0.0

    def satisfied(radius: float) -> bool:
        graph = build_communication_graph(points, radius)
        return is_k_connected(graph, k)

    if satisfied(low):
        return low
    if not satisfied(high):
        return None
    for _ in range(max_iterations):
        mid = 0.5 * (low + high)
        if satisfied(mid):
            high = mid
        else:
            low = mid
        if high - low <= tolerance:
            break
    return high


def sorted_edge_lengths(positions: Positions) -> List[float]:
    """All pairwise distances sorted ascending (helper for sweeps/tests)."""
    points = as_positions(positions)
    n = points.shape[0]
    if n < 2:
        return []
    distances = pairwise_distances(points)
    rows, cols = np.triu_indices(n, k=1)
    return np.sort(distances[rows, cols]).tolist()
