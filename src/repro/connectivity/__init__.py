"""Connectivity metrics on placements and traces.

This package sits between the graph substrate and the simulation engine:
given a placement (or a whole mobility trace) and a transmitting range it
answers the questions the paper's evaluation revolves around — is the
network connected, how big is the largest connected component, and what is
the *exact* critical transmitting range of a given placement.
"""

from repro.connectivity.critical_range import (
    critical_range,
    critical_range_for_component_fraction,
    longest_gap_1d,
    range_for_k_connectivity,
)
from repro.connectivity.metrics import (
    ConnectivityObservation,
    connectivity_fraction_over_trace,
    is_placement_connected,
    largest_component_fraction_of_placement,
    observe_placement,
    observe_trace,
)
from repro.connectivity.path import (
    average_hop_count,
    network_diameter_hops,
    reachability_fraction,
)

__all__ = [
    "ConnectivityObservation",
    "average_hop_count",
    "connectivity_fraction_over_trace",
    "critical_range",
    "critical_range_for_component_fraction",
    "is_placement_connected",
    "largest_component_fraction_of_placement",
    "longest_gap_1d",
    "network_diameter_hops",
    "observe_placement",
    "observe_trace",
    "range_for_k_connectivity",
    "reachability_fraction",
]
