"""Per-placement and per-trace connectivity observations.

The simulator reduces every mobility step to a small record — was the
graph connected, and how large was the largest connected component.  The
functions here compute those records from raw positions so they can also be
used standalone (e.g. the examples call them directly on hand-built
placements).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.graph.builder import build_communication_graph
from repro.graph.components import summarize_components
from repro.types import Positions


@dataclass(frozen=True)
class ConnectivityObservation:
    """Connectivity facts about one placement at one transmitting range."""

    node_count: int
    transmitting_range: float
    connected: bool
    largest_component_size: int
    component_count: int

    @property
    def largest_component_fraction(self) -> float:
        """Largest component size over ``n`` (0 for an empty network)."""
        if self.node_count == 0:
            return 0.0
        return self.largest_component_size / self.node_count


def observe_placement(
    positions: Positions, transmitting_range: float
) -> ConnectivityObservation:
    """Build the communication graph and record its connectivity facts."""
    graph = build_communication_graph(positions, transmitting_range)
    summary = summarize_components(graph)
    return ConnectivityObservation(
        node_count=graph.node_count,
        transmitting_range=transmitting_range,
        connected=summary.is_connected,
        largest_component_size=summary.largest_size,
        component_count=summary.component_count,
    )


def is_placement_connected(positions: Positions, transmitting_range: float) -> bool:
    """``True`` if the point graph of ``positions`` at range ``r`` is connected."""
    return observe_placement(positions, transmitting_range).connected


def largest_component_fraction_of_placement(
    positions: Positions, transmitting_range: float
) -> float:
    """Largest-component fraction of the point graph of ``positions``."""
    return observe_placement(positions, transmitting_range).largest_component_fraction


def observe_trace(
    frames: Iterable[Positions], transmitting_range: float
) -> List[ConnectivityObservation]:
    """Observe every frame of a mobility trace at a fixed range."""
    return [observe_placement(frame, transmitting_range) for frame in frames]


def connectivity_fraction_over_trace(
    frames: Iterable[Positions], transmitting_range: float
) -> float:
    """Fraction of frames whose communication graph is connected.

    This is the quantity the MTRM problem constrains: ``r100`` is the least
    range for which this fraction is 1.0, ``r90`` the least range for which
    it is at least 0.9, and so on.
    """
    observations = observe_trace(frames, transmitting_range)
    if not observations:
        return 0.0
    connected = sum(1 for obs in observations if obs.connected)
    return connected / len(observations)
