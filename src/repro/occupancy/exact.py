"""Exact occupancy formulas.

For ``n`` balls thrown independently and uniformly into ``C`` cells, the
number of empty cells ``mu(n, C)`` has (Section 2 of the paper, following
Kolchin, Sevast'yanov & Chistyakov):

* ``P(mu = 0) = sum_{i=0}^{C} (-1)^i binom(C, i) (1 - i/C)^n``
* ``E[mu]     = C (1 - 1/C)^n``
* ``Var[mu]   = C (C-1) (1 - 2/C)^n + C (1 - 1/C)^n - C^2 (1 - 1/C)^{2n}``

The general pmf ``P(mu = k)`` follows from the classical inclusion–
exclusion count of surjections: the probability that *exactly* ``k``
specified cells are empty and the rest are all occupied.
"""

from __future__ import annotations

import math
from typing import List

from repro.exceptions import AnalysisError


def _validate(n: int, cells: int) -> None:
    if n < 0:
        raise AnalysisError(f"number of balls must be non-negative, got {n}")
    if cells <= 0:
        raise AnalysisError(f"number of cells must be positive, got {cells}")


def empty_cells_mean(n: int, cells: int) -> float:
    """``E[mu(n, C)] = C (1 - 1/C)^n``."""
    _validate(n, cells)
    if cells == 1:
        return 0.0 if n > 0 else 1.0
    return cells * (1.0 - 1.0 / cells) ** n


def empty_cells_variance(n: int, cells: int) -> float:
    """``Var[mu(n, C)]`` from the exact formula quoted in Section 2."""
    _validate(n, cells)
    C = float(cells)
    if cells == 1:
        return 0.0
    term_pairs = C * (C - 1.0) * (1.0 - 2.0 / C) ** n
    term_mean = C * (1.0 - 1.0 / C) ** n
    term_square = (C * (1.0 - 1.0 / C) ** n) ** 2
    variance = term_pairs + term_mean - term_square
    # The formula can produce tiny negatives through cancellation.
    return max(variance, 0.0)


def _log_binomial(a: int, b: int) -> float:
    """``log binom(a, b)`` via lgamma (valid for 0 <= b <= a)."""
    return math.lgamma(a + 1) - math.lgamma(b + 1) - math.lgamma(a - b + 1)


def probability_all_cells_occupied(n: int, cells: int) -> float:
    """``P(mu(n, C) = 0)`` — every cell receives at least one ball.

    Computed by inclusion–exclusion in a numerically careful way (terms are
    combined in log space and accumulated with alternating signs).
    """
    _validate(n, cells)
    if n < cells:
        return 0.0
    total = 0.0
    for i in range(cells + 1):
        fraction = 1.0 - i / cells
        if fraction == 0.0:
            # (1 - C/C)^n is zero unless n == 0 (handled by n < cells above).
            continue
        log_term = _log_binomial(cells, i) + n * math.log(fraction)
        term = math.exp(log_term)
        total += term if i % 2 == 0 else -term
    return min(max(total, 0.0), 1.0)


def empty_cells_pmf(n: int, cells: int, k: int) -> float:
    """``P(mu(n, C) = k)`` — probability that exactly ``k`` cells are empty.

    Exactly ``k`` of the ``C`` cells are empty iff the ``n`` balls all land
    in a specific set of ``C - k`` cells *and* cover all of them::

        P(mu = k) = binom(C, k) * ((C-k)/C)^n * P(all of C-k cells occupied)

    where the last factor is ``P(mu(n, C-k) = 0)``.
    """
    _validate(n, cells)
    if k < 0 or k > cells:
        return 0.0
    if k == cells:
        return 1.0 if n == 0 else 0.0
    occupied = cells - k
    if n < occupied:
        return 0.0
    log_choose = _log_binomial(cells, k)
    log_land = n * math.log(occupied / cells)
    cover = probability_all_cells_occupied(n, occupied)
    if cover == 0.0:
        return 0.0
    value = math.exp(log_choose + log_land + math.log(cover))
    return min(max(value, 0.0), 1.0)


def empty_cells_distribution(n: int, cells: int) -> List[float]:
    """The full pmf ``[P(mu = 0), ..., P(mu = C)]``.

    The entries sum to 1 up to floating point error; tests assert this.
    """
    _validate(n, cells)
    return [empty_cells_pmf(n, cells, k) for k in range(cells + 1)]
