"""Occupancy theory (balls into cells) used by the paper's 1-D analysis.

Section 3 of the paper subdivides the line ``[0, l]`` into ``C = l / r``
cells of length ``r`` and reasons about the random variable ``mu(n, C)``,
the number of empty cells after ``n`` nodes (balls) land uniformly at
random.  This package implements:

* the exact distribution, expectation and variance of ``mu(n, C)``
  (:mod:`repro.occupancy.exact`),
* the asymptotic formulas of Theorem 1 (:mod:`repro.occupancy.asymptotic`),
* the five growth domains (CD, RHD, LHD, RHID, LHID) and their limit
  distributions from Theorem 2 (:mod:`repro.occupancy.domains` and
  :mod:`repro.occupancy.limits`), and
* the cell bit-string machinery of Lemma 1, including detection of the
  ``{10*1}`` pattern whose occurrence forces a disconnected communication
  graph (:mod:`repro.occupancy.cells`).
"""

from repro.occupancy.asymptotic import (
    asymptotic_empty_cells_mean,
    asymptotic_empty_cells_variance,
    empty_cells_mean_upper_bound,
)
from repro.occupancy.cells import (
    CellOccupancy,
    cell_counts,
    cell_occupancy_from_positions,
    empty_cell_count,
    has_gap_pattern,
    occupancy_bitstring,
)
from repro.occupancy.domains import OccupancyDomain, classify_domain
from repro.occupancy.exact import (
    empty_cells_distribution,
    empty_cells_mean,
    empty_cells_pmf,
    empty_cells_variance,
)
from repro.occupancy.limits import (
    LimitLaw,
    limit_law,
    rhd_poisson_rate,
)

__all__ = [
    "CellOccupancy",
    "LimitLaw",
    "OccupancyDomain",
    "asymptotic_empty_cells_mean",
    "asymptotic_empty_cells_variance",
    "cell_counts",
    "cell_occupancy_from_positions",
    "classify_domain",
    "empty_cell_count",
    "empty_cells_distribution",
    "empty_cells_mean",
    "empty_cells_mean_upper_bound",
    "empty_cells_pmf",
    "empty_cells_variance",
    "has_gap_pattern",
    "limit_law",
    "occupancy_bitstring",
    "rhd_poisson_rate",
]
