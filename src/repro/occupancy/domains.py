"""Growth domains of the occupancy problem.

The asymptotic law of ``mu(n, C)`` depends on how ``n`` grows relative to
``C`` (Section 2 of the paper):

* **central domain (CD)** — ``n = Theta(C)``;
* **right-hand domain (RHD)** — ``n = Theta(C log C)``;
* **left-hand domain (LHD)** — ``n = Theta(sqrt(C))``;
* **right-hand intermediate domain (RHID)** — ``n = Omega(C)`` but
  ``n << C log C``;
* **left-hand intermediate domain (LHID)** — ``n = O(C)`` but
  ``n >> sqrt(C)``.

Domains are asymptotic notions; for finite inputs the classifier applies
the natural finite-size reading of the definitions with a tolerance factor
so that, e.g., ``n = 2 C`` classifies as CD and ``n = C log C`` as RHD.
The regime that matters to the paper's Theorem 4 is the RHID, which is
where ``l << r n << l log l`` lands.
"""

from __future__ import annotations

import enum
import math

from repro.exceptions import AnalysisError


class OccupancyDomain(enum.Enum):
    """The five growth domains of Theorem 2."""

    LEFT_HAND = "LHD"
    LEFT_INTERMEDIATE = "LHID"
    CENTRAL = "CD"
    RIGHT_INTERMEDIATE = "RHID"
    RIGHT_HAND = "RHD"


def classify_domain(n: float, cells: float, tolerance: float = 4.0) -> OccupancyDomain:
    """Classify the pair ``(n, C)`` into one of the five growth domains.

    Args:
        n: number of balls.
        cells: number of cells ``C``; must be at least 2 so ``log C > 0``.
        tolerance: multiplicative slack applied to the Theta comparisons;
            ``n`` counts as ``Theta(f(C))`` when
            ``f(C) / tolerance <= n <= tolerance * f(C)``.

    When the tolerance windows of two Theta-domains overlap (which happens
    for moderate ``C``), the pair resolves to the Theta-domain whose target
    is closest to ``n`` in log-space.
    """
    if n < 0:
        raise AnalysisError(f"number of balls must be non-negative, got {n}")
    if cells < 2:
        raise AnalysisError(f"number of cells must be at least 2, got {cells}")
    if tolerance < 1.0:
        raise AnalysisError(f"tolerance must be >= 1, got {tolerance}")

    log_c = math.log(cells)
    sqrt_c = math.sqrt(cells)
    targets = {
        OccupancyDomain.LEFT_HAND: sqrt_c,
        OccupancyDomain.CENTRAL: float(cells),
        OccupancyDomain.RIGHT_HAND: cells * log_c,
    }

    if n > 0:
        candidates = [
            (abs(math.log(n) - math.log(target)), domain)
            for domain, target in targets.items()
            if target / tolerance <= n <= target * tolerance
        ]
        if candidates:
            candidates.sort(key=lambda item: item[0])
            return candidates[0][1]

    if n > cells:
        # n grows faster than C but slower than C log C.
        return OccupancyDomain.RIGHT_INTERMEDIATE
    if n > sqrt_c:
        return OccupancyDomain.LEFT_INTERMEDIATE
    # Below sqrt(C): the left-hand domain is the closest description.
    return OccupancyDomain.LEFT_HAND


def domain_for_line_network(
    n: int, length: float, radius: float, tolerance: float = 4.0
) -> OccupancyDomain:
    """Domain of the occupancy problem induced by a 1-D network.

    The line ``[0, length]`` is divided into ``C = length / radius`` cells;
    the paper's Theorem 4 observes that ``l << r n << l log l`` is exactly
    the RHID of this occupancy problem.
    """
    if radius <= 0:
        raise AnalysisError(f"radius must be positive, got {radius}")
    if length <= 0:
        raise AnalysisError(f"length must be positive, got {length}")
    cells = length / radius
    if cells < 2:
        raise AnalysisError(
            "the radius is at least half the region length; the cell "
            "subdivision of Section 3 does not apply"
        )
    return classify_domain(n, cells, tolerance=tolerance)
