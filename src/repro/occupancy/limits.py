"""Limit distributions of the number of empty cells (Theorem 2).

Theorem 2 of the paper states that, as ``n, C -> infinity``:

* in the **CD**, **RHID** and **LHID** domains, ``mu(n, C)`` is
  asymptotically normal with parameters ``(E[mu], sqrt(Var[mu]))``;
* in the **RHD**, ``mu(n, C)`` is asymptotically Poisson with rate
  ``lambda = lim E[mu]``;
* in the **LHD**, the recentred variable ``eta = mu - (C - n)`` is
  asymptotically Poisson with rate ``rho = lim Var[mu]``.

:func:`limit_law` packages this decision together with the appropriate
parameters so callers can evaluate approximate probabilities such as
``P(mu = k)``, which is exactly what the proof of Theorem 4 needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import AnalysisError
from repro.occupancy.asymptotic import (
    asymptotic_empty_cells_mean,
    asymptotic_empty_cells_variance,
)
from repro.occupancy.domains import OccupancyDomain, classify_domain
from repro.occupancy.exact import empty_cells_mean, empty_cells_variance
from repro.stats.distributions import normal_cdf, normal_pdf, poisson_pmf


@dataclass(frozen=True)
class LimitLaw:
    """A limit distribution for ``mu(n, C)`` in a particular domain.

    Attributes:
        domain: the growth domain the law applies to.
        kind: ``"normal"`` or ``"poisson"``.
        mean: mean of the limiting distribution (of ``mu`` itself, except in
            the LHD where it refers to the recentred variable ``eta``).
        std: standard deviation (normal laws only, else ``None``).
        rate: Poisson rate (Poisson laws only, else ``None``).
        recentered: ``True`` when the law describes ``eta = mu - (C - n)``
            rather than ``mu`` (LHD case).
    """

    domain: OccupancyDomain
    kind: str
    mean: float
    std: Optional[float] = None
    rate: Optional[float] = None
    recentered: bool = False

    def pmf(self, k: int) -> float:
        """Approximate ``P(mu = k)`` (or ``P(eta = k)`` when recentred).

        For the normal laws a continuity-corrected interval of width one is
        used, falling back to the density when the standard deviation is
        extremely small.
        """
        if self.kind == "poisson":
            assert self.rate is not None
            return poisson_pmf(k, self.rate)
        assert self.std is not None
        if self.std <= 0.0:
            return 1.0 if k == round(self.mean) else 0.0
        lower = normal_cdf(k - 0.5, self.mean, self.std)
        upper = normal_cdf(k + 0.5, self.mean, self.std)
        estimate = upper - lower
        if estimate > 0.0:
            return estimate
        return normal_pdf(float(k), self.mean, self.std)

    def peak_probability(self) -> float:
        """Approximate probability of the most likely value.

        For a normal law this is ``~ 1 / (std * sqrt(2 pi))``, which is the
        quantity the proof of Theorem 4 lower-bounds by a constant.
        """
        if self.kind == "poisson":
            assert self.rate is not None
            return poisson_pmf(int(math.floor(self.rate)), self.rate)
        assert self.std is not None
        if self.std <= 0.0:
            return 1.0
        return 1.0 / (self.std * math.sqrt(2.0 * math.pi))


def rhd_poisson_rate(n: float, cells: float) -> float:
    """The RHD Poisson rate ``lambda = lim E[mu(n, C)] ~ C e^{-n/C}``."""
    if cells <= 0:
        raise AnalysisError(f"number of cells must be positive, got {cells}")
    return asymptotic_empty_cells_mean(n, cells)


def limit_law(
    n: int,
    cells: int,
    domain: Optional[OccupancyDomain] = None,
    use_exact_moments: bool = True,
) -> LimitLaw:
    """Return the Theorem 2 limit law for the pair ``(n, C)``.

    Args:
        n: number of balls.
        cells: number of cells.
        domain: force a particular domain; by default it is classified with
            :func:`repro.occupancy.domains.classify_domain`.
        use_exact_moments: when ``True`` (default) the normal laws use the
            exact finite-size mean and variance, which is the better
            approximation away from the limit; when ``False`` the Theorem 1
            asymptotics are used, matching the paper's manipulations.
    """
    if domain is None:
        domain = classify_domain(n, cells)

    if use_exact_moments:
        mean = empty_cells_mean(n, cells)
        variance = empty_cells_variance(n, cells)
    else:
        mean = asymptotic_empty_cells_mean(n, cells)
        variance = asymptotic_empty_cells_variance(n, cells)

    if domain == OccupancyDomain.RIGHT_HAND:
        return LimitLaw(domain=domain, kind="poisson", mean=mean, rate=max(mean, 0.0))
    if domain == OccupancyDomain.LEFT_HAND:
        rate = max(variance, 0.0)
        return LimitLaw(
            domain=domain,
            kind="poisson",
            mean=rate,
            rate=rate,
            recentered=True,
        )
    return LimitLaw(
        domain=domain,
        kind="normal",
        mean=mean,
        std=math.sqrt(max(variance, 0.0)),
    )
