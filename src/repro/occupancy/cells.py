"""Cell occupancy of 1-D placements and the ``{10*1}`` gap event (Lemma 1).

Section 3 divides the line ``[0, l]`` into ``C = l / r`` cells of length
``r`` and encodes a placement as a bit string ``B = b_0 ... b_{C-1}`` where
``b_i = 1`` iff cell ``i`` contains at least one node.  Lemma 1: if ``B``
contains a substring of the form ``1 0+ 1`` (an empty gap separating two
occupied cells) then the communication graph is disconnected, because no
node in the cell left of the gap can reach any node right of it.

This module provides the encoding and the gap detector, which together give
a cheap *sufficient* test for disconnection used by the theory benchmarks
and by property-based tests (gap present ⇒ graph disconnected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.exceptions import AnalysisError
from repro.types import Positions, as_positions


@dataclass(frozen=True)
class CellOccupancy:
    """Occupancy of the ``C`` cells induced by a 1-D placement.

    Attributes:
        counts: number of nodes in each cell, indexed left to right.
        cell_length: length ``r`` of each cell.
        line_length: total length ``l`` of the line.
    """

    counts: tuple
    cell_length: float
    line_length: float

    @property
    def cell_count(self) -> int:
        """Number of cells ``C``."""
        return len(self.counts)

    @property
    def empty_cells(self) -> int:
        """The realised value of ``mu(n, C)``."""
        return sum(1 for count in self.counts if count == 0)

    @property
    def bitstring(self) -> str:
        """The string ``B`` of Lemma 1 (``'1'`` = occupied, ``'0'`` = empty)."""
        return "".join("1" if count > 0 else "0" for count in self.counts)

    @property
    def has_gap(self) -> bool:
        """``True`` if ``B`` contains a ``{10*1}`` substring."""
        return has_gap_pattern(self.bitstring)


def cell_counts(positions_1d: Sequence[float], line_length: float, cell_length: float) -> List[int]:
    """Number of nodes falling in each cell of length ``cell_length``.

    The line is divided into ``C = floor(line_length / cell_length)`` cells;
    if the division is not exact the final, shorter remainder is merged into
    the last cell, matching the convention that a node at position ``l``
    belongs to the last cell.
    """
    if cell_length <= 0:
        raise AnalysisError(f"cell_length must be positive, got {cell_length}")
    if line_length <= 0:
        raise AnalysisError(f"line_length must be positive, got {line_length}")
    if cell_length > line_length:
        raise AnalysisError(
            "cell_length exceeds line_length; the subdivision needs at least one cell"
        )
    cells = int(line_length // cell_length)
    counts = [0] * cells
    for position in positions_1d:
        if position < 0 or position > line_length:
            raise AnalysisError(
                f"position {position} outside the line [0, {line_length}]"
            )
        index = int(position // cell_length)
        if index >= cells:
            index = cells - 1
        counts[index] += 1
    return counts


def cell_occupancy_from_positions(
    positions: Positions, line_length: float, cell_length: float
) -> CellOccupancy:
    """Build a :class:`CellOccupancy` from a 1-D placement.

    Accepts either a flat sequence of coordinates or an ``(n, 1)`` array.
    """
    points = as_positions(positions)
    if points.shape[1] != 1:
        raise AnalysisError(
            f"cell occupancy is defined for 1-D placements, got dimension {points.shape[1]}"
        )
    counts = cell_counts(points[:, 0], line_length, cell_length)
    return CellOccupancy(
        counts=tuple(counts), cell_length=cell_length, line_length=line_length
    )


def occupancy_bitstring(counts: Sequence[int]) -> str:
    """Convert per-cell node counts into the bit string ``B`` of Lemma 1."""
    return "".join("1" if count > 0 else "0" for count in counts)


def empty_cell_count(counts: Sequence[int]) -> int:
    """The realised value of ``mu(n, C)`` for the given per-cell counts."""
    return sum(1 for count in counts if count == 0)


def has_gap_pattern(bitstring: str) -> bool:
    """``True`` if ``bitstring`` contains a substring of the form ``1 0+ 1``.

    This is the sufficient condition of Lemma 1 for the communication graph
    to be disconnected.  Leading and trailing zeros do **not** count: a
    placement whose occupied cells are consecutive yields no gap even if the
    ends of the line are empty.
    """
    if not all(ch in "01" for ch in bitstring):
        raise AnalysisError("bitstring must contain only '0' and '1' characters")
    first_one = bitstring.find("1")
    if first_one == -1:
        return False
    last_one = bitstring.rfind("1")
    interior = bitstring[first_one:last_one + 1]
    return "0" in interior


def gap_widths(bitstring: str) -> List[int]:
    """Widths of the interior runs of zeros (each run is one ``{10*1}`` gap)."""
    if not all(ch in "01" for ch in bitstring):
        raise AnalysisError("bitstring must contain only '0' and '1' characters")
    first_one = bitstring.find("1")
    if first_one == -1:
        return []
    last_one = bitstring.rfind("1")
    interior = bitstring[first_one:last_one + 1]
    widths: List[int] = []
    run = 0
    for ch in interior:
        if ch == "0":
            run += 1
        else:
            if run:
                widths.append(run)
            run = 0
    return widths


def simulate_empty_cells(
    n: int,
    cells: int,
    iterations: int,
    rng: np.random.Generator,
) -> List[int]:
    """Monte-Carlo samples of ``mu(n, C)`` from the uniform allocation model.

    Used by tests and the occupancy benchmark to validate the exact and
    asymptotic formulas.
    """
    if iterations <= 0:
        raise AnalysisError(f"iterations must be positive, got {iterations}")
    if cells <= 0:
        raise AnalysisError(f"number of cells must be positive, got {cells}")
    samples: List[int] = []
    for _ in range(iterations):
        assignment = rng.integers(0, cells, size=n)
        occupied = np.unique(assignment).size if n > 0 else 0
        samples.append(cells - occupied)
    return samples
