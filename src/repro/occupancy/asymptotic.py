"""Asymptotic occupancy formulas (Theorem 1 of the paper).

With ``alpha = n / C``, Theorem 1 states

* ``E[mu(n, C)] <= C e^{-alpha}`` for every ``n`` and ``C``;
* ``E[mu(n, C)]  = C e^{-alpha} - alpha e^{-alpha} + O((1 + alpha^2) e^{-alpha} / C)``
  as ``n, C -> infinity`` with ``alpha = o(C)``;
* ``Var[mu(n, C)] = C e^{-alpha} (1 - (1 + alpha) e^{-alpha}) + O(...)``.

These leading-order expressions are what the proof of Theorem 4 manipulates
when choosing ``k = E[mu]`` and evaluating ``P(mu = k)`` under the RHID
normal limit law.
"""

from __future__ import annotations

import math

from repro.exceptions import AnalysisError


def _validate(n: float, cells: float) -> float:
    if n < 0:
        raise AnalysisError(f"number of balls must be non-negative, got {n}")
    if cells <= 0:
        raise AnalysisError(f"number of cells must be positive, got {cells}")
    return n / cells


def empty_cells_mean_upper_bound(n: float, cells: float) -> float:
    """The universal bound ``E[mu(n, C)] <= C e^{-n/C}`` of Theorem 1."""
    alpha = _validate(n, cells)
    return cells * math.exp(-alpha)


def asymptotic_empty_cells_mean(n: float, cells: float) -> float:
    """Leading-order asymptotic of ``E[mu(n, C)]``:
    ``C e^{-alpha} - alpha e^{-alpha}``."""
    alpha = _validate(n, cells)
    return (cells - alpha) * math.exp(-alpha)


def asymptotic_empty_cells_variance(n: float, cells: float) -> float:
    """Leading-order asymptotic of ``Var[mu(n, C)]``:
    ``C e^{-alpha} (1 - (1 + alpha) e^{-alpha})``.

    The value is clamped at zero; for very small ``alpha`` the leading term
    can dip below zero before the correction terms kick in.
    """
    alpha = _validate(n, cells)
    value = cells * math.exp(-alpha) * (1.0 - (1.0 + alpha) * math.exp(-alpha))
    return max(value, 0.0)


def expected_empty_cells_for_range(n: int, length: float, radius: float) -> float:
    """Expected empty cells when ``[0, length]`` is cut into cells of ``radius``.

    Convenience wrapper used by the 1-D analysis: ``C = length / radius`` and
    ``alpha = n / C = n * radius / length``.  ``C`` is treated as a real
    number (the paper does the same in its asymptotic manipulations).
    """
    if radius <= 0:
        raise AnalysisError(f"radius must be positive, got {radius}")
    if length <= 0:
        raise AnalysisError(f"length must be positive, got {length}")
    cells = length / radius
    return asymptotic_empty_cells_mean(n, cells)
