"""Distance computations.

The communication graph has an edge between two nodes whenever their
Euclidean distance is at most the transmitting range ``r``.  The routines
here compute those distances efficiently for whole placements.  A toroidal
variant is provided because wrap-around boundaries are a common modelling
alternative (it removes border effects); it is used by some of the extended
experiments and by tests.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.types import Positions, as_positions


def squared_distance_matrix(positions: Positions) -> np.ndarray:
    """All-pairs squared Euclidean distances as an ``(n, n)`` matrix.

    Working with squared distances avoids ``sqrt`` in the hot path; callers
    compare against ``r**2``.
    """
    points = as_positions(positions)
    # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b ; computed with BLAS.
    norms = np.einsum("ij,ij->i", points, points)
    squared = norms[:, None] + norms[None, :] - 2.0 * points @ points.T
    # Numerical noise can push tiny negatives; clamp them.
    np.maximum(squared, 0.0, out=squared)
    return squared


def pairwise_distances(positions: Positions) -> np.ndarray:
    """All-pairs Euclidean distances as an ``(n, n)`` matrix."""
    return np.sqrt(squared_distance_matrix(positions))


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two individual points."""
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    if pa.shape != pb.shape:
        raise ValueError(
            f"points must have the same shape, got {pa.shape} and {pb.shape}"
        )
    return float(math.sqrt(float(np.sum((pa - pb) ** 2))))


def toroidal_distance(
    a: Sequence[float], b: Sequence[float], side: float
) -> float:
    """Distance between two points on the torus of side ``side``.

    Each coordinate difference is reduced modulo ``side`` and the shorter of
    the two ways around is used.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    if pa.shape != pb.shape:
        raise ValueError(
            f"points must have the same shape, got {pa.shape} and {pb.shape}"
        )
    delta = np.abs(pa - pb)
    delta = np.minimum(delta, side - delta)
    return float(math.sqrt(float(np.sum(delta**2))))


def toroidal_squared_distance_matrix(positions: Positions, side: float) -> np.ndarray:
    """All-pairs squared toroidal distances on a torus of side ``side``.

    The squared form is what range comparisons use (adjacency is decided by
    ``distance**2 <= r**2``), so exact threshold extraction — e.g.
    :func:`repro.connectivity.critical_range.critical_range_toroidal` —
    works on this matrix and only rounds to a radius at the very end.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    points = as_positions(positions)
    deltas = np.abs(points[:, None, :] - points[None, :, :])
    deltas = np.minimum(deltas, side - deltas)
    return np.sum(deltas**2, axis=-1)


def toroidal_distance_matrix(positions: Positions, side: float) -> np.ndarray:
    """All-pairs toroidal distances for a placement on a torus of side ``side``."""
    return np.sqrt(toroidal_squared_distance_matrix(positions, side))


def nearest_neighbor_distances(positions: Positions) -> np.ndarray:
    """Distance from each node to its nearest other node.

    For a single node the result is an array containing ``inf`` (there is
    no neighbour to measure against).
    """
    points = as_positions(positions)
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=float)
    if n == 1:
        return np.array([math.inf])
    distances = pairwise_distances(points)
    np.fill_diagonal(distances, math.inf)
    return distances.min(axis=1)
