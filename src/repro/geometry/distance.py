"""Distance computations.

The communication graph has an edge between two nodes whenever their
Euclidean distance is at most the transmitting range ``r``.  The routines
here compute those distances efficiently for whole placements.  A toroidal
variant is provided because wrap-around boundaries are a common modelling
alternative (it removes border effects); it is used by some of the extended
experiments and by tests.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.types import Positions, as_positions


def squared_distance_matrix(positions: Positions, *, xp=None) -> np.ndarray:
    """All-pairs squared Euclidean distances as an ``(n, n)`` matrix.

    Working with squared distances avoids ``sqrt`` in the hot path; callers
    compare against ``r**2``.

    The value of entry ``(i, j)`` is defined as the coordinate-wise
    accumulation ``sum_k (a_k - b_k)^2`` in ascending ``k`` — the same
    rounding :func:`squared_distance` produces for a single pair.  One
    canonical formula matters: thresholds such as the critical range are
    exact to the last ulp (:func:`repro.connectivity.critical_range.
    range_reaching`), so an algebraically equivalent rearrangement (e.g.
    the BLAS-friendly ``||a||^2 + ||b||^2 - 2 a.b``) that rounds one ulp
    differently can make a graph builder disagree with the MST bottleneck
    at exactly the critical range.

    ``xp`` selects the array namespace (:mod:`repro.backend`); the default
    is host NumPy with full input validation.  Under another namespace the
    positions must already live on that backend.
    """
    if xp is None or xp is np:
        xp = np
        points = as_positions(positions)
    else:
        points = xp.asarray(positions, dtype=xp.float64)
    count, dimension = points.shape
    if dimension == 0:
        return xp.zeros((count, count), dtype=xp.float64)
    # One (n, n) pass per coordinate — same ascending-k rounding as
    # _accumulate_squared without materialising an (n, n, d) temporary on
    # the per-frame hot path.
    column = points[:, 0]
    delta = column[:, None] - column[None, :]
    squared = delta * delta
    for axis in range(1, dimension):
        column = points[:, axis]
        delta = column[:, None] - column[None, :]
        # In-place operators are part of the array-API standard, so the
        # accumulation stays allocation-free on every backend.
        squared += delta * delta
    return squared


def _accumulate_squared(deltas: np.ndarray) -> np.ndarray:
    """``sum_k deltas[..., k]^2`` accumulated in ascending coordinate order.

    Plain ufunc passes (one multiply and one add per coordinate) so every
    caller — matrix, batch or single pair — rounds identically.
    """
    dimension = deltas.shape[-1]
    if dimension == 0:
        return np.zeros(deltas.shape[:-1])
    squared = deltas[..., 0] * deltas[..., 0]
    for axis in range(1, dimension):
        squared += deltas[..., axis] * deltas[..., axis]
    return squared


def squared_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Squared Euclidean distance of one pair, matching
    :func:`squared_distance_matrix` bit for bit."""
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    return float(_accumulate_squared(pa - pb))


def pairwise_distances(positions: Positions) -> np.ndarray:
    """All-pairs Euclidean distances as an ``(n, n)`` matrix."""
    return np.sqrt(squared_distance_matrix(positions))


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Euclidean distance between two individual points."""
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    if pa.shape != pb.shape:
        raise ValueError(
            f"points must have the same shape, got {pa.shape} and {pb.shape}"
        )
    return float(math.sqrt(float(np.sum((pa - pb) ** 2))))


def toroidal_distance(
    a: Sequence[float], b: Sequence[float], side: float
) -> float:
    """Distance between two points on the torus of side ``side``.

    Each coordinate difference is reduced modulo ``side`` and the shorter of
    the two ways around is used.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    pa = np.asarray(a, dtype=float)
    pb = np.asarray(b, dtype=float)
    if pa.shape != pb.shape:
        raise ValueError(
            f"points must have the same shape, got {pa.shape} and {pb.shape}"
        )
    delta = np.abs(pa - pb)
    delta = np.minimum(delta, side - delta)
    return float(math.sqrt(float(np.sum(delta**2))))


def toroidal_squared_distance_matrix(positions: Positions, side: float) -> np.ndarray:
    """All-pairs squared toroidal distances on a torus of side ``side``.

    The squared form is what range comparisons use (adjacency is decided by
    ``distance**2 <= r**2``), so exact threshold extraction — e.g.
    :func:`repro.connectivity.critical_range.critical_range_toroidal` —
    works on this matrix and only rounds to a radius at the very end.
    """
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    points = as_positions(positions)
    deltas = np.abs(points[:, None, :] - points[None, :, :])
    deltas = np.minimum(deltas, side - deltas)
    return np.sum(deltas**2, axis=-1)


def toroidal_distance_matrix(positions: Positions, side: float) -> np.ndarray:
    """All-pairs toroidal distances for a placement on a torus of side ``side``."""
    return np.sqrt(toroidal_squared_distance_matrix(positions, side))


def nearest_neighbor_distances(positions: Positions) -> np.ndarray:
    """Distance from each node to its nearest other node.

    For a single node the result is an array containing ``inf`` (there is
    no neighbour to measure against).
    """
    points = as_positions(positions)
    n = points.shape[0]
    if n == 0:
        return np.empty(0, dtype=float)
    if n == 1:
        return np.array([math.inf])
    distances = pairwise_distances(points)
    np.fill_diagonal(distances, math.inf)
    return distances.min(axis=1)
