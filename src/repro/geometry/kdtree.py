"""A small, from-scratch KD-tree.

The topology-control comparators (:mod:`repro.topology`) need k-nearest
neighbour queries; this balanced KD-tree provides them without pulling in
:mod:`scipy`.  It supports the two query types the library uses:

* :meth:`KDTree.query_radius` — all points within a Euclidean radius.
* :meth:`KDTree.query_knn` — the ``k`` nearest points.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.types import Positions, as_positions


@dataclass
class _Node:
    """Internal tree node splitting on ``axis`` at the point ``index``."""

    index: int
    axis: int
    left: Optional["_Node"]
    right: Optional["_Node"]


class KDTree:
    """Balanced KD-tree over a fixed set of points.

    Args:
        positions: ``(n, d)`` array; the tree keeps a reference, it does not
            copy, so callers must not mutate the array afterwards.
    """

    def __init__(self, positions: Positions) -> None:
        self._positions = as_positions(positions)
        self._dimension = self._positions.shape[1]
        indices = list(range(self._positions.shape[0]))
        self._root = self._build(indices, depth=0)

    # ------------------------------------------------------------------ #
    def _build(self, indices: List[int], depth: int) -> Optional[_Node]:
        if not indices:
            return None
        axis = depth % self._dimension
        indices.sort(key=lambda i: self._positions[i, axis])
        median = len(indices) // 2
        return _Node(
            index=indices[median],
            axis=axis,
            left=self._build(indices[:median], depth + 1),
            right=self._build(indices[median + 1:], depth + 1),
        )

    def __len__(self) -> int:
        return self._positions.shape[0]

    # ------------------------------------------------------------------ #
    def query_radius(self, point: Sequence[float], radius: float) -> List[int]:
        """Indices of points within ``radius`` of ``point`` (inclusive)."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        target = np.asarray(point, dtype=float)
        found: List[int] = []
        self._radius_search(self._root, target, radius, found)
        return found

    def _radius_search(
        self,
        node: Optional[_Node],
        target: np.ndarray,
        radius: float,
        found: List[int],
    ) -> None:
        if node is None:
            return
        position = self._positions[node.index]
        if _distance(position, target) <= radius:
            found.append(node.index)
        delta = target[node.axis] - position[node.axis]
        near, far = (node.left, node.right) if delta < 0 else (node.right, node.left)
        self._radius_search(near, target, radius, found)
        if abs(delta) <= radius:
            self._radius_search(far, target, radius, found)

    # ------------------------------------------------------------------ #
    def query_knn(
        self, point: Sequence[float], k: int, exclude: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """The ``k`` nearest points to ``point`` as ``(index, distance)`` pairs.

        Args:
            point: query location.
            k: number of neighbours requested; if fewer points exist the
                shorter list is returned.
            exclude: optional index to skip (used to exclude the query node
                itself when the query point is one of the indexed points).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        target = np.asarray(point, dtype=float)
        # Max-heap of (-distance, index) capped at size k.
        heap: List[Tuple[float, int]] = []
        self._knn_search(self._root, target, k, exclude, heap)
        ordered = sorted(((-neg, idx) for neg, idx in heap))
        return [(idx, dist) for dist, idx in ordered]

    def _knn_search(
        self,
        node: Optional[_Node],
        target: np.ndarray,
        k: int,
        exclude: Optional[int],
        heap: List[Tuple[float, int]],
    ) -> None:
        if node is None:
            return
        position = self._positions[node.index]
        if node.index != exclude:
            distance = _distance(position, target)
            if len(heap) < k:
                heapq.heappush(heap, (-distance, node.index))
            elif distance < -heap[0][0]:
                heapq.heapreplace(heap, (-distance, node.index))
        delta = target[node.axis] - position[node.axis]
        near, far = (node.left, node.right) if delta < 0 else (node.right, node.left)
        self._knn_search(near, target, k, exclude, heap)
        worst = -heap[0][0] if heap else math.inf
        if len(heap) < k or abs(delta) <= worst:
            self._knn_search(far, target, k, exclude, heap)


def _distance(a: np.ndarray, b: np.ndarray) -> float:
    delta = a - b
    return float(math.sqrt(float(np.dot(delta, delta))))
