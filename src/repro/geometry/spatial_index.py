"""Uniform-grid spatial index for range queries.

Building the communication graph requires, for every node, the set of nodes
within distance ``r``.  A brute-force all-pairs scan costs ``O(n^2)``; the
grid index buckets nodes into cells of side ``r`` so each node only needs to
inspect its own and the neighbouring cells, which is the standard
acceleration used by ad hoc network simulators.  The graph builder falls
back to brute force for very small ``n`` where the bucketing overhead is
not worth it (see :mod:`repro.graph.builder`).
"""

from __future__ import annotations

import itertools
import math
from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.geometry.distance import _accumulate_squared, squared_distance
from repro.types import Positions, as_positions


class GridIndex:
    """Buckets points into axis-aligned cells of a fixed size.

    Args:
        positions: ``(n, d)`` array of points.
        cell_size: side of each grid cell; usually the query radius.
    """

    def __init__(self, positions: Positions, cell_size: float) -> None:
        if cell_size <= 0:
            raise ConfigurationError(f"cell_size must be positive, got {cell_size}")
        self._positions = as_positions(positions)
        self._cell_size = float(cell_size)
        self._dimension = self._positions.shape[1]
        self._cells: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
        if self._positions.shape[0] > 0:
            for index, key in enumerate(
                map(tuple, self._cell_keys(self._positions))
            ):
                self._cells[key].append(index)

    def _cell_keys(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates of ``points``.

        Cell indices are clamped to a safe integer range so that degenerate
        inputs (a cell size many orders of magnitude below the coordinate
        spread) cannot overflow the integer cast; clamped points simply
        share a cell, which only enlarges the candidate sets and never
        loses a true neighbour.
        """
        with np.errstate(over="ignore", invalid="ignore"):
            raw = np.floor(points / self._cell_size)
        limit = float(2**60)
        raw = np.nan_to_num(raw, nan=0.0, posinf=limit, neginf=-limit)
        return np.clip(raw, -limit, limit).astype(np.int64)

    # ------------------------------------------------------------------ #
    @property
    def cell_size(self) -> float:
        """Side length of the grid cells."""
        return self._cell_size

    @property
    def dimension(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dimension

    def __len__(self) -> int:
        return self._positions.shape[0]

    def cell_of(self, point: Sequence[float]) -> Tuple[int, ...]:
        """Grid cell coordinates that contain ``point``."""
        coords = np.asarray(point, dtype=float).reshape(1, -1)
        return tuple(int(c) for c in self._cell_keys(coords)[0])

    # ------------------------------------------------------------------ #
    def candidates_near(self, point: Sequence[float], radius: float) -> List[int]:
        """Indices of points whose cell is within ``radius`` of ``point``.

        This is a superset of the true neighbours; callers must still filter
        by exact distance.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        coords = np.asarray(point, dtype=float)
        reach = int(math.ceil(radius / self._cell_size))
        center = self.cell_of(coords)
        found: List[int] = []
        offsets = itertools.product(range(-reach, reach + 1), repeat=self._dimension)
        for offset in offsets:
            key = tuple(center[i] + offset[i] for i in range(self._dimension))
            bucket = self._cells.get(key)
            if bucket:
                found.extend(bucket)
        return found

    def query_radius(self, point: Sequence[float], radius: float) -> List[int]:
        """Indices of points within Euclidean distance ``radius`` of ``point``."""
        candidates = self.candidates_near(point, radius)
        if not candidates:
            return []
        coords = np.asarray(point, dtype=float)
        candidate_positions = self._positions[candidates]
        squared = _accumulate_squared(candidate_positions - coords)
        limit = radius * radius
        return [candidates[i] for i in np.nonzero(squared <= limit)[0]]

    def neighbor_pairs(self, radius: float) -> List[Tuple[int, int]]:
        """All unordered pairs ``(i, j)`` with ``i < j`` within ``radius``.

        This is the routine the graph builder uses; it walks each occupied
        cell and compares its points against the points of the cell itself
        and of the forward half of its neighbourhood so that every pair is
        examined exactly once.
        """
        if radius < 0:
            raise ConfigurationError(f"radius must be non-negative, got {radius}")
        limit = radius * radius
        reach = int(math.ceil(radius / self._cell_size))
        pairs: List[Tuple[int, int]] = []
        positions = self._positions

        # Enumerate neighbour cell offsets once; keep only the "forward"
        # half (lexicographically positive) plus the zero offset, so that
        # each unordered cell pair is visited a single time.
        all_offsets = list(
            itertools.product(range(-reach, reach + 1), repeat=self._dimension)
        )
        forward_offsets = [off for off in all_offsets if off > tuple([0] * self._dimension)]

        for key, members in self._cells.items():
            # Pairs within the same cell.
            for a_pos, a in enumerate(members):
                for b in members[a_pos + 1:]:
                    if _squared(positions[a], positions[b]) <= limit:
                        pairs.append((a, b) if a < b else (b, a))
            # Pairs with forward neighbour cells.
            for offset in forward_offsets:
                neighbor_key = tuple(key[i] + offset[i] for i in range(self._dimension))
                others = self._cells.get(neighbor_key)
                if not others:
                    continue
                for a in members:
                    pa = positions[a]
                    for b in others:
                        if _squared(pa, positions[b]) <= limit:
                            pairs.append((a, b) if a < b else (b, a))
        return pairs

    def occupied_cells(self) -> Iterable[Tuple[int, ...]]:
        """Iterate over the coordinates of non-empty cells."""
        return self._cells.keys()


def _squared(a: np.ndarray, b: np.ndarray) -> float:
    # Accumulated coordinate by coordinate so grid filtering rounds exactly
    # like the dense squared_distance_matrix the brute-force builder and
    # the critical-range MST use (see repro.geometry.distance).
    return squared_distance(a, b)
