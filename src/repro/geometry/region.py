"""The deployment region ``[0, l]^d``.

The paper restricts node positions to the ``d``-dimensional cube of side
``l``.  :class:`Region` encapsulates that cube: it validates parameters,
samples uniform points, clamps or reflects points that mobility pushes past
the boundary, and answers simple geometric questions (diagonal length, area,
containment) that the analysis layer needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.types import Positions, as_positions


@dataclass(frozen=True)
class Region:
    """The cube ``[0, side]^dimension`` in which nodes live.

    Attributes:
        side: length ``l`` of the cube's side; must be positive.
        dimension: ``d``; the paper uses 1 (theory) and 2 (simulations) but
            any positive integer is accepted.
    """

    side: float
    dimension: int = 2

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise ConfigurationError(f"region side must be positive, got {self.side}")
        if self.dimension < 1:
            raise ConfigurationError(
                f"region dimension must be at least 1, got {self.dimension}"
            )

    # ------------------------------------------------------------------ #
    # Basic geometry
    # ------------------------------------------------------------------ #
    @property
    def volume(self) -> float:
        """``side ** dimension`` — length, area or volume of the region."""
        return float(self.side) ** self.dimension

    @property
    def diagonal(self) -> float:
        """Length of the main diagonal, ``l * sqrt(d)``.

        This is the transmitting range that guarantees connectivity for
        *every* placement (the worst case mentioned in Section 2 of the
        paper).
        """
        return self.side * math.sqrt(self.dimension)

    def contains(self, positions: Positions, tolerance: float = 1e-9) -> bool:
        """``True`` if every position lies inside the region.

        A small ``tolerance`` absorbs floating point noise created by
        repeated mobility updates.
        """
        points = self._check_positions(positions)
        return bool(
            np.all(points >= -tolerance) and np.all(points <= self.side + tolerance)
        )

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #
    def sample_uniform(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> Positions:
        """Draw ``count`` points independently and uniformly from the region."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        generator = rng if rng is not None else np.random.default_rng()
        return generator.uniform(0.0, self.side, size=(count, self.dimension))

    def sample_point(self, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw a single uniform point as a 1-D array of length ``dimension``."""
        return self.sample_uniform(1, rng)[0]

    # ------------------------------------------------------------------ #
    # Boundary handling
    # ------------------------------------------------------------------ #
    def clamp(self, positions: Positions) -> Positions:
        """Project positions onto the region (coordinates clipped to [0, l])."""
        points = self._check_positions(positions)
        return np.clip(points, 0.0, self.side)

    def reflect(self, positions: Positions) -> Positions:
        """Reflect positions back into the region (billiard boundary).

        A coordinate that overshoots the boundary by ``delta`` ends up
        ``delta`` inside the region; arbitrarily large overshoots are folded
        by the appropriate number of reflections.
        """
        points = self._check_positions(positions).copy()
        period = 2.0 * self.side
        points = np.mod(points, period)
        overshoot = points > self.side
        points[overshoot] = period - points[overshoot]
        return points

    def wrap(self, positions: Positions) -> Positions:
        """Wrap positions around the boundary (toroidal topology)."""
        points = self._check_positions(positions)
        return np.mod(points, self.side)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _check_positions(self, positions: Positions) -> Positions:
        points = as_positions(positions)
        if points.shape[1] != self.dimension:
            raise DimensionMismatchError(
                f"positions have dimension {points.shape[1]}, "
                f"but the region has dimension {self.dimension}"
            )
        return points

    # Convenience constructors ----------------------------------------- #
    @classmethod
    def line(cls, side: float) -> "Region":
        """The 1-dimensional region ``[0, side]`` used by Section 3."""
        return cls(side=side, dimension=1)

    @classmethod
    def square(cls, side: float) -> "Region":
        """The 2-dimensional region ``[0, side]^2`` used by Section 4."""
        return cls(side=side, dimension=2)
