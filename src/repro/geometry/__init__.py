"""Geometric substrate: deployment regions, distances and spatial indices.

The paper places ``n`` nodes inside the ``d``-dimensional cube ``[0, l]^d``.
This package models that region (:class:`~repro.geometry.region.Region`),
provides the distance computations used to decide which nodes can hear each
other, and offers two neighbour-query accelerators — a uniform grid
(:class:`~repro.geometry.spatial_index.GridIndex`) used by the graph builder
and a from-scratch KD-tree (:class:`~repro.geometry.kdtree.KDTree`) used for
nearest-neighbour style topology control.
"""

from repro.geometry.distance import (
    pairwise_distances,
    squared_distance_matrix,
    toroidal_distance,
    toroidal_distance_matrix,
)
from repro.geometry.kdtree import KDTree
from repro.geometry.region import Region
from repro.geometry.spatial_index import GridIndex

__all__ = [
    "GridIndex",
    "KDTree",
    "Region",
    "pairwise_distances",
    "squared_distance_matrix",
    "toroidal_distance",
    "toroidal_distance_matrix",
]
