"""Monotone connectivity-probability surrogate over campaign rows.

Each stored sweep row pins four points of the connectivity-vs-range
curve at one system size: ``r0`` (the range below which the network was
never connected), ``r10``, ``r90`` and ``r100`` (the range above which
it always was), i.e. the curve passes through ``(r0, 0.0)``,
``(r10, 0.1)``, ``(r90, 0.9)``, ``(r100, 1.0)``.  Connectivity is
monotone non-decreasing in range by construction — a larger range only
adds edges — so the surrogate is a monotone piecewise-linear polyline
through those points, isotonically repaired against Monte Carlo jitter
(a crossed pair of thresholds is clamped, never reordered).

Two query directions solve on the same polyline:

* forward (``range → probability``): straight piecewise-linear
  evaluation, clamped to ``[0, 1]`` outside the knots;
* inverse (``probability → range``): solved on the inverted polyline;
  the four *stored* probabilities short-circuit to the stored range
  floats untouched, so exact grid queries are bit-identical to the
  campaign's own values.

Between grid sides, :func:`blend_rows` interpolates the thresholds
linearly in the side before fitting — thresholds, not probabilities,
because each threshold family is the physically meaningful monotone
quantity in the system size (Santi & Blough's Figures 2–3 plot exactly
these curves growing with ``l``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

__all__ = ["CURVE_POINTS", "ConnectivityCurve", "blend_rows", "fit_row"]

#: The (row column, connectivity probability) knots every stored row pins.
CURVE_POINTS: Tuple[Tuple[str, float], ...] = (
    ("r0", 0.0),
    ("r10", 0.1),
    ("r90", 0.9),
    ("r100", 1.0),
)


@dataclass(frozen=True)
class ConnectivityCurve:
    """Monotone piecewise-linear connectivity curve at one system size.

    ``ranges`` and ``probabilities`` are knot-aligned and both
    non-decreasing; ``raw_ranges`` keeps the stored floats before the
    isotonic repair so exact-probability queries return them untouched.
    """

    ranges: Tuple[float, ...]
    probabilities: Tuple[float, ...]
    raw_ranges: Tuple[float, ...]

    @classmethod
    def from_knots(
        cls, knots: Sequence[Tuple[float, float]]
    ) -> "ConnectivityCurve":
        """Fit from ``(range, probability)`` knots sorted by probability."""
        raw = tuple(float(r) for r, _ in knots)
        repaired: list = []
        for value in raw:
            repaired.append(
                value if not repaired else max(value, repaired[-1])
            )
        return cls(
            ranges=tuple(repaired),
            probabilities=tuple(float(p) for _, p in knots),
            raw_ranges=raw,
        )

    # ------------------------------------------------------------------ #
    def probability_at(self, range_: float) -> float:
        """Connectivity probability bought by ``range_`` (forward query)."""
        r = float(range_)
        if r <= self.ranges[0]:
            return self.probabilities[0] if r == self.ranges[0] else 0.0
        if r >= self.ranges[-1]:
            return self.probabilities[-1] if r == self.ranges[-1] else 1.0
        index = bisect_left(self.ranges, r)
        low_r, high_r = self.ranges[index - 1], self.ranges[index]
        low_p, high_p = self.probabilities[index - 1], self.probabilities[index]
        if high_r == low_r:
            return high_p
        fraction = (r - low_r) / (high_r - low_r)
        return low_p + fraction * (high_p - low_p)

    def range_for(self, probability: float) -> float:
        """Smallest range achieving ``probability`` (inverse query).

        A probability equal to a stored knot returns the stored float
        bit-identically (the raw value, not the isotonic repair).
        Probabilities strictly between knots interpolate linearly;
        probabilities in a flat segment resolve to its left edge (the
        *smallest* sufficient range).
        """
        p = float(probability)
        for index, knot in enumerate(self.probabilities):
            if p == knot:
                return self.raw_ranges[index]
        if p < self.probabilities[0]:
            return self.ranges[0] * (p / self.probabilities[0]) if self.probabilities[0] > 0 else self.ranges[0]
        if p > self.probabilities[-1]:
            return self.ranges[-1]
        index = bisect_left(self.probabilities, p)
        low_p, high_p = self.probabilities[index - 1], self.probabilities[index]
        low_r, high_r = self.ranges[index - 1], self.ranges[index]
        if high_p == low_p:
            return low_r
        fraction = (p - low_p) / (high_p - low_p)
        return low_r + fraction * (high_r - low_r)


def fit_row(row: Mapping[str, float]) -> ConnectivityCurve:
    """Fit the connectivity curve of one stored sweep row."""
    try:
        knots = [(float(row[column]), p) for column, p in CURVE_POINTS]
    except KeyError as error:
        raise ValueError(
            f"row lacks threshold column {error} — not a system-size row"
        ) from None
    return ConnectivityCurve.from_knots(knots)


def blend_rows(
    low_side: float,
    low_row: Mapping[str, float],
    high_side: float,
    high_row: Mapping[str, float],
    side: float,
) -> Dict[str, float]:
    """Threshold row at ``side``, linearly blended between two grid rows.

    ``side`` may fall outside ``[low_side, high_side]`` — the same line
    extrapolates, which is exactly the best-effort out-of-grid answer
    (always flagged ``refine=true`` upstream).  Extrapolated thresholds
    are floored at 0 (a range cannot be negative).
    """
    if high_side == low_side:
        return {column: float(low_row[column]) for column, _ in CURVE_POINTS}
    fraction = (float(side) - float(low_side)) / (
        float(high_side) - float(low_side)
    )
    blended: Dict[str, float] = {}
    for column, _ in CURVE_POINTS:
        low = float(low_row[column])
        high = float(high_row[column])
        blended[column] = max(0.0, low + fraction * (high - low))
    return blended
