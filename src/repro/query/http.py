"""Stdlib-only asyncio HTTP front end for the query service.

A deliberately small HTTP/1.1 server over ``asyncio.start_server`` —
no framework, matching :mod:`repro.distributed`'s zero-dependency
convention.  Three endpoints:

* ``GET /health`` — liveness probe, ``{"status": "ok"}``;
* ``GET /ask?model=waypoint&side=1024&probability=0.9`` (or ``POST
  /ask`` with the same fields as a JSON body) — one query, answered as
  the JSON form of :class:`~repro.query.service.Answer`;
* ``GET /stats`` — hot-cache occupancy, pending refinements, queue
  state.

Connections are one-shot (``Connection: close``): the serving cost is
dominated by the answer path, and one-shot connections keep the reader
loop trivial.  Per-endpoint latency lands in ``query.http.<endpoint>_
seconds`` histograms next to the service's own ``query.*`` metrics.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.telemetry import metrics
from repro.query.normalize import Query, QueryError
from repro.query.service import QueryService

__all__ = ["QueryHTTPServer", "parse_query_document", "serve_queries"]

#: Bytes one request may total (line + headers + body); queries are tiny.
_MAX_REQUEST_BYTES = 64 * 1024

_NUMBER_FIELDS = ("side", "probability", "range")


def parse_query_document(document: Dict[str, Any]) -> Query:
    """Build a :class:`Query` from loosely-typed request fields.

    Accepts the JSON body of ``POST /ask`` and the (string-valued) query
    parameters of ``GET /ask`` alike; unknown fields are rejected so a
    typo (``probabilty=``) surfaces as a 400, not a silent default.
    """
    known = {"model", "side", "nodes", "probability", "range"}
    unknown = sorted(set(document) - known)
    if unknown:
        raise QueryError(f"unknown query field(s): {', '.join(unknown)}")
    fields: Dict[str, Any] = {}
    if "model" in document:
        fields["model"] = str(document["model"])
    try:
        for name in _NUMBER_FIELDS:
            if document.get(name) is not None:
                fields[name] = float(document[name])
        if document.get("nodes") is not None:
            fields["nodes"] = int(document["nodes"])
    except (TypeError, ValueError) as error:
        raise QueryError(f"malformed query field: {error}") from None
    return Query(**fields)


class QueryHTTPServer:
    """One service bound to one listening socket."""

    def __init__(self, service: QueryService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def url(self) -> str:
        if self._server is None:
            raise RuntimeError("server is not listening yet")
        host, port = self._server.sockets[0].getsockname()[:2]
        return f"http://{host}:{port}"

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> str:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, host=host, port=port
        )
        return self.url

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, payload = await self._respond(reader)
        except Exception as error:  # a handler bug must not kill the server
            status, payload = 500, {"error": f"internal error: {error!r}"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        try:
            writer.write(head.encode("ascii") + body)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return 400, {"error": "unreadable request"}
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, {"error": "malformed request line"}
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_REQUEST_BYTES:
                return 400, {"error": "request too large"}
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length") or 0)
        if length:
            if length > _MAX_REQUEST_BYTES:
                return 400, {"error": "request too large"}
            body = await reader.readexactly(length)
        split = urlsplit(target)
        route = split.path.rstrip("/") or "/"
        started = time.perf_counter()
        try:
            if route == "/health":
                return 200, {"status": "ok"}
            if route == "/stats":
                return 200, self.service.stats()
            if route == "/ask":
                if method == "POST":
                    try:
                        document = json.loads(body.decode("utf-8") or "{}")
                    except ValueError:
                        return 400, {"error": "body is not valid JSON"}
                    if not isinstance(document, dict):
                        return 400, {"error": "body must be a JSON object"}
                elif method == "GET":
                    document = dict(parse_qsl(split.query))
                else:
                    return 405, {"error": f"{method} not allowed on /ask"}
                try:
                    query = parse_query_document(document)
                    answer = await self.service.ask(query)
                except QueryError as error:
                    metrics.counter("query.http.bad_requests").add()
                    return 400, {"error": str(error)}
                return 200, answer.to_json()
            return 404, {"error": f"no route {route}"}
        finally:
            endpoint = route.strip("/").replace("/", "_") or "root"
            metrics.histogram(f"query.http.{endpoint}_seconds").observe(
                time.perf_counter() - started
            )


async def serve_queries(
    service: QueryService, host: str = "127.0.0.1", port: int = 0
) -> QueryHTTPServer:
    """Start a listening :class:`QueryHTTPServer`; caller owns shutdown."""
    server = QueryHTTPServer(service)
    await server.start(host=host, port=port)
    return server
