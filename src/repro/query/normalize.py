"""Query → grid-key normalization.

A query arrives in user terms — a mobility model, a region side (or a
node count, which the paper's ``n = sqrt(l)`` scaling converts to a
side), and either a target connectivity probability or a candidate
transmitting range.  The campaign grid is addressed in store terms —
content-address keys derived from the canonical scenario payload plus
the swept parameter value.  This module is the bridge, and its one hard
invariant is *key identity*: every key it emits is produced by the very
call chain the campaign runner uses
(:func:`repro.campaigns.runner.scenario_payload` →
:meth:`repro.store.checkpoints.StoreSweepCheckpoint.key_for`), so a
query key is bitwise-equal to the key the runner computes for the same
cell.  Execution knobs (worker counts, sharding, transport) are
stripped by ``scale_payload``'s normalization exactly as they are for
the runner, so they can never leak into a query key either.

Out-of-grid queries are *flagged*, never silently clamped: the resolver
still names the nearest edge cells (so the service can extrapolate a
best-effort answer), but ``out_of_grid=True`` travels with the answer
and drives the ``refine=true`` cache-fill path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.campaigns.runner import scenario_payload, scenario_sweep_key
from repro.campaigns.spec import CampaignSpec, Scenario
from repro.exceptions import ReproError
from repro.experiments.registry import Experiment, get_experiment
from repro.store.checkpoints import StoreSweepCheckpoint

__all__ = [
    "GridIndex",
    "Query",
    "QueryError",
    "ResolvedQuery",
    "resolve",
]


class QueryError(ReproError):
    """The query is malformed or addresses no cell of the campaign grid."""


@dataclass(frozen=True)
class Query:
    """One normalized request against the connectivity surface.

    Exactly one of ``side`` / ``nodes`` locates the system size (a node
    count converts through the paper's ``n = sqrt(l)`` scaling, i.e.
    ``side = n**2``), and exactly one of ``probability`` / ``range``
    picks the direction: a probability asks for the critical range that
    achieves it (inverse query), a range asks for the connectivity
    probability it buys (forward query).
    """

    model: str = "waypoint"
    side: Optional[float] = None
    nodes: Optional[int] = None
    probability: Optional[float] = None
    range: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.side is None) == (self.nodes is None):
            raise QueryError("give exactly one of side= or nodes=")
        if (self.probability is None) == (self.range is None):
            raise QueryError("give exactly one of probability= or range=")
        if self.nodes is not None and self.nodes < 2:
            raise QueryError(f"nodes must be >= 2, got {self.nodes}")
        if self.side is not None and not self.side > 0:
            raise QueryError(f"side must be positive, got {self.side}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise QueryError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.range is not None and self.range < 0:
            raise QueryError(f"range must be >= 0, got {self.range}")

    @property
    def resolved_side(self) -> float:
        """The queried system size as a region side length."""
        if self.side is not None:
            return float(self.side)
        return float(self.nodes) ** 2

    @property
    def inverse(self) -> bool:
        """``True`` for probability → range queries."""
        return self.probability is not None


@dataclass(frozen=True)
class ResolvedQuery:
    """A query pinned to grid cells and their canonical store keys.

    ``bracket`` holds the one or two grid sides whose rows answer the
    query — one when the query hits a grid point exactly (``exact`` is
    set) or falls outside the grid (nearest edge value, for
    extrapolation), two when it falls between grid points.  ``row_keys``
    are the content addresses of those rows, index-aligned with
    ``bracket``, produced by the runner's own key chain.
    """

    query: Query
    scenario: Scenario
    side: float
    exact: Optional[float]
    bracket: Tuple[float, ...]
    row_keys: Tuple[str, ...]
    sweep_key: str
    out_of_grid: bool


@dataclass
class GridIndex:
    """The queryable view of one campaign spec's scenario grid.

    Scenarios are indexed by mobility model (read from the scenario's
    canonical payload, so only experiments whose payload carries a
    ``model`` field — the system-size sweeps behind Figures 2–6 — are
    servable).  When several scenarios share a model (a matrix campaign
    sweeping seeds), grid order wins: the first scenario is the serving
    cell, matching every other first-in-grid-order convention.
    """

    spec: CampaignSpec
    _by_model: Dict[str, Scenario] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for scenario in self.spec.scenarios():
            experiment = get_experiment(scenario.experiment_id)
            payload = scenario_payload(experiment, scenario.scale)
            model = payload.get("model")
            if (
                payload.get("computation") == "system-size-sweep"
                and isinstance(model, str)
                and model not in self._by_model
            ):
                self._by_model[model] = scenario

    @property
    def models(self) -> List[str]:
        return sorted(self._by_model)

    def scenario_for(self, model: str) -> Scenario:
        try:
            return self._by_model[model]
        except KeyError:
            raise QueryError(
                f"no campaign cell serves model {model!r}; "
                f"available: {self.models or '(none)'}"
            ) from None

    def checkpoint_for(
        self, scenario: Scenario, store=None
    ) -> StoreSweepCheckpoint:
        """The cell's sweep checkpoint — the runner's key chain, verbatim.

        Mirrors :meth:`repro.campaigns.runner.CampaignRunner.
        _checkpoint_for` (same payload, same metadata fields, same
        iteration granularity) so every key derived from it is the key
        the runner writes.
        """
        experiment = get_experiment(scenario.experiment_id)
        return StoreSweepCheckpoint(
            store,
            scenario_payload(experiment, scenario.scale),
            metadata={
                "campaign": self.spec.name,
                "scenario": scenario.scenario_id,
            },
            iterations=experiment.checkpoint_iterations(scenario.scale),
        )


def _bracket(values: List[float], side: float) -> Tuple[Tuple[float, ...], bool]:
    """The grid sides enclosing ``side``: exact, pair, or flagged edge."""
    ordered = sorted(values)
    for value in ordered:
        if value == side or math.isclose(value, side, rel_tol=0.0, abs_tol=0.0):
            return (value,), False
    if side < ordered[0]:
        return (ordered[0],), True
    if side > ordered[-1]:
        return (ordered[-1],), True
    for low, high in zip(ordered, ordered[1:]):
        if low < side < high:
            return (low, high), False
    raise AssertionError(f"unreachable bracket fall-through for {side}")


def resolve(
    grid: GridIndex, query: Query, store=None
) -> ResolvedQuery:
    """Pin ``query`` to its enclosing grid cell and canonical keys.

    Raises :class:`QueryError` when no cell serves the query's model or
    the cell's sweep is empty; a query outside the swept side span is
    *resolved* (against the nearest edge value) but flagged
    ``out_of_grid`` — the caller decides whether to extrapolate,
    refine, or refuse.
    """
    scenario = grid.scenario_for(query.model)
    experiment = get_experiment(scenario.experiment_id)
    values = [float(v) for v in experiment.sweep_values(scenario.scale)]
    if not values:
        raise QueryError(
            f"scenario {scenario.scenario_id} sweeps no values"
        )
    side = query.resolved_side
    bracket, out_of_grid = _bracket(values, side)
    checkpoint = grid.checkpoint_for(scenario, store=store)
    return ResolvedQuery(
        query=query,
        scenario=scenario,
        side=side,
        exact=bracket[0] if len(bracket) == 1 and not out_of_grid else None,
        bracket=bracket,
        row_keys=tuple(checkpoint.key_for(value) for value in bracket),
        sweep_key=scenario_sweep_key(experiment, scenario.scale),
        out_of_grid=out_of_grid,
    )
