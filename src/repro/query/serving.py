"""Process-level orchestration of a running query service.

``repro query serve`` needs more than the asyncio front end: a work
queue and a standard :class:`~repro.distributed.server.ResultServer`
fronting the same store (the *fill server*, so stock ``campaign work``
workers can complete refinement tasks), a telemetry run capturing the
``query.*`` metrics into ``trace.jsonl`` / ``run_report.json``, URL
announcement files for scripted callers, and clean SIGINT/SIGTERM
shutdown.  :func:`serve_query_service` owns that composition; the CLI
is a thin argument parser over it.

The queue is sealed at startup: a worker attached to an idle service
drains to ``done`` and exits instead of polling forever, while
refinement tasks enqueued after sealing re-open it exactly as the
queue's contract promises (``done()`` flips back until they reach a
terminal state).
"""

from __future__ import annotations

import asyncio
import signal
from pathlib import Path
from typing import Callable, Optional

from repro import telemetry
from repro.campaigns.spec import CampaignSpec
from repro.distributed.queue import WorkQueue
from repro.distributed.remote_store import RemoteResultStore
from repro.distributed.server import ResultServer
from repro.store.result_store import ResultStore
from repro.supervision import RetryPolicy

from repro.query.http import QueryHTTPServer
from repro.query.service import QueryService

__all__ = ["serve_query_service"]

#: Seconds between periodic telemetry flushes of a long-running serve.
_FLUSH_SECONDS = 2.0


def serve_query_service(
    spec: CampaignSpec,
    store: ResultStore,
    host: str = "127.0.0.1",
    port: int = 0,
    fill_host: str = "127.0.0.1",
    fill_port: int = 0,
    cache_cells: int = 256,
    confidence_floor: float = 1.0,
    lease_seconds: float = 30.0,
    max_retries: int = 1,
    retry_backoff: float = 0.5,
    telemetry_enabled: bool = True,
    url_file: Optional[Path] = None,
    fill_url_file: Optional[Path] = None,
    say: Callable[[str], None] = print,
) -> int:
    """Serve queries until SIGINT/SIGTERM; returns the exit code.

    Two sockets come up: the asyncio query API (``/ask``) on
    ``host:port`` and the threaded fill server (store + work queue) on
    ``fill_host:fill_port`` — point ``campaign work --server`` at the
    latter to drain refinement simulations.  Resolved URLs are printed,
    and written to ``url_file`` / ``fill_url_file`` when given.
    """
    policy = RetryPolicy(
        max_retries=max_retries,
        backoff=retry_backoff if retry_backoff is not None else 0.5,
    )
    queue = WorkQueue(policy, lease_seconds=lease_seconds)
    queue.seal()
    fill_server = ResultServer(
        store, queue, host=fill_host, port=fill_port
    ).start()
    run_handle = None
    if telemetry_enabled and store.root is not None:
        run_handle = telemetry.start_run(
            Path(store.root) / "telemetry", campaign=f"query:{spec.name}"
        )
    service = QueryService(
        store,
        spec,
        cache_cells=cache_cells,
        confidence_floor=confidence_floor,
        queue=queue,
        fill_store=RemoteResultStore(fill_server.url),
    )
    try:
        asyncio.run(
            _serve_until_signal(
                service,
                fill_server.url,
                host,
                port,
                url_file,
                fill_url_file,
                say,
                flush=telemetry.flush if run_handle is not None else None,
            )
        )
        return 0
    except KeyboardInterrupt:
        return 0
    finally:
        fill_server.stop()
        if run_handle is not None:
            run_handle.finish()


async def _serve_until_signal(
    service: QueryService,
    fill_url: str,
    host: str,
    port: int,
    url_file: Optional[Path],
    fill_url_file: Optional[Path],
    say: Callable[[str], None],
    flush: Optional[Callable[[], None]] = None,
) -> None:
    server = QueryHTTPServer(service)
    url = await server.start(host=host, port=port)
    if url_file is not None:
        Path(url_file).write_text(url + "\n", encoding="utf-8")
    if fill_url_file is not None:
        Path(fill_url_file).write_text(fill_url + "\n", encoding="utf-8")
    say(f"Query service at {url}")
    say(f"Fill server at {fill_url} (attach 'campaign work --server' here)")
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix loop: Ctrl-C still lands as KeyboardInterrupt

    async def _flusher() -> None:
        while True:
            await asyncio.sleep(_FLUSH_SECONDS)
            if flush is not None:
                flush()

    flusher = asyncio.ensure_future(_flusher())
    try:
        await stop.wait()
    finally:
        flusher.cancel()
        try:
            await flusher
        except asyncio.CancelledError:
            pass
        await server.close()
