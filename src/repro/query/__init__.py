"""Online critical-range query service over the campaign store.

The batch side of this repository computes connectivity-probability
surfaces over Monte Carlo campaigns; this package *serves* them at
interactive latency.  A query — "what transmitting range do I need for
connectivity probability p with n nodes under mobility model M", or its
forward twin "what probability does range r buy me" — resolves in four
stages:

* :mod:`repro.query.normalize` — maps the query onto the canonical
  content-address keys of the enclosing campaign grid cells, through
  the *same* call chain the campaign runner uses (``scenario_payload``
  → ``StoreSweepCheckpoint.key_for``), so a query key can never diverge
  from the key the runner would compute.  Out-of-grid queries are
  flagged, never silently clamped.
* :mod:`repro.query.surrogate` — fits a monotone connectivity curve
  through each grid row's ``(r0, r10, r90, r100)`` thresholds and
  answers by interpolation; inverse queries solve on the fitted curve,
  and exact grid points return the stored floats bit-identically.
* :mod:`repro.query.service` — the asyncio serving core: a bounded LRU
  hot cache of decoded rows + fitted curves, store reads through a
  thread pool so the event loop never blocks, per-endpoint telemetry
  through :mod:`repro.telemetry.metrics`, and a cache-fill path that
  enqueues refinement simulations onto the distributed
  :class:`~repro.distributed.queue.WorkQueue` — the campaign runner is
  the cache-fill path.
* :mod:`repro.query.http` — a stdlib-only asyncio HTTP front end
  (``/ask``, ``/stats``, ``/health``), matching
  :mod:`repro.distributed`'s zero-dependency convention.
"""

from repro.query.normalize import (
    GridIndex,
    Query,
    QueryError,
    ResolvedQuery,
    resolve,
)
from repro.query.service import Answer, QueryService
from repro.query.surrogate import ConnectivityCurve, blend_rows

__all__ = [
    "Answer",
    "ConnectivityCurve",
    "GridIndex",
    "Query",
    "QueryError",
    "QueryService",
    "ResolvedQuery",
    "blend_rows",
    "resolve",
]
