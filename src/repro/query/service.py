"""The asyncio serving core of the critical-range query service.

:class:`QueryService` answers :class:`~repro.query.normalize.Query`
objects at interactive latency over a :class:`~repro.store.result_store.
ResultStore` holding a campaign's results:

* a bounded in-memory LRU **hot cache** maps row content-addresses to
  their decoded rows and fitted :class:`~repro.query.surrogate.
  ConnectivityCurve`, so repeated and near-neighbor queries never touch
  disk — hot answers are dictionary lookups plus a handful of float
  operations;
* every store read (``contains`` probes, codec decodes) runs in a small
  thread pool through ``run_in_executor`` — the **event loop never
  blocks** on IO, which the benchmark asserts with a loop-lag probe;
* cell **confidence** reuses the exact completeness counting ``campaign
  status`` prints (:func:`repro.campaigns.completeness.
  cell_completeness`), cached per scenario and invalidated when a
  refinement lands;
* queries the grid cannot answer confidently — outside the swept span,
  or inside a cell below the confidence floor — return an immediate
  best-effort extrapolation flagged ``refine=true`` *and* enqueue one
  deduplicated refinement task onto the distributed
  :class:`~repro.distributed.queue.WorkQueue`.  The task is the same
  pickled ``measure_row`` closure ``campaign serve`` ships, so any
  stock ``campaign work`` worker completes it; the service drains the
  queue's result events, persists the new row through the campaign's
  own checkpoint and promotes it straight into the hot cache — the
  re-asked query is a hot hit.

Telemetry flows through :mod:`repro.telemetry.metrics` (``query.*``
counters and latency histograms), so a service wrapped in a telemetry
run reports into ``trace.jsonl`` / ``run_report.json`` like any
campaign process.
"""

from __future__ import annotations

import asyncio
import pickle
import queue as queue_module
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.campaigns.completeness import cell_completeness
from repro.campaigns.spec import CampaignSpec
from repro.experiments.figures import paper_node_count
from repro.experiments.registry import get_experiment
from repro.simulation.sweep import measure_row
from repro.store.checkpoints import StoreSweepCheckpoint
from repro.store.result_store import StoreIntegrityError
from repro.telemetry import metrics
from repro.query.normalize import GridIndex, Query, ResolvedQuery, resolve
from repro.query.surrogate import ConnectivityCurve, blend_rows, fit_row

__all__ = ["Answer", "QueryService"]

#: Decoded cells (row + fitted curve) the hot cache keeps by default.
DEFAULT_CACHE_CELLS = 256

#: Store-IO threads; decodes are small, two suffice for a smoke store.
DEFAULT_IO_WORKERS = 4

#: Seconds between polls of the work queue's event stream.
_DRAIN_TICK = 0.05


@dataclass(frozen=True)
class Answer:
    """One served answer, JSON-shaped for the HTTP front end.

    ``value`` is the critical range (inverse queries) or the
    connectivity probability (forward queries); ``None`` when the store
    holds nothing to answer from (the query then always refines).
    ``source`` records how the value was produced: ``"exact"`` (a
    stored row answered directly), ``"interpolated"`` (between two grid
    rows), ``"extrapolated"`` (outside the grid span) or ``"none"``.
    """

    value: Optional[float]
    unit: str
    model: str
    side: float
    nodes: int
    source: str
    refine: bool
    hot: bool
    coverage: float
    scenario_id: str
    refine_task: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "unit": self.unit,
            "model": self.model,
            "side": self.side,
            "nodes": self.nodes,
            "source": self.source,
            "refine": self.refine,
            "hot": self.hot,
            "coverage": self.coverage,
            "scenario": self.scenario_id,
            "refine_task": self.refine_task,
        }


@dataclass
class _Cell:
    """One hot-cache entry: a decoded row and its fitted curve."""

    side: float
    row: Dict[str, float]
    curve: ConnectivityCurve = field(repr=False)


class QueryService:
    """Interactive-latency query answering over a campaign store.

    Args:
        store: the campaign's result store (disk-backed for serving).
        spec: the campaign whose grid defines the servable surface.
        cache_cells: hot-cache bound (decoded rows + curves).
        confidence_floor: minimum cell coverage (see
            :class:`~repro.campaigns.completeness.CellCompleteness.
            coverage`) below which in-grid answers are flagged
            ``refine=true``.  1.0 (default) trusts only fully committed
            cells; 0.0 never refines in-grid answers that have rows.
        queue: the :class:`~repro.distributed.queue.WorkQueue`
            refinements are enqueued onto; ``None`` disables the
            cache-fill path (answers still flag ``refine``).
        fill_store: the store refinement *workers* write through —
            typically a :class:`~repro.distributed.remote_store.
            RemoteResultStore` pointing at the fill server fronting
            ``store``.  Defaults to ``store`` (in-process workers).
        io_workers: store-IO thread-pool width.
    """

    def __init__(
        self,
        store,
        spec: CampaignSpec,
        cache_cells: int = DEFAULT_CACHE_CELLS,
        confidence_floor: float = 1.0,
        queue=None,
        fill_store=None,
        io_workers: int = DEFAULT_IO_WORKERS,
    ) -> None:
        self.store = store
        self.spec = spec
        self.grid = GridIndex(spec)
        self.cache_cells = max(1, int(cache_cells))
        self.confidence_floor = float(confidence_floor)
        self.queue = queue
        self.fill_store = store if fill_store is None else fill_store
        self._cells: "OrderedDict[str, _Cell]" = OrderedDict()
        self._coverage: Dict[str, float] = {}
        self._refines: Dict[str, str] = {}  # side row key -> task id
        self._pending: Dict[str, Tuple[ResolvedQuery, str]] = {}
        self._refine_serial = 0
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, int(io_workers)),
            thread_name_prefix="query-io",
        )
        self._drain_task: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Begin draining refinement results (needs a running loop)."""
        if self.queue is not None and self._drain_task is None:
            self._drain_task = asyncio.ensure_future(self._drain_events())

    async def close(self) -> None:
        self._closed = True
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # The hot cache
    # ------------------------------------------------------------------ #
    def _cache_get(self, key: str) -> Optional[_Cell]:
        cell = self._cells.get(key)
        if cell is not None:
            self._cells.move_to_end(key)
        return cell

    def _cache_put(self, key: str, cell: _Cell) -> None:
        self._cells[key] = cell
        self._cells.move_to_end(key)
        while len(self._cells) > self.cache_cells:
            self._cells.popitem(last=False)
            metrics.counter("query.cache_evictions").add()

    def _load_cell_sync(self, key: str, side: float) -> Optional[_Cell]:
        """Blocking store read + curve fit (runs on the IO pool)."""
        try:
            row = self.store.get(key)
        except KeyError:
            return None
        except StoreIntegrityError:
            metrics.counter("query.integrity_misses").add()
            return None
        try:
            return _Cell(side=side, row=dict(row), curve=fit_row(row))
        except (TypeError, ValueError):
            metrics.counter("query.unfittable_rows").add()
            return None

    async def _cell_for(
        self, key: str, side: float
    ) -> Tuple[Optional[_Cell], bool]:
        """The cell at ``key``: ``(cell, was_hot)``; misses hit the store."""
        cell = self._cache_get(key)
        if cell is not None:
            return cell, True
        loop = asyncio.get_event_loop()
        cell = await loop.run_in_executor(
            self._executor, self._load_cell_sync, key, side
        )
        if cell is not None:
            self._cache_put(key, cell)
        return cell, False

    # ------------------------------------------------------------------ #
    # Confidence
    # ------------------------------------------------------------------ #
    def _coverage_sync(self, resolved: ResolvedQuery) -> float:
        experiment = get_experiment(resolved.scenario.experiment_id)
        checkpoint = self.grid.checkpoint_for(resolved.scenario)
        counts = cell_completeness(
            self.store,
            checkpoint,
            [float(v) for v in experiment.sweep_values(resolved.scenario.scale)],
            poisoned=frozenset(self.store.poison_keys()),
        )
        return counts.coverage

    async def _coverage_for(self, resolved: ResolvedQuery) -> float:
        scenario_id = resolved.scenario.scenario_id
        cached = self._coverage.get(scenario_id)
        if cached is not None:
            return cached
        loop = asyncio.get_event_loop()
        coverage = await loop.run_in_executor(
            self._executor, self._coverage_sync, resolved
        )
        self._coverage[scenario_id] = coverage
        return coverage

    # ------------------------------------------------------------------ #
    # The cache-fill path
    # ------------------------------------------------------------------ #
    def _refine_payload(self, resolved: ResolvedQuery) -> Optional[bytes]:
        """The pickled closure a ``campaign work`` worker runs, verbatim.

        Mirrors ``DistributedCampaign._task_payload``'s non-atomic
        branch: ``measure_row`` over the experiment's sweep measure with
        the checkpoint rebound to the fill store, at the query's own
        side — so completing the task materializes exactly the row the
        re-asked query needs.
        """
        experiment = get_experiment(resolved.scenario.experiment_id)
        if experiment.sweep_measure is None:
            return None
        measure = experiment.sweep_measure(resolved.scenario.scale)
        checkpoint = self.grid.checkpoint_for(
            resolved.scenario, store=self.fill_store
        )
        rebind = getattr(measure, "with_value_checkpoint", None)
        if rebind is not None:
            measure = rebind(checkpoint)
        closure = (
            measure_row,
            (experiment.parameter_name, measure, resolved.side),
            {},
        )
        return pickle.dumps(closure)

    def _enqueue_refine(
        self, resolved: ResolvedQuery, side_key: str
    ) -> Optional[str]:
        """Enqueue (once) the simulation that fills ``side_key``."""
        if self.queue is None:
            return None
        existing = self._refines.get(side_key)
        if existing is not None:
            return existing
        payload = self._refine_payload(resolved)
        if payload is None:
            return None
        self._refine_serial += 1
        task_id = f"refine.{side_key[:12]}.{self._refine_serial}"
        self.queue.add(task_id, payload)
        self._refines[side_key] = task_id
        self._pending[task_id] = (resolved, side_key)
        metrics.counter("query.refines_enqueued").add()
        return task_id

    async def _drain_events(self) -> None:
        """Fold finished refinements into the store and the hot cache."""
        loop = asyncio.get_event_loop()
        while not self._closed:
            try:
                event = self.queue.events.get_nowait()
            except queue_module.Empty:
                await asyncio.sleep(_DRAIN_TICK)
                continue
            kind, task_id = event[0], event[1]
            pending = self._pending.get(task_id)
            if pending is None:
                continue
            resolved, side_key = pending
            if kind == "result":
                row = pickle.loads(event[2])
                checkpoint = self.grid.checkpoint_for(
                    resolved.scenario, store=self.store
                )
                await loop.run_in_executor(
                    self._executor, checkpoint.save, resolved.side, row
                )
                try:
                    cell = _Cell(
                        side=resolved.side, row=dict(row), curve=fit_row(row)
                    )
                except (TypeError, ValueError):
                    cell = None
                if cell is not None:
                    self._cache_put(side_key, cell)
                self._pending.pop(task_id, None)
                self._refines.pop(side_key, None)
                self._coverage.pop(resolved.scenario.scenario_id, None)
                metrics.counter("query.refines_completed").add()
            elif kind == "giveup":
                self._pending.pop(task_id, None)
                self._refines.pop(side_key, None)
                metrics.counter("query.refines_poisoned").add()
            # "retried" keeps the task pending; nothing to fold yet.

    # ------------------------------------------------------------------ #
    # Answering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _evaluate(curve: ConnectivityCurve, query: Query) -> float:
        if query.inverse:
            return curve.range_for(query.probability)
        return curve.probability_at(query.range)

    async def ask(self, query: Query) -> Answer:
        """Answer one query; never blocks the loop on store IO."""
        started = time.perf_counter()
        metrics.counter("query.requests").add()
        resolved = resolve(self.grid, query)
        checkpoint = self.grid.checkpoint_for(resolved.scenario)
        side_key = (
            resolved.row_keys[0]
            if resolved.exact is not None
            else checkpoint.key_for(resolved.side)
        )
        unit = "range" if query.inverse else "probability"
        nodes = paper_node_count(resolved.side)

        # A row at the query's own side — an exact grid point, or a
        # previously refined side — answers directly and bit-identically.
        cell, hot = await self._cell_for(side_key, resolved.side)
        if cell is not None:
            coverage = await self._coverage_for(resolved)
            refine = (
                not resolved.out_of_grid and coverage < self.confidence_floor
            )
            task_id = (
                self._enqueue_refine(resolved, side_key) if refine else None
            )
            answer = Answer(
                value=self._evaluate(cell.curve, query),
                unit=unit,
                model=query.model,
                side=resolved.side,
                nodes=nodes,
                source="exact",
                refine=refine,
                hot=hot,
                coverage=coverage,
                scenario_id=resolved.scenario.scenario_id,
                refine_task=task_id,
            )
            self._observe(hot, started, answer)
            return answer

        # No direct row: blend the bracketing grid rows.
        cells = []
        all_hot = True
        for value, key in zip(resolved.bracket, resolved.row_keys):
            neighbor, neighbor_hot = await self._cell_for(key, value)
            all_hot = all_hot and neighbor_hot
            if neighbor is not None:
                cells.append(neighbor)
        coverage = await self._coverage_for(resolved)
        missing_rows = len(cells) < len(resolved.bracket)
        refine = (
            resolved.out_of_grid
            or missing_rows
            or coverage < self.confidence_floor
        )
        if resolved.out_of_grid:
            metrics.counter("query.out_of_grid").add()
        value: Optional[float]
        if len(cells) >= 2:
            row = blend_rows(
                cells[0].side,
                cells[0].row,
                cells[1].side,
                cells[1].row,
                resolved.side,
            )
            value = self._evaluate(fit_row(row), query)
            source = "extrapolated" if resolved.out_of_grid else "interpolated"
        elif cells:
            value = self._evaluate(cells[0].curve, query)
            source = "extrapolated"
        else:
            value = None
            source = "none"
        task_id = self._enqueue_refine(resolved, side_key) if refine else None
        answer = Answer(
            value=value,
            unit=unit,
            model=query.model,
            side=resolved.side,
            nodes=nodes,
            source=source,
            refine=refine,
            hot=all_hot and bool(cells),
            coverage=coverage,
            scenario_id=resolved.scenario.scenario_id,
            refine_task=task_id,
        )
        self._observe(answer.hot, started, answer)
        return answer

    @staticmethod
    def _observe(hot: bool, started: float, answer: Answer) -> None:
        elapsed = time.perf_counter() - started
        if hot:
            metrics.counter("query.hot_hits").add()
            metrics.histogram("query.hot_seconds").observe(elapsed)
        else:
            metrics.counter("query.cold_misses").add()
            metrics.histogram("query.cold_seconds").observe(elapsed)
        if answer.refine:
            metrics.counter("query.refine_answers").add()

    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, Any]:
        """Service-level stats for ``GET /stats`` and the tests."""
        payload: Dict[str, Any] = {
            "models": self.grid.models,
            "cache_cells": len(self._cells),
            "cache_limit": self.cache_cells,
            "confidence_floor": self.confidence_floor,
            "pending_refines": len(self._pending),
        }
        if self.queue is not None:
            payload["queue"] = self.queue.stats()
        return payload
