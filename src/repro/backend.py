"""Array-namespace backend seam for the columnar hot path.

The contraction-heavy kernels — batched ``(steps, n, d)`` trajectories,
squared-distance matrices, batched Prim MST — are written against an
array namespace handle ``xp`` instead of the module-level ``numpy``.
:func:`resolve_backend` turns a backend name into an :class:`ArrayBackend`
that bundles that namespace with explicit device/dtype helpers:

``numpy``
    The default.  ``xp`` *is* the ``numpy`` module, transfers are no-ops,
    and every kernel produces bit-identical results to the pre-seam code.

``numpy-strict``
    A verification backend for CPU-only CI.  When ``array_api_strict`` is
    importable its namespace is used directly; otherwise ``xp`` is a
    guard-wrapped NumPy proxy that only exposes an allowlist of
    array-API-portable functions, so a kernel reaching for a NumPy-ism
    (``np.fill_diagonal``, ``out=``, ``np.intp`` …) fails loudly in the
    test lane instead of silently blocking a future device backend.

``cupy`` / ``torch``
    Detected at runtime; resolving them raises a clear
    :class:`~repro.exceptions.ConfigurationError` when the package is not
    installed.  They are *declared* different execution environments: RNG
    draws stay on host NumPy ``Generator`` streams and are transferred
    once per batch (:meth:`ArrayBackend.from_host`), results come back
    through :meth:`ArrayBackend.to_host` at an explicit sync point, and
    the backend name is part of every store cache key
    (:mod:`repro.store.keys`), so results computed on different backends
    can never alias one store entry.

Idioms outside the array-API standard (fancy 2-D gather/scatter, masked
fill, in-place minimum) live as *methods on the backend object* rather
than in the kernels — the NumPy implementations keep their fast in-place
forms, and a new backend overrides the handful of methods instead of
forking the kernels.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError

#: The default backend name, used wherever no explicit choice is made.
DEFAULT_BACKEND = "numpy"


class ArrayBackend:
    """A named array namespace plus device/dtype/transfer helpers.

    The base class implements every operation with host NumPy semantics;
    device backends subclass it and override the transfer helpers (and
    any idiom helper whose NumPy form does not apply).
    """

    #: Registry name (``"numpy"``, ``"numpy-strict"``, …).
    name: str = "numpy"
    #: Whether arrays of this backend live in host memory.  Host backends
    #: make :meth:`to_host`/:meth:`from_host` no-ops, which is what keeps
    #: the NumPy path allocation-free across the seam.
    is_host: bool = True

    def __init__(self, xp: Any = np) -> None:
        self.xp = xp

    # ------------------------------------------------------------------ #
    # Device / transfer helpers
    # ------------------------------------------------------------------ #
    def from_host(self, array: np.ndarray) -> Any:
        """Move a host NumPy array onto this backend (no-op on host)."""
        return array

    def to_host(self, array: Any) -> np.ndarray:
        """Materialise a backend array as host NumPy.

        Every kernel output that feeds host-side code (union-find sweeps,
        ``StepColumns``, codecs, the store) passes through here — this is
        the single device→host sync point of the hot path.
        """
        return np.asarray(array)

    def synchronize(self) -> None:
        """Block until queued device work is complete (no-op on host)."""

    # ------------------------------------------------------------------ #
    # Idiom helpers: operations outside the portable array-API subset.
    # Kernels call these instead of inlining NumPy-isms so a new backend
    # only has to override methods, never fork kernel code.
    # ------------------------------------------------------------------ #
    def copy(self, array: Any) -> Any:
        """An independent copy of ``array`` on this backend."""
        return array.copy()

    def fill_mask(self, array: Any, mask: Any, value: float) -> Any:
        """Return ``array`` with ``array[mask] = value`` applied.

        The NumPy form mutates in place and returns the same object;
        functional backends may return a fresh array — callers must use
        the return value.
        """
        array[mask] = value
        return array

    def take_pairs(self, array: Any, rows: Any, cols: Any) -> Any:
        """2-D gather ``array[rows, cols]`` (one element per row index)."""
        return array[rows, cols]

    def put_pairs(self, array: Any, rows: Any, cols: Any, value: Any) -> Any:
        """Return ``array`` with ``array[rows, cols] = value`` applied.

        Same in-place-on-NumPy / functional-elsewhere contract as
        :meth:`fill_mask`.
        """
        array[rows, cols] = value
        return array

    def take_rows(self, array: Any, rows: Any, cols: Any) -> Any:
        """Row gather ``array[rows, cols, :]`` from a ``(B, n, n)`` stack."""
        return array[rows, cols, :]

    def minimum_update(self, accumulator: Any, update: Any) -> Any:
        """Return ``elementwise_min(accumulator, update)``.

        NumPy accumulates in place (``out=``); functional backends return
        a fresh array — callers must use the return value.
        """
        return np.minimum(accumulator, update, out=accumulator)

    def stable_argsort(self, values: Any, axis: int = -1) -> Any:
        """Indices of a *stable* ascending sort along ``axis``."""
        return self.xp.argsort(values, axis=axis, stable=True)

    def take_along(self, values: Any, order: Any, axis: int) -> Any:
        """``take_along_axis`` under whatever name the namespace uses."""
        return self.xp.take_along_axis(values, order, axis=axis)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ArrayBackend(name={self.name!r})"


class _NumpyBackend(ArrayBackend):
    name = "numpy"


# --------------------------------------------------------------------------- #
# numpy-strict: portability verification on CPU-only CI
# --------------------------------------------------------------------------- #

#: Namespace functions the kernels may call — the intersection of what the
#: hot path needs with the array API standard (2023+, including
#: ``take_along_axis`` from the 2024 revision).  Attribute constants that
#: the standard also defines are listed alongside.
_PORTABLE_NAMES = frozenset({
    # creation / conversion
    "asarray", "astype", "arange", "empty", "zeros", "ones", "full",
    "linspace", "empty_like", "zeros_like", "ones_like", "full_like",
    # dtypes and inspection
    "bool", "int32", "int64", "float32", "float64", "isdtype", "finfo",
    "iinfo",
    # constants
    "inf", "nan", "pi", "newaxis", "e",
    # manipulation
    "reshape", "stack", "concat", "broadcast_to", "expand_dims", "squeeze",
    "permute_dims", "flip", "roll", "tile", "repeat",
    # elementwise
    "abs", "add", "subtract", "multiply", "divide", "negative", "sign",
    "sqrt", "square", "exp", "log", "log1p", "expm1", "pow", "cos", "sin",
    "tan", "atan2", "floor", "ceil", "trunc", "round", "clip", "hypot",
    "maximum", "minimum", "where", "isfinite", "isinf", "isnan",
    "logical_and", "logical_or", "logical_not", "logical_xor", "equal",
    "not_equal", "less", "less_equal", "greater", "greater_equal",
    "remainder", "copysign",
    # statistical / reduction
    "sum", "prod", "mean", "std", "var", "min", "max", "cumulative_sum",
    "any", "all",
    # searching / sorting / selection
    "argmin", "argmax", "argsort", "sort", "nonzero", "searchsorted",
    "take", "take_along_axis", "count_nonzero",
    # linear algebra entry points used by the kernels
    "matmul", "tensordot", "vecdot",
})

#: NumPy spellings accepted for array-API names that differ (the guard
#: proxy forwards the portable spelling to the NumPy one).
_NUMPY_ALIASES = {
    "concat": "concatenate",
    "permute_dims": "transpose",
    "pow": "power",
    "atan2": "arctan2",
    "cumulative_sum": "cumsum",
    "bool": "bool_",
    "isdtype": "isdtype",
}


class _GuardedNumpyNamespace:
    """A NumPy facade that only answers for array-API-portable names.

    Arrays flowing through it are ordinary ``numpy.ndarray``s — strictness
    polices which *namespace functions* the kernels reach for, which is
    the part of portability a host-only CI can actually verify.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_cache", {})

    def __getattr__(self, name: str) -> Any:
        cache = object.__getattribute__(self, "_cache")
        if name in cache:
            return cache[name]
        if name not in _PORTABLE_NAMES:
            raise AttributeError(
                f"namespace attribute {name!r} is not in the array-API "
                f"portable subset; use a portable spelling or add an "
                f"ArrayBackend idiom helper (repro.backend)"
            )
        value = getattr(np, _NUMPY_ALIASES.get(name, name))
        cache[name] = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "<guarded numpy namespace (array-API portable subset)>"


class _StrictBackend(ArrayBackend):
    """Verification backend: portable namespace, portable idiom helpers.

    The idiom helpers are deliberately re-implemented through the guarded
    namespace (no ``out=``, no fancy multi-axis indexing) so the strict
    test lane also exercises the functional fallbacks a device backend
    would rely on.
    """

    name = "numpy-strict"

    def __init__(self, xp: Any) -> None:
        super().__init__(xp)

    def copy(self, array: Any) -> Any:
        return self.xp.asarray(array, copy=True)

    def fill_mask(self, array: Any, mask: Any, value: float) -> Any:
        return self.xp.where(mask, self.xp.asarray(value, dtype=array.dtype), array)

    def take_pairs(self, array: Any, rows: Any, cols: Any) -> Any:
        taken = self.xp.take_along_axis(
            array, self.xp.reshape(cols, (-1, 1)), axis=1
        )
        return self.xp.reshape(taken, (-1,))

    def put_pairs(self, array: Any, rows: Any, cols: Any, value: Any) -> Any:
        width = array.shape[1]
        hit = self.xp.reshape(cols, (-1, 1)) == self.xp.arange(width)
        return self.xp.where(hit, self.xp.asarray(value, dtype=array.dtype), array)

    def take_rows(self, array: Any, rows: Any, cols: Any) -> Any:
        taken = self.xp.take_along_axis(
            array, self.xp.reshape(cols, (-1, 1, 1)), axis=1
        )
        return self.xp.squeeze(taken, axis=1)

    def minimum_update(self, accumulator: Any, update: Any) -> Any:
        return self.xp.minimum(accumulator, update)

    def stable_argsort(self, values: Any, axis: int = -1) -> Any:
        return self.xp.argsort(values, axis=axis, stable=True)

    def take_along(self, values: Any, order: Any, axis: int) -> Any:
        return self.xp.take_along_axis(values, order, axis=axis)


def _make_strict_backend() -> ArrayBackend:
    try:  # array-api-strict, when installed, is the stronger check
        xp = importlib.import_module("array_api_strict")
    except ImportError:
        xp = _GuardedNumpyNamespace()
    return _StrictBackend(xp)


# --------------------------------------------------------------------------- #
# Optional device backends, detected at runtime
# --------------------------------------------------------------------------- #
class _CupyBackend(ArrayBackend):
    name = "cupy"
    is_host = False

    def from_host(self, array: np.ndarray) -> Any:
        return self.xp.asarray(array)

    def to_host(self, array: Any) -> np.ndarray:
        return self.xp.asnumpy(array)

    def synchronize(self) -> None:
        self.xp.cuda.get_current_stream().synchronize()

    def minimum_update(self, accumulator: Any, update: Any) -> Any:
        return self.xp.minimum(accumulator, update, out=accumulator)


def _make_cupy_backend() -> ArrayBackend:
    try:
        cupy = importlib.import_module("cupy")
        cupy.cuda.runtime.getDeviceCount()
    except Exception as error:  # ImportError or no usable CUDA device
        raise ConfigurationError(
            f"backend 'cupy' is not available in this environment: {error}"
        ) from error
    return _CupyBackend(cupy)


class _TorchBackend(ArrayBackend):
    name = "torch"
    is_host = False

    def __init__(self, torch: Any) -> None:
        super().__init__(torch)
        self._device = "cuda" if torch.cuda.is_available() else "cpu"

    def from_host(self, array: np.ndarray) -> Any:
        return self.xp.as_tensor(array, device=self._device)

    def to_host(self, array: Any) -> np.ndarray:
        return array.detach().cpu().numpy()

    def synchronize(self) -> None:
        if self._device == "cuda":
            self.xp.cuda.synchronize()

    def copy(self, array: Any) -> Any:
        return array.clone()

    def stable_argsort(self, values: Any, axis: int = -1) -> Any:
        return self.xp.argsort(values, dim=axis, stable=True)

    def take_along(self, values: Any, order: Any, axis: int) -> Any:
        return self.xp.take_along_dim(values, order, dim=axis)


def _make_torch_backend() -> ArrayBackend:
    try:
        torch = importlib.import_module("torch")
    except ImportError as error:
        raise ConfigurationError(
            f"backend 'torch' is not available in this environment: {error}"
        ) from error
    return _TorchBackend(torch)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": _NumpyBackend,
    "numpy-strict": _make_strict_backend,
    "cupy": _make_cupy_backend,
    "torch": _make_torch_backend,
}

_RESOLVED: Dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``.

    The factory runs lazily on first :func:`resolve_backend` call and may
    raise :class:`~repro.exceptions.ConfigurationError` when its runtime
    requirements (a package, a device) are missing.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"backend name must be a non-empty string, got {name!r}")
    _REGISTRY[name] = factory
    _RESOLVED.pop(name, None)


def backend_names() -> Tuple[str, ...]:
    """All registered backend names (available or not), sorted."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> Tuple[str, ...]:
    """The subset of registered backends that resolve on this host."""
    names = []
    for name in backend_names():
        try:
            resolve_backend(name)
        except ConfigurationError:
            continue
        names.append(name)
    return tuple(names)


def validate_backend(name: str) -> str:
    """Check ``name`` is a registered backend; returns it unchanged.

    Used by configuration ``__post_init__`` validation — registration is
    checked eagerly, *availability* only when the backend is resolved, so
    a config naming ``cupy`` can be built (and produce a cache key) on a
    host without a GPU.
    """
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    return name


def resolve_backend(
    backend: Union[str, ArrayBackend, None] = None,
) -> ArrayBackend:
    """Resolve a backend name (or pass an instance through) to a handle.

    ``None`` resolves to the default NumPy backend.  Resolved instances
    are cached per name; an unavailable backend raises
    :class:`~repro.exceptions.ConfigurationError` with the cause.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, ArrayBackend):
        return backend
    validate_backend(backend)
    if backend not in _RESOLVED:
        _RESOLVED[backend] = _REGISTRY[backend]()
    return _RESOLVED[backend]


#: The process-wide default handle — kernels use it when no backend is
#: passed, which keeps the NumPy path free of per-call resolution cost.
NUMPY_BACKEND: ArrayBackend = resolve_backend("numpy")
