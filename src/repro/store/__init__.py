"""Content-addressed persistence of simulation results.

The experiment layer produces expensive, deterministic artifacts: one
parameter sweep costs minutes at ``default`` scale and hours at ``paper``
scale, yet is a pure function of its declarative description (mobility
model and parameters, region, :class:`~repro.simulation.config.
SimulationConfig`, sweep grid, seed entropy and the on-disk schema
version).  This package turns that purity into a cache:

* :mod:`repro.store.keys` — canonical, versioned cache keys derived from
  the full experiment description;
* :mod:`repro.store.codecs` — typed codecs turning :class:`~repro.
  simulation.sweep.SweepResult` and the columnar result containers into
  compact on-disk payloads (JSON for tabular data, ``.npz`` for arrays);
* :mod:`repro.store.result_store` — the :class:`ResultStore` itself:
  atomic write-then-rename entries under a store root, ``get / put /
  contains / evict`` with sha256 integrity verification;
* :mod:`repro.store.checkpoints` — the store-backed sweep checkpoints
  consumed by :func:`repro.simulation.sweep.sweep_parameter` and the
  simulation runners, at per-parameter-value *and* per-iteration
  granularity, which is what makes killed campaigns resumable.
"""

from repro.store.codecs import SCHEMA_VERSION, decode_payload, detect_kind, encode_payload
from repro.store.checkpoints import StoreIterationCheckpoint, StoreSweepCheckpoint
from repro.store.keys import cache_key, canonical_json, config_payload, scale_payload
from repro.store.result_store import (
    DEGRADABLE_ERRNOS,
    GcReport,
    ResultStore,
    StoreDegradedWarning,
    StoreIntegrityError,
    TRANSIENT_ERRNOS,
    is_degradable_error,
)

__all__ = [
    "DEGRADABLE_ERRNOS",
    "GcReport",
    "ResultStore",
    "SCHEMA_VERSION",
    "StoreDegradedWarning",
    "StoreIntegrityError",
    "StoreIterationCheckpoint",
    "StoreSweepCheckpoint",
    "TRANSIENT_ERRNOS",
    "cache_key",
    "canonical_json",
    "config_payload",
    "decode_payload",
    "detect_kind",
    "encode_payload",
    "is_degradable_error",
    "scale_payload",
]
