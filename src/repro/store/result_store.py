"""The content-addressed on-disk result store.

Layout::

    <root>/
      objects/<key[:2]>/<key>/
        entry.json    # kind, schema_version, payload file name + sha256
        data.json|npz # the encoded artifact
      staging/        # in-flight writes, renamed into place atomically

Every entry directory is written in full under ``staging/`` and moved to
its final path with one :func:`os.replace` — a killed process can leave
stale staging directories (cleaned opportunistically) but never a
half-written entry.  Reads verify the recorded sha256 of the payload
before decoding; a mismatch raises :class:`StoreIntegrityError` so
callers can evict and recompute instead of consuming silent corruption.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.store.codecs import SCHEMA_VERSION, decode_payload, encode_payload

PathLike = Union[str, Path]

_ENTRY_FILE = "entry.json"


class StoreIntegrityError(ReproError):
    """A store entry exists but fails its integrity verification."""


class ResultStore:
    """Content-addressed artifact store with atomic writes.

    Keys are the hex digests of :func:`repro.store.keys.cache_key`; values
    are any type with a codec in :mod:`repro.store.codecs`.  The store is
    safe against concurrent writers of the *same* key (content addressing
    makes their payloads identical; the first rename wins) and against
    being killed at any point (entries appear atomically).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._staging = self.root / "staging"

    # ------------------------------------------------------------------ #
    def _entry_dir(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed store key {key!r}")
        return self._objects / key[:2] / key

    def contains(self, key: str) -> bool:
        """``True`` if an entry for ``key`` has been fully written."""
        return (self._entry_dir(key) / _ENTRY_FILE).is_file()

    def put(
        self, key: str, value: Any, metadata: Optional[Dict[str, Any]] = None
    ) -> str:
        """Store ``value`` under ``key``; returns ``key``.

        Overwrites nothing: if the entry already exists the write is
        discarded (content addressing guarantees equal payloads for equal
        keys).  ``metadata`` is stored verbatim in the entry header for
        human inspection (``status`` listings); it does not affect reads.
        """
        kind, filename, payload = encode_payload(value)
        entry = {
            "kind": kind,
            "schema_version": SCHEMA_VERSION,
            "payload_file": filename,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "metadata": metadata or {},
        }
        final_dir = self._entry_dir(key)
        if (final_dir / _ENTRY_FILE).is_file():
            return key
        self._staging.mkdir(parents=True, exist_ok=True)
        stage = self._staging / uuid.uuid4().hex
        stage.mkdir()
        try:
            (stage / filename).write_bytes(payload)
            (stage / _ENTRY_FILE).write_text(json.dumps(entry, indent=2, sort_keys=True))
            final_dir.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(stage, final_dir)
            except OSError:
                # A concurrent writer renamed an identical entry first.
                if not self.contains(key):
                    raise
                shutil.rmtree(stage, ignore_errors=True)
        finally:
            if stage.exists() and not self.contains(key):
                shutil.rmtree(stage, ignore_errors=True)
        return key

    def entry(self, key: str) -> Dict[str, Any]:
        """The entry header of ``key`` (kind, digest, metadata).

        Raises:
            KeyError: if no entry exists.
            StoreIntegrityError: if the header itself is unreadable.
        """
        path = self._entry_dir(key) / _ENTRY_FILE
        if not path.is_file():
            raise KeyError(key)
        try:
            header = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreIntegrityError(
                f"unreadable store entry header for {key}: {error}"
            ) from error
        if not isinstance(header, dict) or "kind" not in header:
            raise StoreIntegrityError(f"malformed store entry header for {key}")
        return header

    def get(self, key: str) -> Any:
        """Load and decode the artifact stored under ``key``.

        Raises:
            KeyError: if no entry exists.
            StoreIntegrityError: if the entry is corrupt (bad header,
                missing payload, digest mismatch, undecodable payload).
        """
        header = self.entry(key)
        payload_path = self._entry_dir(key) / header.get("payload_file", "")
        if not payload_path.is_file():
            raise StoreIntegrityError(f"store entry {key} lost its payload file")
        payload = payload_path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise StoreIntegrityError(
                f"store entry {key} failed integrity verification: "
                f"payload sha256 {digest} != recorded {header.get('payload_sha256')}"
            )
        try:
            return decode_payload(header["kind"], payload)
        except Exception as error:
            raise StoreIntegrityError(
                f"store entry {key} could not be decoded: {error}"
            ) from error

    def evict(self, key: str) -> bool:
        """Remove the entry for ``key``; ``True`` if one existed."""
        path = self._entry_dir(key)
        if not path.exists():
            return False
        shutil.rmtree(path)
        return True

    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        """All fully-written keys currently in the store."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry_dir in sorted(shard.iterdir()):
                if (entry_dir / _ENTRY_FILE).is_file():
                    yield entry_dir.name

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total bytes of every file under the store root."""
        if not self.root.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in self.root.rglob("*")
            if path.is_file()
        )

    def clear_staging(self) -> int:
        """Remove leftover staging directories from killed writers."""
        if not self._staging.is_dir():
            return 0
        removed = 0
        for stale in self._staging.iterdir():
            shutil.rmtree(stale, ignore_errors=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultStore(root={str(self.root)!r})"
