"""The content-addressed on-disk result store.

Layout::

    <root>/
      objects/<key[:2]>/<key>/
        entry.json    # kind, schema_version, payload file name + sha256
        data.json|npz # the encoded artifact
      staging/        # in-flight writes, renamed into place atomically

Every entry directory is written in full under ``staging/`` and moved to
its final path with one :func:`os.replace` — a killed process can leave
stale staging directories (cleaned opportunistically) but never a
half-written entry.  Reads verify the recorded sha256 of the payload
before decoding; a mismatch raises :class:`StoreIntegrityError` so
callers can evict and recompute instead of consuming silent corruption.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.store.codecs import SCHEMA_VERSION, decode_payload, encode_payload

PathLike = Union[str, Path]

_ENTRY_FILE = "entry.json"

#: Staging directories older than this are certainly orphans of killed
#: writers (a live write stages and renames within seconds); :meth:`
#: ResultStore.gc` only sweeps past this age so it is safe to run
#: against a store a campaign is actively writing to.
STALE_STAGING_SECONDS = 15 * 60


class StoreIntegrityError(ReproError):
    """A store entry exists but fails its integrity verification."""


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`ResultStore.gc` pass did (or, dry, would do).

    Attributes:
        scanned: entries examined (only the campaign's entries when the
            pass was campaign-scoped).
        evicted: entries removed by age, then by LRU quota — or, for a
            ``dry_run`` pass, the entries such a pass *would* remove.
        freed_bytes: bytes those entries occupied.
        remaining_bytes: scanned payload bytes left after the pass
            (entry files only — staging leftovers are swept separately).
    """

    scanned: int
    evicted: int
    freed_bytes: int
    remaining_bytes: int


class ResultStore:
    """Content-addressed artifact store with atomic writes.

    Keys are the hex digests of :func:`repro.store.keys.cache_key`; values
    are any type with a codec in :mod:`repro.store.codecs`.  The store is
    safe against concurrent writers of the *same* key (content addressing
    makes their payloads identical; the first rename wins) and against
    being killed at any point (entries appear atomically).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._staging = self.root / "staging"

    # ------------------------------------------------------------------ #
    def _entry_dir(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed store key {key!r}")
        return self._objects / key[:2] / key

    def contains(self, key: str) -> bool:
        """``True`` if an entry for ``key`` has been fully written."""
        return (self._entry_dir(key) / _ENTRY_FILE).is_file()

    def put(
        self, key: str, value: Any, metadata: Optional[Dict[str, Any]] = None
    ) -> str:
        """Store ``value`` under ``key``; returns ``key``.

        Overwrites nothing: if the entry already exists the write is
        discarded (content addressing guarantees equal payloads for equal
        keys).  ``metadata`` is stored verbatim in the entry header for
        human inspection (``status`` listings); it does not affect reads.
        """
        kind, filename, payload = encode_payload(value)
        entry = {
            "kind": kind,
            "schema_version": SCHEMA_VERSION,
            "payload_file": filename,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "metadata": metadata or {},
        }
        final_dir = self._entry_dir(key)
        if (final_dir / _ENTRY_FILE).is_file():
            return key
        self._staging.mkdir(parents=True, exist_ok=True)
        stage = self._staging / uuid.uuid4().hex
        stage.mkdir()
        try:
            (stage / filename).write_bytes(payload)
            (stage / _ENTRY_FILE).write_text(json.dumps(entry, indent=2, sort_keys=True))
            final_dir.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.replace(stage, final_dir)
            except OSError:
                # A concurrent writer renamed an identical entry first.
                if not self.contains(key):
                    raise
                shutil.rmtree(stage, ignore_errors=True)
        finally:
            if stage.exists() and not self.contains(key):
                shutil.rmtree(stage, ignore_errors=True)
        return key

    def entry(self, key: str) -> Dict[str, Any]:
        """The entry header of ``key`` (kind, digest, metadata).

        Raises:
            KeyError: if no entry exists.
            StoreIntegrityError: if the header itself is unreadable.
        """
        path = self._entry_dir(key) / _ENTRY_FILE
        if not path.is_file():
            raise KeyError(key)
        try:
            header = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreIntegrityError(
                f"unreadable store entry header for {key}: {error}"
            ) from error
        if not isinstance(header, dict) or "kind" not in header:
            raise StoreIntegrityError(f"malformed store entry header for {key}")
        return header

    def get(self, key: str) -> Any:
        """Load and decode the artifact stored under ``key``.

        Raises:
            KeyError: if no entry exists.
            StoreIntegrityError: if the entry is corrupt (bad header,
                missing payload, digest mismatch, undecodable payload).
        """
        header = self.entry(key)
        payload_path = self._entry_dir(key) / header.get("payload_file", "")
        if not payload_path.is_file():
            raise StoreIntegrityError(f"store entry {key} lost its payload file")
        payload = payload_path.read_bytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise StoreIntegrityError(
                f"store entry {key} failed integrity verification: "
                f"payload sha256 {digest} != recorded {header.get('payload_sha256')}"
            )
        try:
            value = decode_payload(header["kind"], payload)
        except Exception as error:
            raise StoreIntegrityError(
                f"store entry {key} could not be decoded: {error}"
            ) from error
        self._touch(key)
        return value

    def _touch(self, key: str) -> None:
        """Refresh the entry header's mtime (best-effort).

        Reads bump the entry to the back of the eviction queue, which is
        what makes :meth:`gc`'s mtime ordering LRU rather than FIFO —
        warm campaign entries survive a quota pass that evicts results
        nothing has read in weeks.
        """
        try:
            os.utime(self._entry_dir(key) / _ENTRY_FILE)
        except OSError:
            pass

    def evict(self, key: str) -> bool:
        """Remove the entry for ``key``; ``True`` if one existed."""
        path = self._entry_dir(key)
        if not path.exists():
            return False
        shutil.rmtree(path)
        return True

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def _entry_stats(
        self, campaign: Optional[str] = None
    ) -> List[Tuple[str, float, int]]:
        """(key, last-use mtime, bytes) of every fully written entry.

        With ``campaign``, only entries whose header metadata records that
        campaign name are listed (the campaign layer stamps every entry it
        writes — sweeps, rows and iteration checkpoints alike).  Reading
        headers does not refresh the LRU mtime.
        """
        stats: List[Tuple[str, float, int]] = []
        for key in self.keys():
            entry_dir = self._entry_dir(key)
            if campaign is not None:
                try:
                    header = self.entry(key)
                except (KeyError, StoreIntegrityError):
                    continue
                metadata = header.get("metadata") or {}
                if metadata.get("campaign") != campaign:
                    continue
            try:
                mtime = (entry_dir / _ENTRY_FILE).stat().st_mtime
                size = sum(
                    path.stat().st_size
                    for path in entry_dir.iterdir()
                    if path.is_file()
                )
            except OSError:
                continue  # evicted by a concurrent writer mid-scan
            stats.append((key, mtime, size))
        return stats

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
        campaign: Optional[str] = None,
    ) -> GcReport:
        """Evict entries by age and LRU quota; returns a :class:`GcReport`.

        Two passes over the fully written entries (staging directories
        older than :data:`STALE_STAGING_SECONDS` — orphans of killed
        writers — are swept first; younger ones are left alone so gc is
        safe to run while a campaign is writing):

        1. every entry whose last use (header mtime — reads refresh it)
           lies more than ``max_age`` seconds before ``now`` is evicted;
        2. if the remaining entries still occupy more than ``max_bytes``,
           the least recently used are evicted until the total fits.

        Passing neither bound just reports the store size.  Evicting a
        store entry is always safe: the store is a cache, and the
        campaign layer recomputes (and re-stores) missing entries.

        Args:
            max_bytes: byte budget the surviving entries must fit in.
            max_age: maximum seconds since last use.
            now: reference timestamp (defaults to the current time;
                injectable for tests).
            dry_run: report what the pass would evict without removing
                anything — no entry eviction and no staging sweep.
            campaign: restrict the pass to entries the named campaign
                wrote (matched against the ``campaign`` entry metadata
                the campaign layer stamps); other campaigns' entries are
                neither scanned, counted nor evicted.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError(
                f"max_bytes must be non-negative, got {max_bytes}"
            )
        if max_age is not None and max_age < 0:
            raise ConfigurationError(
                f"max_age must be non-negative, got {max_age}"
            )
        if not dry_run:
            self.clear_staging(older_than=STALE_STAGING_SECONDS)

        def remove(key: str) -> bool:
            return True if dry_run else self.evict(key)

        reference = time.time() if now is None else float(now)
        stats = self._entry_stats(campaign=campaign)
        scanned = len(stats)
        evicted = 0
        freed = 0
        survivors: List[Tuple[str, float, int]] = []
        for key, mtime, size in stats:
            if max_age is not None and reference - mtime > max_age:
                if remove(key):
                    evicted += 1
                    freed += size
                continue
            survivors.append((key, mtime, size))
        remaining = sum(size for _, _, size in survivors)
        if max_bytes is not None and remaining > max_bytes:
            survivors.sort(key=lambda item: item[1])  # oldest use first
            for key, _, size in survivors:
                if remaining <= max_bytes:
                    break
                if remove(key):
                    evicted += 1
                    freed += size
                    remaining -= size
        return GcReport(
            scanned=scanned,
            evicted=evicted,
            freed_bytes=freed,
            remaining_bytes=remaining,
        )

    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        """All fully-written keys currently in the store."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry_dir in sorted(shard.iterdir()):
                if (entry_dir / _ENTRY_FILE).is_file():
                    yield entry_dir.name

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total bytes of every file under the store root."""
        if not self.root.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in self.root.rglob("*")
            if path.is_file()
        )

    def clear_staging(self, older_than: Optional[float] = None) -> int:
        """Remove leftover staging directories from killed writers.

        With ``older_than`` (seconds), only directories whose mtime is at
        least that old are removed — the grace period that lets
        :meth:`gc` run against a store a live campaign is writing to
        without deleting an in-flight write between its staging and its
        rename.  The default (``None``) removes everything, which is
        right for ``campaign clean`` and other moments when no writer
        can be active.
        """
        if not self._staging.is_dir():
            return 0
        cutoff = None if older_than is None else time.time() - older_than
        removed = 0
        for stale in self._staging.iterdir():
            if cutoff is not None:
                try:
                    if stale.stat().st_mtime > cutoff:
                        continue
                except OSError:
                    continue  # the writer just renamed or removed it
            shutil.rmtree(stale, ignore_errors=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultStore(root={str(self.root)!r})"
