"""The content-addressed on-disk result store.

Layout::

    <root>/
      objects/<key[:2]>/<key>/
        entry.json    # kind, schema_version, payload file name + sha256
        data.json|npz # the encoded artifact
      staging/        # in-flight writes, renamed into place atomically

Every entry directory is written in full under ``staging/`` and moved to
its final path with one :func:`os.replace` — a killed process can leave
stale staging directories (cleaned opportunistically) but never a
half-written entry.  Reads verify the recorded sha256 of the payload
before decoding; a mismatch raises :class:`StoreIntegrityError` so
callers can evict and recompute instead of consuming silent corruption.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, TypeVar, Union

from repro import faults, telemetry
from repro.exceptions import ConfigurationError, ReproError
from repro.store.codecs import SCHEMA_VERSION, decode_payload, encode_payload

PathLike = Union[str, Path]
T = TypeVar("T")

_ENTRY_FILE = "entry.json"
_PROVENANCE_FILE = "provenance.json"

#: Staging directories older than this are certainly orphans of killed
#: writers (a live write stages and renames within seconds); :meth:`
#: ResultStore.gc` only sweeps past this age so it is safe to run
#: against a store a campaign is actively writing to.
STALE_STAGING_SECONDS = 15 * 60

#: Errnos worth retrying in place: the write target is healthy but the
#: operation hiccuped (a device-level I/O blip, an interrupted syscall,
#: a transiently busy file).  Space exhaustion is deliberately absent —
#: retrying ENOSPC burns time without hope; it degrades instead.
TRANSIENT_ERRNOS = frozenset(
    {errno.EIO, errno.EINTR, errno.EAGAIN, errno.EBUSY}
)

#: Errnos that mean "this store cannot accept writes right now, and
#: retrying will not change that": out of space, over quota, read-only.
#: Checkpoint writers downgrade to in-memory operation on these instead
#: of killing the run (see :mod:`repro.store.checkpoints`).
DEGRADABLE_ERRNOS = frozenset(
    code
    for code in (
        errno.ENOSPC,
        getattr(errno, "EDQUOT", None),
        errno.EROFS,
    )
    if code is not None
)

#: Transient-I/O retry shape of :func:`io_retry`: up to ``_IO_RETRIES``
#: re-attempts with a short doubling delay.  Kept deliberately tiny — the
#: wrapper exists to absorb one-off blips, not to poll a dying disk.
_IO_RETRIES = 2
_IO_RETRY_DELAY = 0.05


class StoreIntegrityError(ReproError):
    """A store entry exists but fails its integrity verification."""


class StoreDegradedWarning(UserWarning):
    """A checkpoint writer downgraded to in-memory mode (ENOSPC & co)."""


def is_degradable_error(error: BaseException) -> bool:
    """``True`` when ``error`` should downgrade checkpointing, not kill."""
    return (
        isinstance(error, OSError) and error.errno in DEGRADABLE_ERRNOS
    )


def io_retry(operation: Callable[[], T], what: str) -> T:
    """Run ``operation``, absorbing up to ``_IO_RETRIES`` transient errors.

    Only errnos in :data:`TRANSIENT_ERRNOS` are retried (with a short
    doubling backoff); everything else — including the degradable family
    — propagates immediately to the caller that knows how to handle it.
    """
    for attempt in range(_IO_RETRIES + 1):
        try:
            return operation()
        except OSError as error:
            if error.errno not in TRANSIENT_ERRNOS or attempt == _IO_RETRIES:
                raise
            time.sleep(_IO_RETRY_DELAY * (2.0**attempt))
    raise AssertionError(f"unreachable io_retry fall-through for {what}")


@dataclass(frozen=True)
class GcReport:
    """What one :meth:`ResultStore.gc` pass did (or, dry, would do).

    Attributes:
        scanned: entries examined (only the campaign's entries when the
            pass was campaign-scoped).
        evicted: entries removed by age, then by LRU quota — or, for a
            ``dry_run`` pass, the entries such a pass *would* remove.
        freed_bytes: bytes those entries occupied.
        remaining_bytes: scanned payload bytes left after the pass
            (entry files only — staging leftovers are swept separately).
    """

    scanned: int
    evicted: int
    freed_bytes: int
    remaining_bytes: int


class ResultStore:
    """Content-addressed artifact store with atomic writes.

    Keys are the hex digests of :func:`repro.store.keys.cache_key`; values
    are any type with a codec in :mod:`repro.store.codecs`.  The store is
    safe against concurrent writers of the *same* key (content addressing
    makes their payloads identical; the first rename wins) and against
    being killed at any point (entries appear atomically).
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._staging = self.root / "staging"
        self._quarantine_entries = self.root / "quarantine" / "entries"
        self._quarantine_tasks = self.root / "quarantine" / "tasks"

    # ------------------------------------------------------------------ #
    def _entry_dir(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ConfigurationError(f"malformed store key {key!r}")
        return self._objects / key[:2] / key

    def contains(self, key: str) -> bool:
        """``True`` if an entry for ``key`` has been fully written."""
        return (self._entry_dir(key) / _ENTRY_FILE).is_file()

    def put(
        self,
        key: str,
        value: Any,
        metadata: Optional[Dict[str, Any]] = None,
        kind: Optional[str] = None,
    ) -> str:
        """Store ``value`` under ``key``; returns ``key``.

        Overwrites nothing: if the entry already exists the write is
        discarded (content addressing guarantees equal payloads for equal
        keys).  ``metadata`` is stored verbatim in the entry header for
        human inspection (``status`` listings); it does not affect reads.
        ``kind`` is the caller-declared key kind (``sweep`` /
        ``sweep-row`` / ``sweep-row-iteration``) labelling the write for
        fault matching only; it defaults to the payload encoding kind.
        """
        started = time.perf_counter()
        try:
            return self._put(key, value, metadata, kind)
        finally:
            telemetry.metrics.histogram("store.put_seconds").observe(
                time.perf_counter() - started
            )

    def _put(
        self,
        key: str,
        value: Any,
        metadata: Optional[Dict[str, Any]],
        kind: Optional[str],
    ) -> str:
        payload_kind, filename, payload = encode_payload(value)
        entry = {
            "kind": payload_kind,
            "schema_version": SCHEMA_VERSION,
            "payload_file": filename,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "metadata": metadata or {},
        }
        final_dir = self._entry_dir(key)
        if (final_dir / _ENTRY_FILE).is_file():
            return key
        # The injection gate sits inside the transient-retry wrapper, so a
        # transient injected errno (EIO & co) exercises the same in-place
        # retry a real device blip would get; degradable errnos (ENOSPC)
        # propagate immediately to the checkpoint layer.
        fault = io_retry(
            lambda: faults.fire(
                "store.put", context=f"{kind or payload_kind}:{key}"
            ),
            f"write gate of {key}",
        )
        self._staging.mkdir(parents=True, exist_ok=True)
        # Staging names carry the writer's pid so :meth:`sweep_dead_staging`
        # can tell a crashed writer's leftovers from a live in-flight write.
        stage = self._staging / f"{os.getpid()}-{uuid.uuid4().hex}"
        stage.mkdir()
        try:
            io_retry(
                lambda: (stage / filename).write_bytes(payload),
                f"stage payload of {key}",
            )
            (stage / _ENTRY_FILE).write_text(json.dumps(entry, indent=2, sort_keys=True))
            final_dir.parent.mkdir(parents=True, exist_ok=True)
            try:
                io_retry(
                    lambda: os.replace(stage, final_dir),
                    f"publish entry {key}",
                )
            except OSError:
                # A concurrent writer renamed an identical entry first.
                if not self.contains(key):
                    raise
                shutil.rmtree(stage, ignore_errors=True)
        finally:
            if stage.exists() and not self.contains(key):
                shutil.rmtree(stage, ignore_errors=True)
        if fault is not None and fault.action == "corrupt":
            self._corrupt_payload(key)
        return key

    def _corrupt_payload(self, key: str) -> None:
        """Flip payload bytes of ``key`` in place (fault injection only).

        Applied *after* a successful write when an armed ``corrupt``
        fault matched it, producing exactly the damage the integrity
        verification exists to catch: a payload whose sha256 no longer
        matches its recorded digest.
        """
        try:
            header = self.entry(key)
        except (KeyError, StoreIntegrityError):
            return
        payload_path = self._entry_dir(key) / header.get("payload_file", "")
        if not payload_path.is_file():
            return
        data = payload_path.read_bytes()
        if data:
            payload_path.write_bytes(bytes([data[0] ^ 0xFF]) + data[1:])

    def entry(self, key: str) -> Dict[str, Any]:
        """The entry header of ``key`` (kind, digest, metadata).

        Raises:
            KeyError: if no entry exists.
            StoreIntegrityError: if the header itself is unreadable.
        """
        path = self._entry_dir(key) / _ENTRY_FILE
        if not path.is_file():
            raise KeyError(key)
        try:
            header = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreIntegrityError(
                f"unreadable store entry header for {key}: {error}"
            ) from error
        if not isinstance(header, dict) or "kind" not in header:
            raise StoreIntegrityError(f"malformed store entry header for {key}")
        return header

    def get(self, key: str) -> Any:
        """Load and decode the artifact stored under ``key``.

        Raises:
            KeyError: if no entry exists.
            StoreIntegrityError: if the entry is corrupt (bad header,
                missing payload, digest mismatch, undecodable payload).
        """
        started = time.perf_counter()
        try:
            return self._get(key)
        finally:
            telemetry.metrics.histogram("store.get_seconds").observe(
                time.perf_counter() - started
            )

    def _get(self, key: str) -> Any:
        header = self.entry(key)
        payload_path = self._entry_dir(key) / header.get("payload_file", "")
        if not payload_path.is_file():
            raise StoreIntegrityError(f"store entry {key} lost its payload file")

        def read_payload() -> bytes:
            faults.fire("store.get", context=key)
            return payload_path.read_bytes()

        payload = io_retry(read_payload, f"read payload of {key}")
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise StoreIntegrityError(
                f"store entry {key} failed integrity verification: "
                f"payload sha256 {digest} != recorded {header.get('payload_sha256')}"
            )
        try:
            value = decode_payload(header["kind"], payload)
        except Exception as error:
            raise StoreIntegrityError(
                f"store entry {key} could not be decoded: {error}"
            ) from error
        self._touch(key)
        return value

    def _touch(self, key: str) -> None:
        """Refresh the entry header's mtime (best-effort).

        Reads bump the entry to the back of the eviction queue, which is
        what makes :meth:`gc`'s mtime ordering LRU rather than FIFO —
        warm campaign entries survive a quota pass that evicts results
        nothing has read in weeks.
        """
        try:
            os.utime(self._entry_dir(key) / _ENTRY_FILE)
        except OSError:
            pass

    def evict(self, key: str) -> bool:
        """Remove the entry for ``key``; ``True`` if one existed."""
        path = self._entry_dir(key)
        if not path.exists():
            return False
        shutil.rmtree(path)
        return True

    # ------------------------------------------------------------------ #
    # Quarantine: corrupt entries and poison tasks, with provenance
    # ------------------------------------------------------------------ #
    def quarantine_entry(self, key: str, reason: str) -> bool:
        """Move ``key``'s entry into quarantine instead of deleting it.

        The entry directory — header, damaged payload and all — is moved
        under ``quarantine/entries/<key>/`` with a ``provenance.json``
        recording why and when, so corruption can be diagnosed after the
        fact (which disk, which writer, what pattern) while the live key
        space reports a clean miss and recomputes.  Returns ``True`` if
        an entry existed.  Failures fall back to plain eviction: a miss
        must result either way.
        """
        source = self._entry_dir(key)
        if not source.exists():
            return False
        destination = self._quarantine_entries / key
        try:
            self._quarantine_entries.mkdir(parents=True, exist_ok=True)
            if destination.exists():
                shutil.rmtree(destination)  # keep the latest damage only
            os.replace(source, destination)
            (destination / _PROVENANCE_FILE).write_text(
                json.dumps(
                    {
                        "key": key,
                        "reason": reason,
                        "quarantined_at": time.time(),
                        "pid": os.getpid(),
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        except OSError:
            shutil.rmtree(source, ignore_errors=True)
        return True

    def quarantined_entries(self) -> List[str]:
        """Keys currently held in entry quarantine."""
        if not self._quarantine_entries.is_dir():
            return []
        return sorted(
            path.name for path in self._quarantine_entries.iterdir() if path.is_dir()
        )

    def entry_provenance(self, key: str) -> Optional[Dict[str, Any]]:
        """The provenance record of a quarantined entry, or ``None``."""
        path = self._quarantine_entries / key / _PROVENANCE_FILE
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def drop_quarantined_entry(self, key: str) -> bool:
        """Discard one quarantined entry copy; ``True`` if one existed."""
        path = self._quarantine_entries / key
        if not path.is_dir():
            return False
        shutil.rmtree(path, ignore_errors=True)
        return True

    def record_poison(self, key: str, info: Dict[str, Any]) -> None:
        """Record that the task addressing ``key`` was given up on.

        Poison records are how a campaign remembers which tasks exhausted
        their retries: the campaign continues past them, ``status``
        surfaces them per scenario, and ``clean`` (or a successful later
        run) clears them.  ``info`` is stored verbatim plus a timestamp.
        """
        self._quarantine_tasks.mkdir(parents=True, exist_ok=True)
        record = {**info, "key": key, "quarantined_at": time.time()}
        path = self._quarantine_tasks / f"{key}.json"
        path.write_text(json.dumps(record, indent=2, sort_keys=True))

    def poison(self, key: str) -> Optional[Dict[str, Any]]:
        """The poison record of ``key``, or ``None``."""
        path = self._quarantine_tasks / f"{key}.json"
        if not path.is_file():
            return None
        try:
            return json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def poison_keys(self) -> List[str]:
        """Keys of every recorded poison task."""
        if not self._quarantine_tasks.is_dir():
            return []
        return sorted(
            path.stem
            for path in self._quarantine_tasks.iterdir()
            if path.suffix == ".json"
        )

    def clear_poison(self, key: str) -> bool:
        """Drop one poison record; ``True`` if one existed."""
        path = self._quarantine_tasks / f"{key}.json"
        if not path.is_file():
            return False
        try:
            path.unlink()
        except OSError:
            return False
        return True

    def clear_quarantine(self) -> int:
        """Drop every poison record and quarantined entry copy."""
        removed = 0
        for key in self.poison_keys():
            if self.clear_poison(key):
                removed += 1
        for key in self.quarantined_entries():
            if self.drop_quarantined_entry(key):
                removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #
    def _entry_stats(
        self, campaign: Optional[str] = None
    ) -> List[Tuple[str, float, int]]:
        """(key, last-use mtime, bytes) of every fully written entry.

        With ``campaign``, only entries whose header metadata records that
        campaign name are listed (the campaign layer stamps every entry it
        writes — sweeps, rows and iteration checkpoints alike).  Reading
        headers does not refresh the LRU mtime.
        """
        stats: List[Tuple[str, float, int]] = []
        for key in self.keys():
            entry_dir = self._entry_dir(key)
            if campaign is not None:
                try:
                    header = self.entry(key)
                except (KeyError, StoreIntegrityError):
                    continue
                metadata = header.get("metadata") or {}
                if metadata.get("campaign") != campaign:
                    continue
            try:
                mtime = (entry_dir / _ENTRY_FILE).stat().st_mtime
                size = sum(
                    path.stat().st_size
                    for path in entry_dir.iterdir()
                    if path.is_file()
                )
            except OSError:
                continue  # evicted by a concurrent writer mid-scan
            stats.append((key, mtime, size))
        return stats

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age: Optional[float] = None,
        now: Optional[float] = None,
        dry_run: bool = False,
        campaign: Optional[str] = None,
    ) -> GcReport:
        """Evict entries by age and LRU quota; returns a :class:`GcReport`.

        Two passes over the fully written entries (staging directories
        older than :data:`STALE_STAGING_SECONDS` — orphans of killed
        writers — are swept first; younger ones are left alone so gc is
        safe to run while a campaign is writing):

        1. every entry whose last use (header mtime — reads refresh it)
           lies more than ``max_age`` seconds before ``now`` is evicted;
        2. if the remaining entries still occupy more than ``max_bytes``,
           the least recently used are evicted until the total fits.

        Passing neither bound just reports the store size.  Evicting a
        store entry is always safe: the store is a cache, and the
        campaign layer recomputes (and re-stores) missing entries.

        Args:
            max_bytes: byte budget the surviving entries must fit in.
            max_age: maximum seconds since last use.
            now: reference timestamp (defaults to the current time;
                injectable for tests).
            dry_run: report what the pass would evict without removing
                anything — no entry eviction and no staging sweep.
            campaign: restrict the pass to entries the named campaign
                wrote (matched against the ``campaign`` entry metadata
                the campaign layer stamps); other campaigns' entries are
                neither scanned, counted nor evicted.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError(
                f"max_bytes must be non-negative, got {max_bytes}"
            )
        if max_age is not None and max_age < 0:
            raise ConfigurationError(
                f"max_age must be non-negative, got {max_age}"
            )
        if not dry_run:
            self.clear_staging(older_than=STALE_STAGING_SECONDS)

        def remove(key: str) -> bool:
            return True if dry_run else self.evict(key)

        reference = time.time() if now is None else float(now)
        stats = self._entry_stats(campaign=campaign)
        scanned = len(stats)
        evicted = 0
        freed = 0
        survivors: List[Tuple[str, float, int]] = []
        for key, mtime, size in stats:
            if max_age is not None and reference - mtime > max_age:
                if remove(key):
                    evicted += 1
                    freed += size
                continue
            survivors.append((key, mtime, size))
        remaining = sum(size for _, _, size in survivors)
        if max_bytes is not None and remaining > max_bytes:
            survivors.sort(key=lambda item: item[1])  # oldest use first
            for key, _, size in survivors:
                if remaining <= max_bytes:
                    break
                if remove(key):
                    evicted += 1
                    freed += size
                    remaining -= size
        return GcReport(
            scanned=scanned,
            evicted=evicted,
            freed_bytes=freed,
            remaining_bytes=remaining,
        )

    # ------------------------------------------------------------------ #
    def keys(self) -> Iterator[str]:
        """All fully-written keys currently in the store."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry_dir in sorted(shard.iterdir()):
                if (entry_dir / _ENTRY_FILE).is_file():
                    yield entry_dir.name

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def size_bytes(self) -> int:
        """Total bytes of the fully written entries (``objects/`` only).

        Telemetry sinks, quarantine records and staging leftovers live
        under the same root but are not evictable entries — counting them
        would inflate the size that :meth:`gc`'s ``max_bytes`` budgets
        against, making a quota pass evict live results to pay for
        trace files it can never remove.
        """
        if not self._objects.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in self._objects.rglob("*")
            if path.is_file()
        )

    def clear_staging(self, older_than: Optional[float] = None) -> int:
        """Remove leftover staging directories from killed writers.

        With ``older_than`` (seconds), only directories whose mtime is at
        least that old are removed — the grace period that lets
        :meth:`gc` run against a store a live campaign is writing to
        without deleting an in-flight write between its staging and its
        rename.  The default (``None``) removes everything, which is
        right for ``campaign clean`` and other moments when no writer
        can be active.
        """
        if not self._staging.is_dir():
            return 0
        cutoff = None if older_than is None else time.time() - older_than
        removed = 0
        for stale in self._staging.iterdir():
            if cutoff is not None:
                try:
                    if stale.stat().st_mtime > cutoff:
                        continue
                except OSError:
                    continue  # the writer just renamed or removed it
            shutil.rmtree(stale, ignore_errors=True)
            removed += 1
        return removed

    def sweep_dead_staging(self) -> int:
        """Remove staging directories whose writer process is dead.

        Staging names are ``<pid>-<uuid>`` (see :meth:`put`); a name
        whose pid no longer exists belongs to a crashed writer and its
        half-written entry can never be renamed into place.  Unlike the
        age-based :meth:`clear_staging`, this is safe to call *mid-run*
        — the supervised gathers call it after terminating a broken pool
        and before respawning it, so a crash-looping campaign cannot
        accumulate orphaned staging directories.

        A live pid is *not* proof of a live writer: pids recycle, so a
        crashed writer's pid can belong to an unrelated long-lived
        process forever.  Pid-prefixed directories whose "owner" looks
        alive therefore still fall back to the
        :data:`STALE_STAGING_SECONDS` age rule (a real in-flight write
        stages and renames within seconds), as do directories without a
        pid prefix (pre-existing stores).  Only a provably dead pid is
        swept immediately.
        """
        if not self._staging.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - STALE_STAGING_SECONDS
        for stale in self._staging.iterdir():
            pid_text, _, _ = stale.name.partition("-")
            if not pid_text.isdigit() or _pid_alive(int(pid_text)):
                try:
                    if stale.stat().st_mtime > cutoff:
                        continue
                except OSError:
                    continue  # renamed or removed by its (live) writer
            shutil.rmtree(stale, ignore_errors=True)
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ResultStore(root={str(self.root)!r})"


def _pid_alive(pid: int) -> bool:
    """``True`` when a process with ``pid`` currently exists."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # be conservative: never sweep a live writer
    return True
