"""Typed codecs between result objects and on-disk payloads.

Each supported result type has a *kind* string, an encoder producing the
payload file name plus its bytes, and a decoder reconstructing an equal
object.  Tabular artifacts (sweeps, per-value checkpoint rows) are stored
as JSON — human-diffable and exact for Python floats, whose ``repr`` round-
trips bit-identically.  The columnar containers reuse the compact packed
transport PR 2 built for process boundaries (one bit per connectivity
flag, minimal integer widths, float64 breakpoints untouched) inside a
``.npz`` archive.

:data:`SCHEMA_VERSION` is the single on-disk format version shared by the
store and the plain :func:`repro.experiments.io.save_sweep` artifacts; it
is baked into every cache key, so bumping it invalidates stale layouts
instead of misreading them.
"""

from __future__ import annotations

import io
import json
from typing import Any, Callable, Dict, NamedTuple, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.simulation.results import (
    FrameStatisticsColumns,
    StepColumns,
    compact_ints,
)
from repro.simulation.sweep import SweepResult

#: On-disk schema version of every persisted artifact.  Version 0 is the
#: pre-versioning ``save_sweep`` JSON layout; version 1 added the store,
#: this field, and the empty-sweep CSV header.
SCHEMA_VERSION = 1


class Codec(NamedTuple):
    """One artifact kind: match by type, encode to bytes, decode back."""

    matches: Callable[[Any], bool]
    filename: str
    encode: Callable[[Any], bytes]
    decode: Callable[[bytes], Any]


def _json_bytes(document: Dict[str, Any]) -> bytes:
    return json.dumps(document, sort_keys=True, indent=2).encode("utf-8")


def _encode_sweep(sweep: SweepResult) -> bytes:
    return _json_bytes(
        {
            "schema_version": SCHEMA_VERSION,
            "parameter_name": sweep.parameter_name,
            "rows": sweep.rows,
        }
    )


def _decode_sweep(payload: bytes) -> SweepResult:
    document = json.loads(payload.decode("utf-8"))
    return SweepResult(
        parameter_name=document["parameter_name"],
        rows=[dict(row) for row in document["rows"]],
    )


def _encode_row(row: Dict[str, float]) -> bytes:
    return _json_bytes({"schema_version": SCHEMA_VERSION, "row": dict(row)})


def _decode_row(payload: bytes) -> Dict[str, float]:
    return dict(json.loads(payload.decode("utf-8"))["row"])


def _npz_bytes(**arrays: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def _read_npz(payload: bytes) -> Dict[str, np.ndarray]:
    with np.load(io.BytesIO(payload)) as archive:
        return {name: archive[name] for name in archive.files}


def _encode_step_columns(columns: StepColumns) -> bytes:
    return _npz_bytes(
        count=np.int64(len(columns)),
        connected_bits=np.packbits(columns.connected),
        largest_component=compact_ints(columns.largest_component),
    )


def _decode_step_columns(payload: bytes) -> StepColumns:
    arrays = _read_npz(payload)
    count = int(arrays["count"])
    return StepColumns(
        connected=np.unpackbits(arrays["connected_bits"], count=count).astype(bool),
        largest_component=arrays["largest_component"],
    )


def _encode_frame_columns(columns: FrameStatisticsColumns) -> bytes:
    return _npz_bytes(
        node_count=np.int64(columns.node_count),
        critical_ranges=columns.critical_ranges,
        curve_offsets=compact_ints(columns.curve_offsets),
        curve_ranges=columns.curve_ranges,
        curve_sizes=compact_ints(columns.curve_sizes),
    )


def _decode_frame_columns(payload: bytes) -> FrameStatisticsColumns:
    arrays = _read_npz(payload)
    return FrameStatisticsColumns(
        node_count=int(arrays["node_count"]),
        critical_ranges=arrays["critical_ranges"],
        curve_offsets=arrays["curve_offsets"],
        curve_ranges=arrays["curve_ranges"],
        curve_sizes=arrays["curve_sizes"],
    )


#: Kind -> codec.  Order matters for :func:`detect_kind` (dict rows would
#: also "match" a generic mapping test placed earlier).
CODECS: Dict[str, Codec] = {
    "sweep": Codec(
        matches=lambda value: isinstance(value, SweepResult),
        filename="data.json",
        encode=_encode_sweep,
        decode=_decode_sweep,
    ),
    "frame_statistics": Codec(
        matches=lambda value: isinstance(value, FrameStatisticsColumns),
        filename="data.npz",
        encode=_encode_frame_columns,
        decode=_decode_frame_columns,
    ),
    "step_columns": Codec(
        matches=lambda value: isinstance(value, StepColumns),
        filename="data.npz",
        encode=_encode_step_columns,
        decode=_decode_step_columns,
    ),
    "sweep-row": Codec(
        matches=lambda value: isinstance(value, dict),
        filename="data.json",
        encode=_encode_row,
        decode=_decode_row,
    ),
}


def detect_kind(value: Any) -> str:
    """The artifact kind of ``value``.

    Raises:
        ConfigurationError: if no codec supports the type.
    """
    for kind, codec in CODECS.items():
        if codec.matches(value):
            return kind
    raise ConfigurationError(
        f"no result-store codec for values of type {type(value).__name__!r}"
    )


def encode_payload(value: Any) -> Tuple[str, str, bytes]:
    """Encode ``value`` as ``(kind, payload filename, payload bytes)``."""
    kind = detect_kind(value)
    codec = CODECS[kind]
    return kind, codec.filename, codec.encode(value)


def decode_payload(kind: str, payload: bytes) -> Any:
    """Decode the payload bytes of a ``kind`` artifact."""
    try:
        codec = CODECS[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown result-store artifact kind {kind!r}; known: {sorted(CODECS)}"
        ) from None
    return codec.decode(payload)
