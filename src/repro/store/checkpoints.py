"""Store-backed per-parameter-value sweep checkpoints.

:func:`repro.simulation.sweep.sweep_parameter` accepts a checkpoint object
with ``load(value)`` / ``save(value, row)`` hooks.  The implementation
here keys every measured row by the sweep's logical description plus the
parameter value, so a killed sweep resumes exactly at the first value it
had not finished, and two sweeps with identical descriptions — however
they are named or parallelised — share their rows.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.store.keys import cache_key
from repro.store.result_store import ResultStore, StoreIntegrityError

#: Artifact kind of one checkpointed sweep row.
ROW_KIND = "sweep-row"


class StoreSweepCheckpoint:
    """Checkpoint one sweep's rows into a :class:`ResultStore`.

    Args:
        store: destination store.
        payload: the canonical description of the sweep (experiment,
            scale, seed, ...); every row key derives from it plus the
            parameter value.
        metadata: optional human-readable context written into each
            entry header.
    """

    def __init__(
        self,
        store: ResultStore,
        payload: Any,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.store = store
        self.payload = payload
        self.metadata = metadata or {}
        self.loaded = 0
        self.saved = 0

    def key_for(self, value: float) -> str:
        """The content address of the row at one parameter value."""
        return cache_key(ROW_KIND, {"sweep": self.payload, "value": float(value)})

    def load(self, value: float) -> Optional[Dict[str, float]]:
        """The checkpointed row at ``value``, or ``None`` to recompute.

        A corrupt entry is evicted and reported as a miss — resuming from
        a damaged store recomputes the damaged rows instead of returning
        them.
        """
        key = self.key_for(value)
        if not self.store.contains(key):
            return None
        try:
            row = self.store.get(key)
        except (KeyError, StoreIntegrityError):
            self.store.evict(key)
            return None
        self.loaded += 1
        return row

    def save(self, value: float, row: Dict[str, float]) -> None:
        """Persist the freshly measured row at ``value``."""
        self.store.put(
            self.key_for(value),
            dict(row),
            metadata={**self.metadata, "value": float(value)},
        )
        self.saved += 1
